//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace only uses the serde derives as declarative markers on
//! plain data structs (nothing actually serializes them), so in the
//! offline build the derives expand to nothing. See `shims/serde`.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
