//! Offline stand-in for `serde_json`.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of the real crate the workspace consumes: the dynamic
//! [`Value`] type, [`from_str`] with a strict recursive-descent parser,
//! and the usual accessors (`get`, `as_str`, `as_f64`, indexing). It is
//! used to *validate* JSON the workspace emits (telemetry snapshots,
//! Chrome-trace dumps), so the parser rejects malformed input loudly
//! instead of guessing.
//!
//! Not implemented (the workspace does not use them): serialization via
//! `Serialize`, `json!`, streaming, and non-f64 number fidelity beyond
//! `as_u64`/`as_i64` round-trips for integers up to 2^53.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Element lookup on arrays.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(v) => v.get(index),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number (exact for integers up to 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Objects index by key; anything else (and missing keys) yields
    /// `Null`, matching the real crate's behaviour.
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.get_index(index).unwrap_or(&NULL)
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Nesting limit: deep enough for any real dump, shallow enough that a
/// hostile input cannot overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected '{word}')")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .map(|c| c.len_utf8())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.pos += ch_len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.hex4()?;
        // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        if (0xD800..=0xDBFF).contains(&hi) {
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..=0xDFFF).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" -12.5e2 ").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            from_str("\"a\\nb\"").unwrap(),
            Value::String("a\nb".to_string())
        );
        assert_eq!(from_str("\"\\u0041\"").unwrap().as_str(), Some("A"));
        assert_eq!(from_str("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a":[1,2,{"b":"x"}],"c":{"d":null}}"#).unwrap();
        assert_eq!(v["a"][2]["b"].as_str(), Some("x"));
        assert!(v["c"]["d"].is_null());
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "nul",
            "{} trailing",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn integer_accessors_round_trip() {
        let v = from_str("[9007199254740992, -3, 2.5]").unwrap();
        assert_eq!(v[0].as_u64(), Some(1 << 53));
        assert_eq!(v[1].as_i64(), Some(-3));
        assert_eq!(v[2].as_u64(), None);
        assert_eq!(v[2].as_f64(), Some(2.5));
    }
}
