//! Offline stand-in for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the `rand`
//! surface it actually calls: [`Rng::gen`], [`Rng::gen_range`] (over
//! half-open and inclusive integer ranges and half-open float ranges),
//! [`Rng::gen_bool`] and [`SeedableRng::seed_from_u64`]. Generators are
//! deterministic, which is all the corpus builders and tests require;
//! the streams are *not* bit-compatible with the real `rand` crate.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. The only method concrete generators
/// must provide; everything in [`Rng`] derives from it.
pub trait RngCore {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("standard"
/// distribution in real-`rand` terms: floats are uniform in `[0, 1)`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// The user-facing generator trait; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: the seed expander (also usable as a generator in its own
/// right, and the one `proptest`'s shim uses).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = r.gen_range(1usize..=2);
            assert!((1..=2).contains(&y));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SplitMix64::new(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let p: f64 = r.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }
}
