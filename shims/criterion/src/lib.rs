//! Offline stand-in for the Criterion.rs benchmarking harness.
//!
//! Provides the API subset the `bench` crate uses — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros — with a simple
//! best-effort timing loop instead of Criterion's statistical engine.
//! Each benchmark runs for at most `sample_size` samples or the
//! configured measurement time, whichever is hit first, and reports the
//! mean wall-clock time per iteration (plus throughput when set).
//!
//! When invoked by `cargo test` (which passes `--test` to bench
//! binaries built with `harness = false`), every benchmark body runs
//! exactly once, so benches act as smoke tests without slowing the
//! suite down.

use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs one benchmark body repeatedly and accumulates timing.
pub struct Bencher<'a> {
    samples: usize,
    max_time: Duration,
    result: &'a mut Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Time `f`, running it until the sample budget or time budget is
    /// exhausted.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warm-up call (also the only call in test mode).
        std::hint::black_box(f());
        if self.samples <= 1 {
            *self.result = Some((Duration::ZERO, 0));
            return;
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        while iters < self.samples as u64 && start.elapsed() < self.max_time {
            std::hint::black_box(f());
            iters += 1;
        }
        *self.result = Some((start.elapsed(), iters.max(1)));
    }
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(self, _t: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let name: String = id.into().id;
        let mut group = BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        };
        group.bench_function(BenchmarkId::from_parameter(""), f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &self,
        label: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut result = None;
        let mut b = Bencher {
            samples: if self.test_mode { 1 } else { self.sample_size },
            max_time: self.measurement_time,
            result: &mut result,
        };
        f(&mut b);
        match result {
            Some((total, iters)) if iters > 0 => {
                let per_iter = total.as_secs_f64() / iters as f64;
                let rate = match throughput {
                    Some(Throughput::Elements(n)) => {
                        format!("  {:>12.3e} elem/s", n as f64 / per_iter)
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!("  {:>12.3e} B/s", n as f64 / per_iter)
                    }
                    None => String::new(),
                };
                println!("bench {label:<48} {:>12.3} us/iter{rate}", per_iter * 1e6);
            }
            _ => println!("bench {label:<48} ok (test mode)"),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let label = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, |b| f(b));
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Re-export of `std::hint::black_box` under Criterion's name.
pub use std::hint::black_box;

/// `criterion_group!`: both the struct form (with `config`) and the
/// simple positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut count = 0u32;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", 3), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }
}
