//! Offline mini property-testing harness.
//!
//! The build environment has no crates.io access, so this crate
//! provides the subset of the `proptest` API the workspace's tests
//! use: the [`Strategy`] trait with [`Strategy::prop_map`] /
//! [`Strategy::prop_flat_map`], range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]` header) and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics immediately with the case
//!   index and the seed, which is enough to reproduce (generation is
//!   deterministic per test name).
//! - **Deterministic.** Every test derives its RNG seed from the test
//!   name, so runs are reproducible and CI is stable.
//! - The default case count is 64 (the real crate's 256), keeping the
//!   suite fast; tests override it with `ProptestConfig::with_cases`.

use rand::{RngCore, SplitMix64};
use std::ops::Range;

/// The per-test random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(SplitMix64);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(SplitMix64::new(seed))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Blanket impl so strategies can be taken by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec()`]: an exact count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and a size drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.uniform_usize(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration. Only the case count is configurable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives one `proptest!` test: owns the RNG and the case loop.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a of the test name: deterministic per test, different
        // across tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            config,
            rng: TestRng::from_seed(h),
            seed: h,
        }
    }

    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// The body of one property test: generates inputs and runs the case
/// loop, reporting the failing case index before propagating a panic.
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr, $name:ident, ($($arg:pat, $strat:expr);*), $body:block) => {{
        let __config: $crate::ProptestConfig = $cfg;
        let mut __runner = $crate::TestRunner::new(__config, stringify!($name));
        for __case in 0..__runner.cases() {
            $(let $arg = $crate::Strategy::generate(&($strat), __runner.rng());)*
            let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                move || $body,
            ));
            if let Err(e) = __result {
                eprintln!(
                    "proptest shim: test `{}` failed at case {}/{} (seed {:#x})",
                    stringify!($name),
                    __case + 1,
                    __runner.cases(),
                    __runner.seed(),
                );
                ::std::panic::resume_unwind(e);
            }
        }
    }};
}

/// The `proptest!` macro: a block of `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr); ) => {};
    ( ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_body!($cfg, $name, ($($arg, $strat);*), $body);
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

/// `prop_assert!` and friends map to plain assertions: without
/// shrinking there is no need to thread `Result` through the case body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 1usize..10, (a, b) in (0usize..5, -1.0f64..1.0)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((-1.0..1.0).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0usize..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for &e in &v {
                prop_assert!(e < 100);
            }
        }

        #[test]
        fn map_and_flat_map_compose(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, n).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
            for &x in &xs {
                prop_assert!(x < n);
            }
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::TestRunner::new(ProptestConfig::default(), "t");
        let mut b = crate::TestRunner::new(ProptestConfig::default(), "t");
        let s = 0usize..1000;
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&s, a.rng()),
                Strategy::generate(&s, b.rng())
            );
        }
    }
}
