//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize` / `Deserialize` on a few plain
//! data structs but never actually serializes them, so this shim
//! provides the trait names (as markers) and no-op derive macros. If a
//! future PR needs real serialization, replace this shim with the real
//! crate or implement the traits here.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
