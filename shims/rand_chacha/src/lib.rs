//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha stream cipher with 8 double-rounds as a
//! pseudo-random generator. Deterministic for a given seed, with the
//! same API surface the workspace uses (`ChaCha8Rng::seed_from_u64`,
//! the `Rng` methods via the shim `rand` traits) — but the output
//! stream is *not* bit-compatible with the real `rand_chacha` crate
//! (which uses a different seed-expansion and word order).

use rand::{RngCore, SeedableRng, SplitMix64};

/// The ChaCha quarter round.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha generator with 8 rounds (4 double-rounds), the fast variant
/// used for random number generation.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words), counter (2 words) and nonce (2 words); the four
    /// constant words are added at block time.
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64,
        // the conventional seed-expansion for small seeds.
        let mut sm = SplitMix64::new(seed);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = sm.next_u64();
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index + 2 > 16 {
            self.refill();
        }
        let lo = self.buffer[self.index] as u64;
        let hi = self.buffer[self.index + 1] as u64;
        self.index += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn bits_look_balanced() {
        // Crude sanity check: the average popcount of 64-bit words
        // should be very close to 32.
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let total: u32 = (0..4096).map(|_| r.next_u64().count_ones()).sum();
        let mean = total as f64 / 4096.0;
        assert!((mean - 32.0).abs() < 0.5, "mean popcount {mean}");
    }

    #[test]
    fn rng_methods_work() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            let x = r.gen_range(0usize..10);
            assert!(x < 10);
        }
        let p: f64 = r.gen();
        assert!((0.0..1.0).contains(&p));
    }
}
