//! Cross-crate integration: corpus → reorder → SpMV → features →
//! machine model, verifying the whole pipeline agrees with itself.

use reorder_study::prelude::*;

/// A reordered SpMV must compute a permutation of the original result:
/// for symmetric orderings y' = P y when x' = P x; for row-only
/// orderings (Gray) y' = P y with x unchanged.
#[test]
fn reordered_spmv_is_equivalent_for_every_algorithm() {
    let a = corpus::scramble(&corpus::mesh2d(40, 40), 5);
    let n = a.nrows();
    let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 101) as f64) / 100.0).collect();
    let y_ref = a.spmv_dense(&x);

    let team = ThreadTeam::new(3);
    for alg in all_algorithms(8, 16) {
        let r = alg.compute(&a).expect("square");
        let b = r.apply(&a).expect("apply");
        let (x_in, expect): (Vec<f64>, Vec<f64>) = if r.symmetric {
            (r.perm.apply_to_slice(&x), r.perm.apply_to_slice(&y_ref))
        } else {
            (x.clone(), r.perm.apply_to_slice(&y_ref))
        };
        // Exercise both parallel kernels on the shared team.
        let mut y1 = vec![0.0; n];
        spmv_1d(&b, &Plan1d::new(&b, 3), &team, &x_in, &mut y1);
        let mut y2 = vec![0.0; n];
        spmv_2d(&b, &Plan2d::new(&b, 3), &team, &x_in, &mut y2);
        for i in 0..n {
            assert!(
                (y1[i] - expect[i]).abs() < 1e-9,
                "{}: 1D row {i} differs",
                alg.name()
            );
            assert!(
                (y2[i] - expect[i]).abs() < 1e-9,
                "{}: 2D row {i} differs",
                alg.name()
            );
        }
    }
}

/// Symmetric orderings preserve structural symmetry; all orderings
/// preserve the nonzero count.
#[test]
fn orderings_preserve_structure() {
    let a = corpus::make_spd(&corpus::scramble(&corpus::mesh2d(30, 30), 9));
    assert!(sparsemat::is_structurally_symmetric(&a));
    for alg in all_algorithms(4, 8) {
        let r = alg.compute(&a).expect("square");
        let b = r.apply(&a).expect("apply");
        assert_eq!(b.nnz(), a.nnz(), "{}", alg.name());
        b.validate().unwrap();
        if r.symmetric {
            assert!(
                sparsemat::is_structurally_symmetric(&b),
                "{} must preserve symmetry",
                alg.name()
            );
        }
    }
}

/// The machine model must rank a well-clustered order above a random
/// order on every machine — the mechanism behind every speedup table.
#[test]
fn machine_model_rewards_locality_everywhere() {
    let good = corpus::mesh2d(70, 70);
    let bad = corpus::scramble(&good, 3);
    for m in machines() {
        let g1 = simulate_spmv_1d(&good, &m).gflops;
        let b1 = simulate_spmv_1d(&bad, &m).gflops;
        assert!(g1 > b1, "{}: 1D locality not rewarded", m.name);
        let g2 = simulate_spmv_2d(&good, &m).gflops;
        let b2 = simulate_spmv_2d(&bad, &m).gflops;
        assert!(g2 > b2, "{}: 2D locality not rewarded", m.name);
    }
}

/// Measured (real) SpMV on this host must also see the benefit of
/// reordering a scrambled mesh with RCM — the end-to-end story.
#[test]
fn real_measurement_pipeline_runs() {
    let a = std::sync::Arc::new(corpus::scramble(&corpus::mesh2d(50, 50), 1));
    let cfg = MeasureConfig {
        repetitions: 5,
        warmup: 1,
        nthreads: 2,
    };
    let before = measure_spmv(&a, KernelKind::OneD, &cfg);
    let r = Rcm::default().compute(&a).unwrap();
    let b = std::sync::Arc::new(r.apply(&a).unwrap());
    let after = measure_spmv(&b, KernelKind::OneD, &cfg);
    // No performance assertion (CI noise); both must simply produce
    // valid measurements on the same nonzero count.
    assert!(before.max_gflops > 0.0 && after.max_gflops > 0.0);
    assert_eq!(
        before.nnz_min + before.nnz_max,
        after.nnz_min + after.nnz_max
    );
}

/// Features respond to reordering in the documented directions.
#[test]
fn features_respond_to_reordering() {
    let a = corpus::scramble(&corpus::banded(1500, 3), 7);
    let before = matrix_features(&a, 8);
    let rcm = Rcm::default().compute(&a).unwrap().apply(&a).unwrap();
    let after = matrix_features(&rcm, 8);
    assert!(after.bandwidth < before.bandwidth / 4);
    assert!(after.profile < before.profile / 4);
    assert!(after.off_diagonal_nnz < before.off_diagonal_nnz);

    let gp = Gp::new(8).compute(&a).unwrap().apply(&a).unwrap();
    let after_gp = matrix_features(&gp, 8);
    assert!(after_gp.off_diagonal_nnz < before.off_diagonal_nnz / 2);
}
