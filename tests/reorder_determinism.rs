//! Determinism property tests for the parallel reordering pipeline.
//!
//! The contract of every `*_on` entry point is that the executor
//! changes *where* the work runs, never *what* it produces: orderings,
//! symmetrised patterns and permuted matrices must be **byte-identical**
//! between the sequential path and a [`ThreadTeam`] of any size. These
//! tests pin that contract across the corpus families of the study
//! (band, FEM mesh, R-MAT, road) plus the structural edge cases
//! (disconnected blocks, empty rows) at team sizes 1, 2, 4 and 8.

use reorder::{splice_ordering_on, Amd, Gps, Nd, Rcm, ReorderAlgorithm, ReorderExec};
use sparsemat::{symmetrize_pattern, symmetrize_pattern_on, CooMatrix, CsrMatrix, Permutation};
use team::{Exec, ThreadTeam};

const TEAM_SIZES: [usize; 4] = [1, 2, 4, 8];

/// The corpus families the paper sweeps, scaled down to test size, plus
/// the edge cases parallel code paths tend to get wrong.
fn family_matrices() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("band", corpus::scramble(&corpus::banded(600, 4), 17)),
        ("fem2d", corpus::scramble(&corpus::mesh2d(28, 28), 5)),
        ("fem3d", corpus::mesh3d(9, 9, 9)),
        ("rmat", corpus::rmat(11, 6, 7)),
        ("road", corpus::road(30, 30, 3)),
        ("disconnected", corpus::block_diag(6, 40, 9)),
        ("empty_rows", with_empty_rows()),
    ]
}

/// A matrix whose rows 3 and 7 have no entries at all (isolated
/// vertices in the ordering graph).
fn with_empty_rows() -> CsrMatrix {
    let n = 12;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        if i == 3 || i == 7 {
            continue;
        }
        coo.push(i, i, 2.0);
        let j = (i + 2) % n;
        if j != 3 && j != 7 && j != i {
            coo.push_symmetric(i, j, -1.0);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// An unsymmetric-pattern variant: keep the upper triangle plus the
/// diagonal, so symmetrisation has real work to do.
fn upper_triangle(a: &CsrMatrix) -> CsrMatrix {
    let mut coo = CooMatrix::new(a.nrows(), a.ncols());
    for (i, j, v) in a.iter() {
        if j >= i {
            coo.push(i, j, v);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Run `check` once per team size with a live team.
fn for_each_team(check: impl Fn(&ThreadTeam)) {
    for lanes in TEAM_SIZES {
        let team = ThreadTeam::new(lanes);
        check(&team);
    }
}

#[test]
fn rcm_is_byte_identical_across_team_sizes() {
    for (name, a) in family_matrices() {
        for algo in [Rcm::default(), Rcm { plain_cm: true }] {
            let seq = algo.compute(&a).expect(name).perm;
            for_each_team(|team| {
                let par = algo
                    .compute_on(&a, &ReorderExec::on_team(team))
                    .expect(name)
                    .perm;
                assert_eq!(
                    seq,
                    par,
                    "RCM(plain_cm={}) diverged on {name} at {} lanes",
                    algo.plain_cm,
                    team.size()
                );
            });
        }
    }
}

#[test]
fn gps_is_byte_identical_across_team_sizes() {
    for (name, a) in family_matrices() {
        for algo in [Gps::default(), Gps { reverse: true }] {
            let seq = algo.compute(&a).expect(name).perm;
            for_each_team(|team| {
                let par = algo
                    .compute_on(&a, &ReorderExec::on_team(team))
                    .expect(name)
                    .perm;
                assert_eq!(
                    seq,
                    par,
                    "GPS(reverse={}) diverged on {name} at {} lanes",
                    algo.reverse,
                    team.size()
                );
            });
        }
    }
}

/// AMD's round-based multiple elimination updates the quotient graph
/// in parallel over the round's pivots; the batch selection and the
/// per-pivot update are pure functions of the component, so the
/// ordering must not depend on the executor. `amd_round_min: 0`
/// forces even tiny rounds through the parallel path — with the
/// default cutover most of these test-sized rounds would quietly fall
/// back to the inline path and the test would prove nothing.
#[test]
fn amd_is_byte_identical_across_team_sizes() {
    for (name, a) in family_matrices() {
        for algo in [
            Amd::default(),
            Amd {
                round_slack: 2,
                ..Amd::default()
            },
        ] {
            let seq = algo.compute(&a).expect(name).perm;
            for_each_team(|team| {
                let rx = ReorderExec::on_team(team).with_amd_round_min(0);
                let par = algo.compute_on(&a, &rx).expect(name).perm;
                assert_eq!(
                    seq,
                    par,
                    "AMD(slack={}) diverged on {name} at {} lanes",
                    algo.round_slack,
                    team.size()
                );
            });
        }
    }
}

/// ND consumes AMD for every leaf (and for degenerate separators), so
/// its orderings inherit AMD's executor-independence.
#[test]
fn nd_is_byte_identical_across_team_sizes() {
    for (name, a) in family_matrices() {
        let algo = Nd::default();
        let seq = algo.compute(&a).expect(name).perm;
        for_each_team(|team| {
            let rx = ReorderExec::on_team(team).with_amd_round_min(0);
            let par = algo.compute_on(&a, &rx).expect(name).perm;
            assert_eq!(seq, par, "ND diverged on {name} at {} lanes", team.size());
        });
    }
}

#[test]
fn symmetrize_is_byte_identical_across_team_sizes() {
    for (name, a) in family_matrices() {
        let u = upper_triangle(&a);
        let seq = symmetrize_pattern(&u).expect(name);
        for_each_team(|team| {
            let par = symmetrize_pattern_on(&u, Exec::Team(team)).expect(name);
            assert_eq!(
                (seq.rowptr(), seq.colidx()),
                (par.rowptr(), par.colidx()),
                "symmetrize diverged on {name} at {} lanes",
                team.size()
            );
        });
    }
}

#[test]
fn permutation_application_is_byte_identical_across_team_sizes() {
    for (name, a) in family_matrices() {
        // A fixed non-trivial permutation: reverse order.
        let n = a.nrows();
        let perm = Permutation::from_new_to_old((0..n as u32).rev().collect()).expect(name);
        let seq_sym = a.permute_symmetric(&perm).expect(name);
        let seq_rows = a.permute_rows(&perm);
        let seq_cols = a.permute_cols(&perm);
        for_each_team(|team| {
            let exec = Exec::Team(team);
            assert_eq!(
                seq_sym,
                a.permute_symmetric_on(&perm, exec).expect(name),
                "permute_symmetric diverged on {name} at {} lanes",
                team.size()
            );
            assert_eq!(
                seq_rows,
                a.permute_rows_on(&perm, exec),
                "permute_rows diverged on {name} at {} lanes",
                team.size()
            );
            assert_eq!(
                seq_cols,
                a.permute_cols_on(&perm, exec),
                "permute_cols diverged on {name} at {} lanes",
                team.size()
            );
        });
    }
}

/// The dynamic-matrix contract: splicing a cached component-structured
/// ordering after an edge delta must reproduce, byte for byte, what a
/// full recompute on the mutated matrix produces — for every
/// component-capable algorithm, every corpus family, and every team
/// size. This is what lets the engine serve delta-descendants from
/// spliced orderings without ever changing an answer.
#[test]
fn splice_after_delta_is_byte_identical_to_full_recompute() {
    let algos: Vec<(&'static str, Box<dyn ReorderAlgorithm>)> = vec![
        ("rcm", Box::new(Rcm::default())),
        ("cm", Box::new(Rcm { plain_cm: true })),
        ("gps", Box::new(Gps::default())),
        ("gps_rev", Box::new(Gps { reverse: true })),
        ("amd", Box::new(Amd::default())),
    ];
    for (name, a) in family_matrices() {
        // A deterministic symmetric edit batch against this family.
        let batch = corpus::mutation_trace(&a, 1, 6, 0xD1F7 ^ a.nrows() as u64)
            .pop()
            .unwrap();
        let mut child = a.clone();
        let report = child.apply_delta(&batch).expect(name);
        for (algo_name, algo) in &algos {
            let seq = ReorderExec::sequential();
            let cached = algo
                .compute_components_on(&a, &seq)
                .expect(name)
                .expect("component-capable algorithm");
            let full = algo
                .compute_components_on(&child, &seq)
                .expect(name)
                .expect("component-capable algorithm");
            for_each_team(|team| {
                let rx = ReorderExec::on_team(team);
                let (spliced, _) = splice_ordering_on(
                    algo.as_ref(),
                    &child,
                    &cached.order,
                    &cached.ranges,
                    &report.touched_rows,
                    &rx,
                )
                .expect(name)
                .expect("splice accepted");
                assert_eq!(
                    full.order,
                    spliced.order,
                    "{algo_name} splice diverged from full recompute on {name} at {} lanes",
                    team.size()
                );
                assert_eq!(
                    full.ranges,
                    spliced.ranges,
                    "{algo_name} splice ranges diverged on {name} at {} lanes",
                    team.size()
                );
            });
        }
    }
}

/// The full serving-side composition: compute on a team, apply on the
/// same team, compare against the all-sequential result.
#[test]
fn reordered_matrices_are_byte_identical_end_to_end() {
    for (name, a) in family_matrices() {
        let seq = Rcm::default().compute(&a).expect(name);
        let seq_b = seq.apply(&a).expect(name);
        for_each_team(|team| {
            let par = Rcm::default()
                .compute_on(&a, &ReorderExec::on_team(team))
                .expect(name);
            let par_b = par.apply_on(&a, Exec::Team(team)).expect(name);
            assert_eq!(
                seq_b,
                par_b,
                "end-to-end RCM matrix diverged on {name} at {} lanes",
                team.size()
            );
        });
    }
}
