//! Qualitative findings of the paper, asserted end-to-end at test
//! scale. These are the "shape" checks: who wins, in which direction,
//! under which kernel — not absolute numbers.

use reorder_study::prelude::*;

/// Finding 6 (§4.7 / Table 5): Gray is the fastest reordering and RCM
/// is (nearly always) second; ND and HP are the slowest.
#[test]
fn reordering_cost_ranking() {
    // Large enough that asymptotic costs dominate constant overheads
    // (Table 5 ranks the algorithms on the largest matrices).
    let a = corpus::scramble(&corpus::mesh2d(130, 130), 2);
    let mut times = std::collections::HashMap::new();
    for alg in all_algorithms(8, 16) {
        // Median of 3 runs to de-noise the CI machine.
        let mut samples: Vec<f64> = (0..3)
            .map(|_| alg.compute_timed(&a).expect("square").elapsed.as_secs_f64())
            .collect();
        samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        times.insert(alg.name().to_string(), samples[1]);
    }
    let gray = times["Gray"];
    for (name, &t) in &times {
        if name != "Gray" {
            assert!(
                gray <= t * 1.5,
                "Gray ({gray:.4}s) should be fastest; {name} took {t:.4}s"
            );
        }
    }
    assert!(
        times["RCM"] < times["ND"],
        "RCM should beat ND in reordering time"
    );
    assert!(
        times["RCM"] < times["HP"],
        "RCM should beat HP in reordering time"
    );
}

/// §4.6 / Fig. 6: the fill-reducing orderings (AMD, ND) produce the
/// least Cholesky fill; every symmetric reordering typically beats a
/// scrambled original.
#[test]
fn fill_reduction_ranking() {
    let a = corpus::make_spd(&corpus::scramble(&corpus::mesh2d(30, 30), 8));
    let fill_orig = fill_ratio(&a);
    let mut fills = std::collections::HashMap::new();
    for alg in all_algorithms(4, 8) {
        if alg.name() == "Gray" {
            continue; // unsymmetric, excluded in §4.6
        }
        let b = alg.compute(&a).unwrap().apply(&a).unwrap();
        fills.insert(alg.name().to_string(), fill_ratio(&b));
    }
    for (name, &f) in &fills {
        assert!(
            f < fill_orig,
            "{name} fill {f:.2} should beat scrambled original {fill_orig:.2}"
        );
    }
    // AMD and ND are the two best.
    let mut sorted: Vec<(&String, &f64)> = fills.iter().collect();
    sorted.sort_by(|x, y| x.1.partial_cmp(y.1).unwrap());
    let top2: Vec<&str> = sorted.iter().take(2).map(|(n, _)| n.as_str()).collect();
    assert!(
        top2.contains(&"AMD") && top2.contains(&"ND"),
        "fill ranking should start with AMD and ND, got {sorted:?}"
    );
}

/// §4.5 / Fig. 5 (top-left): RCM is the best bandwidth reducer.
#[test]
fn rcm_wins_bandwidth() {
    for seed in [1u64, 2, 3] {
        let a = corpus::scramble(&corpus::mesh2d(40, 40), seed);
        let mut best_name = "Original";
        let mut best = bandwidth(&a);
        for alg in all_algorithms(8, 16) {
            let b = alg.compute(&a).unwrap().apply(&a).unwrap();
            let bw = bandwidth(&b);
            if bw < best {
                best = bw;
                best_name = alg.name();
            }
        }
        assert_eq!(best_name, "RCM", "seed {seed}: RCM must win bandwidth");
    }
}

/// §4.5 / Fig. 5: GP is the best off-diagonal-nnz reducer (edge-cut is
/// literally its objective). Stray long-range entries — ubiquitous in
/// real matrices — break pure banding but not clustering, which is why
/// GP wins this feature on most instances in the paper.
#[test]
fn gp_wins_off_diagonal_nnz() {
    let t = 8;
    // "Most instances" needs a sample wide enough to survive instance
    // noise: on any given random instance the runner-up is HP (the
    // other partitioner, optimising the same connectivity objective),
    // and which of the two edges ahead depends on the drawn chords.
    // Five seeds give GP a stable majority; a partitioner must win
    // every instance outright.
    let seeds = [1u64, 2, 3, 4, 5];
    let mut gp_wins = 0;
    for &seed in &seeds {
        let a =
            corpus::with_random_edges(&corpus::scramble(&corpus::mesh2d(48, 48), seed), 0.02, seed);
        let mut best_name = "Original";
        let mut best = off_diagonal_nnz(&a, t);
        for alg in all_algorithms(t, 16) {
            let b = alg.compute(&a).unwrap().apply(&a).unwrap();
            let od = off_diagonal_nnz(&b, t);
            if od < best {
                best = od;
                best_name = alg.name();
            }
        }
        assert!(
            best_name == "GP" || best_name == "HP",
            "seed {seed}: a partitioner must win off-diagonal nnz, got {best_name}"
        );
        if best_name == "GP" {
            gp_wins += 1;
        }
    }
    assert!(
        2 * gp_wins > seeds.len(),
        "GP should win the off-diagonal count on most instances ({gp_wins}/{})",
        seeds.len()
    );
}

/// §4.3: the 2D kernel's imbalance factor is always 1 (by construction)
/// while 1D varies with the ordering.
#[test]
fn two_d_kernel_is_always_balanced() {
    // Heavy rows concentrated in one row block: the worst case for the
    // 1D row split.
    let mut coo = sparsemat::CooMatrix::new(2000, 2000);
    for i in 0..100 {
        for j in 0..40 {
            coo.push(i, (i * 17 + j * 53) % 2000, 1.0);
        }
    }
    for i in 100..2000 {
        coo.push(i, i, 1.0);
    }
    let a = sparsemat::CsrMatrix::from_coo(&coo);
    let counts_1d = spmv::nnz_per_thread(&a, 8);
    assert!(
        imbalance_factor(&counts_1d) > 1.3,
        "mix should imbalance 1D"
    );
    let plan2 = Plan2d::new(&a, 8);
    let imb2 = imbalance_factor(&plan2.nnz_per_thread());
    assert!(
        (imb2 - 1.0).abs() < 0.01,
        "2D imbalance {imb2} should be ~1"
    );
}

/// Gray's dense/sparse split groups heavy rows: its 1D nnz imbalance on
/// a mixed-density matrix is (much) worse than the original order —
/// the §4.4 Class-1 observation that Gray induces imbalance.
#[test]
fn gray_induces_imbalance_on_mixed_density() {
    let a = corpus::dense_rows_mix(3000, 0.01, 6);
    let before = imbalance_factor(&spmv::nnz_per_thread(&a, 8));
    let g = Gray::default().compute(&a).unwrap().apply(&a).unwrap();
    let after = imbalance_factor(&spmv::nnz_per_thread(&g, 8));
    assert!(
        after > before,
        "Gray should concentrate heavy rows: {before:.2} -> {after:.2}"
    );
}

/// §4.5's key analytical finding: across (matrix, ordering) pairs, SpMV
/// runtime correlates with the off-diagonal nonzero count more strongly
/// than with bandwidth — the feature GP optimises is the one that
/// matters.
#[test]
fn offdiag_correlates_with_runtime() {
    use archsim::{simulate_spmv_1d_opt, SimOptions};
    let milan = machine_by_name("Milan B").unwrap();
    let opts = SimOptions {
        cache_scale: 1.0 / 32.0,
    };
    let mut offdiags: Vec<f64> = Vec::new();
    let mut bandwidths: Vec<f64> = Vec::new();
    let mut runtimes: Vec<f64> = Vec::new();
    // A mixed bag: recoverable, natural and irregular structures.
    let mats = vec![
        corpus::scramble(&corpus::mesh2d(45, 45), 1),
        corpus::mesh2d(45, 45),
        corpus::with_random_edges(&corpus::scramble(&corpus::banded(2000, 3), 2), 0.02, 2),
        corpus::rmat(11, 8, 3),
        corpus::genome(2500, 4),
        corpus::road(45, 45, 5),
    ];
    for a in &mats {
        for alg in all_algorithms(16, 32) {
            let b = alg.compute(a).unwrap().apply(a).unwrap();
            // Runtime is normalised per nonzero so matrix size doesn't
            // dominate the correlation.
            let r = simulate_spmv_1d_opt(&b, &milan, &opts);
            offdiags.push(off_diagonal_nnz(&b, 16) as f64 / b.nnz() as f64);
            bandwidths.push(bandwidth(&b) as f64 / b.nrows() as f64);
            runtimes.push(r.seconds / b.nnz() as f64);
        }
    }
    let rho_offdiag = spearman(&offdiags, &runtimes).unwrap();
    let rho_bandwidth = spearman(&bandwidths, &runtimes).unwrap();
    assert!(
        rho_offdiag > 0.5,
        "off-diag should correlate positively with runtime: {rho_offdiag:.2}"
    );
    assert!(
        rho_offdiag > rho_bandwidth,
        "off-diag (rho={rho_offdiag:.2}) should beat bandwidth (rho={rho_bandwidth:.2})"
    );
}
