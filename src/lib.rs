//! # reorder-study
//!
//! A from-scratch Rust reproduction of *Bringing Order to Sparsity: A
//! Sparse Matrix Reordering Study on Multicore CPUs* (SC '23).
//!
//! This umbrella crate re-exports the public API of the workspace:
//!
//! - [`sparsemat`] — CSR/CSC/COO formats, permutations, Matrix Market I/O;
//! - [`sparsegraph`] — matrix graphs, BFS, pseudo-peripheral vertices,
//!   column-net hypergraphs;
//! - [`partition`] — multilevel graph and hypergraph partitioning
//!   (METIS / PaToH stand-ins) and vertex separators;
//! - [`reorder`] — the six orderings of the study: RCM, AMD, ND, GP,
//!   HP and Gray;
//! - [`spmv`] — the 1D (row-split), 2D (nonzero-split) and merge-based
//!   parallel CSR SpMV kernels behind a unified [`spmv::Kernel`] trait,
//!   the persistent [`spmv::ThreadTeam`] executor and the measurement
//!   harness;
//! - [`spfeatures`] — bandwidth, profile, off-diagonal nonzero count,
//!   imbalance factor, performance profiles and summary statistics;
//! - [`cholesky`] — elimination trees, Gilbert–Ng–Peyton fill counts
//!   and a reference numeric factorisation;
//! - [`archsim`] — the eight-machine execution-cost model (Table 2);
//! - [`corpus`] — the synthetic SuiteSparse stand-in collection;
//! - [`engine`] — reordering-as-a-service: a content-addressed
//!   ordering cache with a batched worker pool and request coalescing
//!   (the §4.7 amortisation argument, operationalised);
//! - [`servetier`] — the sharded, admission-controlled serving tier on
//!   top of [`engine`]: consistent-hash routing, weighted-fair bounded
//!   admission with deadlines and load-shedding, and end-to-end SpMV
//!   answers delivered in the caller's original index space;
//! - [`telemetry`] — counters, gauges, log-linear latency histograms
//!   and RAII spans behind a process-wide registry, with JSON and
//!   Prometheus exporters (see README § Observability).
//!
//! # Quickstart
//!
//! ```
//! use reorder_study::prelude::*;
//!
//! // Build a matrix whose natural order has been destroyed.
//! let a = corpus::scramble(&corpus::mesh2d(40, 40), 7);
//!
//! // Reorder it with graph partitioning (the study's overall winner).
//! let result = Gp::new(8).compute(&a).unwrap();
//! let b = result.apply(&a).unwrap();
//!
//! // The off-diagonal nonzero count — the feature that §4.5 found most
//! // predictive of SpMV performance — drops sharply.
//! assert!(off_diagonal_nnz(&b, 8) < off_diagonal_nnz(&a, 8) / 2);
//!
//! // And SpMV still computes the same thing, on a persistent team.
//! let x = vec![1.0; a.ncols()];
//! let team = ThreadTeam::new(4);
//! let plan = Plan1d::new(&b, 4);
//! let mut y = vec![0.0; b.nrows()];
//! spmv_1d(&b, &plan, &team, &x, &mut y);
//! ```

pub use archsim;
pub use cholesky;
pub use corpus;
pub use engine;
pub use partition;
pub use reorder;
pub use servetier;
pub use sparsegraph;
pub use sparsemat;
pub use spfeatures;
pub use spmv;
pub use telemetry;

/// Convenience re-exports of the most used items.
pub mod prelude {
    pub use archsim::{machine_by_name, machines, simulate_spmv_1d, simulate_spmv_2d};
    pub use cholesky::{cholesky_factor, column_counts, fill_ratio};
    pub use corpus;
    pub use engine::{AlgoSpec, Engine, EngineConfig, EngineStats, MatrixHandle};
    pub use reorder::{
        all_algorithms, Amd, Gp, Gps, Gray, Hp, Nd, Original, Rcm, ReorderAlgorithm, ReorderResult,
        Sbd,
    };
    pub use servetier::{ServeTier, SpmvRequest, TenantSpec, TierConfig};
    pub use sparsemat::{CooMatrix, CsrMatrix, Permutation};
    pub use spfeatures::{
        bandwidth, geometric_mean, imbalance_factor, matrix_features, off_diagonal_nnz,
        performance_profile, profile, quartiles, recommend, spearman, Action, PredictorConfig,
    };
    pub use spmv::{
        conjugate_gradient, measure_spmv, spmv_1d, spmv_2d, spmv_merge, CgOptions, Kernel,
        KernelKind, MeasureConfig, Plan1d, Plan2d, PlanMerge, ThreadTeam,
    };
}
