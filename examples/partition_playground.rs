//! Partitioning playground: the substrate beneath GP, HP and ND.
//!
//! Partitions a mesh graph k ways with the multilevel graph
//! partitioner, compares the edge cut against a naive contiguous split
//! and a random assignment, then does the same on the column-net
//! hypergraph with the cut-net objective, and finally extracts a
//! vertex separator (the ND building block).
//!
//! ```text
//! cargo run --release --example partition_playground [k]
//! ```

use partition::{edge_cut, part_weights, partition_graph, partition_hypergraph};
use partition::{vertex_separator, HypergraphPartitionConfig, PartitionConfig};
use reorder_study::prelude::*;
use sparsegraph::{Graph, Hypergraph};

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let a = corpus::mesh2d(80, 80);
    let g = Graph::from_matrix(&a).expect("square symmetric");
    println!(
        "graph: {} vertices, {} edges (80x80 mesh); partitioning {k} ways\n",
        g.num_vertices(),
        g.num_edges()
    );

    // Multilevel partitioner.
    let parts = partition_graph(&g, &PartitionConfig::k(k));
    let cut = edge_cut(&g, &parts);
    let weights = part_weights(&g, &parts, k);
    println!("multilevel GP : cut {cut:5}   part weights {weights:?}");

    // Contiguous split (what the 1D kernel does implicitly).
    let n = g.num_vertices();
    let chunk = n.div_ceil(k);
    let contiguous: Vec<u32> = (0..n).map(|v| (v / chunk) as u32).collect();
    println!(
        "contiguous    : cut {:5}   (natural order blocks)",
        edge_cut(&g, &contiguous)
    );

    // Random assignment (worst case).
    let random: Vec<u32> = (0..n)
        .map(|v| ((v.wrapping_mul(2654435761)) % k) as u32)
        .collect();
    println!(
        "random        : cut {:5}   (no locality at all)\n",
        edge_cut(&g, &random)
    );

    // Hypergraph: column-net model, cut-net objective.
    let h = Hypergraph::column_net(&a);
    let hparts = partition_hypergraph(&h, &HypergraphPartitionConfig::k(k));
    let hparts_cut = h.cut_net(&hparts);
    let contiguous_cut = h.cut_net(&contiguous);
    println!("hypergraph cut-net: multilevel {hparts_cut}, contiguous {contiguous_cut}");
    println!(
        "hypergraph conn-1 : multilevel {}, contiguous {}\n",
        h.connectivity_minus_one(&hparts, k),
        h.connectivity_minus_one(&contiguous, k)
    );

    // Vertex separator — the ND building block.
    let sep = vertex_separator(&g, 1.1, 42);
    println!(
        "vertex separator: |left| = {}, |right| = {}, |separator| = {} (ideal ~80 for a 80x80 mesh)",
        sep.left.len(),
        sep.right.len(),
        sep.separator.len()
    );
}
