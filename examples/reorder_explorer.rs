//! Reorder explorer: visualise what each ordering does to a sparsity
//! pattern (the Fig. 1 experience, interactively).
//!
//! ```text
//! cargo run --release --example reorder_explorer [path/to/matrix.mtx]
//! ```
//!
//! With no argument, a built-in circuit-like matrix is used. With a
//! Matrix Market path, your own matrix is explored.

use reorder_study::prelude::*;
use sparsemat::{read_matrix_market, spy_string, SpyOptions};

fn main() {
    let a = match std::env::args().nth(1) {
        Some(path) => {
            let (a, header) = read_matrix_market(std::path::Path::new(&path))
                .unwrap_or_else(|e| panic!("failed to read {path}: {e}"));
            println!(
                "loaded {path}: {}x{}, {} entries ({:?} {:?})",
                header.nrows, header.ncols, header.entries, header.field, header.symmetry
            );
            if !a.is_square() {
                eprintln!("reorderings require a square matrix");
                std::process::exit(1);
            }
            a
        }
        None => {
            println!("no file given; using a built-in circuit-like matrix\n");
            corpus::circuit(3000, 11)
        }
    };

    let opts = SpyOptions {
        width: 40,
        height: 20,
        border: true,
    };
    println!("=== Original ===");
    println!(
        "bandwidth {}  profile {}  offdiag(16) {}",
        bandwidth(&a),
        profile(&a),
        off_diagonal_nnz(&a, 16)
    );
    print!("{}", spy_string(&a, &opts));

    for alg in all_algorithms(16, 32) {
        let timed = alg.compute_timed(&a).expect("square matrix");
        let b = timed.result.apply(&a).expect("apply");
        println!(
            "\n=== {} (computed in {:.3} s) ===",
            alg.name(),
            timed.elapsed.as_secs_f64()
        );
        println!(
            "bandwidth {}  profile {}  offdiag(16) {}",
            bandwidth(&b),
            profile(&b),
            off_diagonal_nnz(&b, 16)
        );
        print!("{}", spy_string(&b, &opts));
    }
}
