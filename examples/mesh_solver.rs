//! End-to-end solver scenario: the amortisation argument of §4.7.
//!
//! An iterative conjugate-gradient solver performs thousands of SpMV
//! iterations with the same matrix, so a one-time reordering cost is
//! amortised. This example solves a Poisson problem on a scrambled
//! mesh twice — original order vs GP order — and reports the
//! wall-clock difference, then cross-checks the solution with the
//! sparse Cholesky direct solver under an AMD ordering (the fill
//! argument of §4.6).
//!
//! ```text
//! cargo run --release --example mesh_solver
//! ```

use reorder_study::prelude::*;
use sparsemat::{axpy, dot, norm2};
use std::time::Instant;

/// Conjugate gradients with a fixed iteration budget; returns
/// (solution, iterations, seconds).
fn cg(
    a: &sparsemat::CsrMatrix,
    b: &[f64],
    tol: f64,
    max_iter: usize,
    threads: usize,
) -> (Vec<f64>, usize, f64) {
    let n = a.nrows();
    let plan = Plan1d::new(a, threads);
    let team = ThreadTeam::new(threads);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr = dot(&r, &r);
    let t0 = Instant::now();
    let mut iters = 0;
    for k in 0..max_iter {
        iters = k + 1;
        spmv_1d(a, &plan, &team, &p, &mut ap);
        let alpha = rr / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rr_new = dot(&r, &r);
        if rr_new.sqrt() <= tol {
            break;
        }
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    (x, iters, t0.elapsed().as_secs_f64())
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .max(2);
    // SPD Poisson matrix, scrambled as if assembled in arbitrary order.
    let a = corpus::scramble(&corpus::make_spd(&corpus::mesh2d(100, 100)), 3);
    let n = a.nrows();
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 37) as f64 - 18.0) / 18.0).collect();
    let b = a.spmv_dense(&x_true);
    println!(
        "Poisson system: {} unknowns, {} nnz, {threads} threads\n",
        n,
        a.nnz()
    );

    // --- CG in the original (scrambled) order. ---
    let (x0, it0, t0) = cg(&a, &b, 1e-8 * norm2(&b), 2000, threads);
    println!("CG, original order : {it0} iterations in {t0:.3} s");

    // --- CG after GP reordering (rhs permuted consistently). ---
    let reorder_t = Instant::now();
    let result = Gp::new(threads).compute(&a).expect("square");
    let ap = result.apply(&a).expect("apply");
    let reorder_secs = reorder_t.elapsed().as_secs_f64();
    let bp = result.perm.apply_to_slice(&b);
    let (xp, it1, t1) = cg(&ap, &bp, 1e-8 * norm2(&bp), 2000, threads);
    println!(
        "CG, GP order       : {it1} iterations in {t1:.3} s (+ {reorder_secs:.3} s reordering)"
    );
    if t1 < t0 {
        let saved_per_solve = t0 - t1;
        println!(
            "  -> {:.0} solves amortise the reordering cost",
            (reorder_secs / saved_per_solve).ceil()
        );
    }

    // Solutions agree (GP's solution is permuted; un-permute it).
    let xp_unperm = result.perm.inverse().apply_to_slice(&xp);
    let max_diff = x0
        .iter()
        .zip(xp_unperm.iter())
        .map(|(u, v)| (u - v).abs())
        .fold(0.0f64, f64::max);
    println!("  solutions agree to {max_diff:.2e}\n");

    // --- Direct solve: AMD cuts the Cholesky fill (§4.6). ---
    let fill_orig = fill_ratio(&a);
    let amd = Amd::default().compute(&a).expect("square");
    let a_amd = amd.apply(&a).expect("apply");
    let fill_amd = fill_ratio(&a_amd);
    println!("Cholesky fill ratio nnz(L)/nnz(A): original {fill_orig:.2}, AMD {fill_amd:.2}");
    let factor = cholesky_factor(&a_amd).expect("SPD");
    let b_amd = amd.perm.apply_to_slice(&b);
    let x_amd = factor.solve(&b_amd);
    let x_direct = amd.perm.inverse().apply_to_slice(&x_amd);
    let direct_err = x_direct
        .iter()
        .zip(x_true.iter())
        .map(|(u, v)| (u - v).abs())
        .fold(0.0f64, f64::max);
    println!("direct solve error vs ground truth: {direct_err:.2e}");
}
