//! Boundary Fiduccia–Mattheyses refinement for 2-way partitions.
//!
//! Each pass tentatively moves vertices one at a time — always the
//! highest-gain movable vertex that keeps the balance constraint — and
//! locks each moved vertex for the rest of the pass. Negative-gain moves
//! are permitted (that is what lets FM climb out of local minima); at
//! the end of the pass the prefix of moves with the best observed cut is
//! kept and the remainder rolled back. Passes repeat until no
//! improvement is found.

use crate::Bisection;
use sparsegraph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Upper limit of consecutive non-improving moves inside one pass
/// before the pass is cut short (standard FM early exit).
const MAX_BAD_MOVES: usize = 150;

/// Refine a bisection in place. Returns the number of improving passes.
pub fn fm_refine(
    g: &Graph,
    bis: &mut Bisection,
    target: [i64; 2],
    ubfactor: f64,
    max_passes: usize,
) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let max_allowed = [
        ((target[0] as f64) * ubfactor).ceil() as i64,
        ((target[1] as f64) * ubfactor).ceil() as i64,
    ];
    let mut passes_done = 0;

    for _ in 0..max_passes {
        // Gains: weight of external edges minus internal edges.
        let mut gain = vec![0i64; n];
        for v in 0..n {
            let pv = bis.part_of[v];
            let mut gv = 0i64;
            for (u, w) in g.neighbors_weighted(v) {
                if bis.part_of[u as usize] == pv {
                    gv -= w;
                } else {
                    gv += w;
                }
            }
            gain[v] = gv;
        }
        let mut locked = vec![false; n];
        // Max-heap of (gain, vertex); stale entries skipped lazily.
        let mut heap: BinaryHeap<(i64, Reverse<u32>)> = BinaryHeap::new();
        for v in 0..n {
            // Seed with boundary vertices; interior vertices enter the
            // heap lazily as their neighbours move.
            let boundary = g
                .neighbors_weighted(v)
                .any(|(u, _)| bis.part_of[u as usize] != bis.part_of[v]);
            if boundary || gain[v] >= 0 {
                heap.push((gain[v], Reverse(v as u32)));
            }
        }
        // For graphs with no boundary (already perfect), seed everything
        // so balance can still be fixed.
        if heap.is_empty() {
            for v in 0..n {
                heap.push((gain[v], Reverse(v as u32)));
            }
        }

        let mut moves: Vec<u32> = Vec::new();
        let mut cur_cut = bis.cut;
        let mut cur_w = bis.part_weights;
        let mut best_cut = bis.cut;
        let mut best_feasible = cur_w[0] <= max_allowed[0] && cur_w[1] <= max_allowed[1];
        let mut best_len = 0usize;
        let mut bad_streak = 0usize;

        while let Some((gtop, Reverse(v))) = heap.pop() {
            let v = v as usize;
            if locked[v] || gtop != gain[v] {
                continue; // stale heap entry
            }
            let from = bis.part_of[v] as usize;
            let to = 1 - from;
            let wv = g.vertex_weight(v);
            // Balance check: destination may not exceed its allowance,
            // unless the move strictly reduces the maximum overflow.
            let feasible_after = cur_w[to] + wv <= max_allowed[to];
            let overflow_now = (cur_w[0] - max_allowed[0]).max(cur_w[1] - max_allowed[1]);
            let overflow_after =
                ((cur_w[from] - wv) - max_allowed[from]).max((cur_w[to] + wv) - max_allowed[to]);
            if !feasible_after && overflow_after >= overflow_now {
                continue;
            }
            // Execute the tentative move.
            locked[v] = true;
            bis.part_of[v] = to as u8;
            cur_w[from] -= wv;
            cur_w[to] += wv;
            cur_cut -= gain[v];
            moves.push(v as u32);
            // Update neighbour gains.
            for (u, w) in g.neighbors_weighted(v) {
                let u = u as usize;
                if locked[u] {
                    continue;
                }
                // v left u's "same part" set or joined it.
                if bis.part_of[u] as usize == to {
                    gain[u] -= 2 * w;
                } else {
                    gain[u] += 2 * w;
                }
                heap.push((gain[u], Reverse(u as u32)));
            }

            let now_feasible = cur_w[0] <= max_allowed[0] && cur_w[1] <= max_allowed[1];
            let improves = match (now_feasible, best_feasible) {
                (true, false) => true,
                (false, true) => false,
                _ => cur_cut < best_cut,
            };
            if improves {
                best_cut = cur_cut;
                best_feasible = now_feasible;
                best_len = moves.len();
                bad_streak = 0;
            } else {
                bad_streak += 1;
                if bad_streak > MAX_BAD_MOVES {
                    break;
                }
            }
        }

        // Roll back moves after the best prefix.
        for &v in &moves[best_len..] {
            let v = v as usize;
            let cur = bis.part_of[v] as usize;
            bis.part_of[v] = (1 - cur) as u8;
        }
        let improved = best_len > 0 && best_cut < bis.cut;
        let new_state = Bisection::recompute(g, std::mem::take(&mut bis.part_of));
        *bis = new_state;
        debug_assert_eq!(bis.cut, if best_len > 0 { best_cut } else { bis.cut });
        if improved {
            passes_done += 1;
        } else {
            break;
        }
    }
    passes_done
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Graph {
        let idx = |r: usize, c: usize| (r * n + c) as u32;
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r > 0 {
                    adjncy.push(idx(r - 1, c));
                }
                if r + 1 < n {
                    adjncy.push(idx(r + 1, c));
                }
                if c > 0 {
                    adjncy.push(idx(r, c - 1));
                }
                if c + 1 < n {
                    adjncy.push(idx(r, c + 1));
                }
                xadj.push(adjncy.len());
            }
        }
        Graph::from_adjacency(xadj, adjncy).unwrap()
    }

    #[test]
    fn fm_improves_a_bad_split() {
        // 8x8 grid split column-interleaved (very bad cut); FM should
        // drive it down substantially.
        let n = 8;
        let g = grid(n);
        let part_of: Vec<u8> = (0..n * n).map(|v| ((v % n) % 2) as u8).collect();
        let mut bis = Bisection::recompute(&g, part_of);
        let initial_cut = bis.cut;
        assert!(initial_cut >= 50);
        let target = [32i64, 32i64];
        fm_refine(&g, &mut bis, target, 1.05, 12);
        assert!(
            bis.cut < initial_cut / 2,
            "FM failed to improve: {} -> {}",
            initial_cut,
            bis.cut
        );
        // Balance within the allowance ceiling ceil(1.05 * 32) = 34.
        assert!(bis.part_weights[0] <= 34 && bis.part_weights[1] <= 34);
        // Internal consistency.
        let check = Bisection::recompute(&g, bis.part_of.clone());
        assert_eq!(check.cut, bis.cut);
        assert_eq!(check.part_weights, bis.part_weights);
    }

    #[test]
    fn fm_keeps_optimal_split() {
        let n = 6;
        let g = grid(n);
        // Optimal split: top half vs bottom half, cut = 6.
        let part_of: Vec<u8> = (0..n * n)
            .map(|v| if v / n < n / 2 { 0 } else { 1 })
            .collect();
        let mut bis = Bisection::recompute(&g, part_of);
        assert_eq!(bis.cut, 6);
        fm_refine(&g, &mut bis, [18, 18], 1.05, 8);
        assert_eq!(bis.cut, 6, "FM must not damage an optimal split");
    }

    #[test]
    fn fm_respects_balance() {
        let n = 8;
        let g = grid(n);
        let part_of: Vec<u8> = (0..n * n).map(|v| (v % 2) as u8).collect();
        let mut bis = Bisection::recompute(&g, part_of);
        let target = [32i64, 32i64];
        fm_refine(&g, &mut bis, target, 1.05, 12);
        assert!(bis.part_weights[0] as f64 <= 32.0 * 1.05 + 1.0);
        assert!(bis.part_weights[1] as f64 <= 32.0 * 1.05 + 1.0);
    }

    #[test]
    fn fm_noop_on_empty_graph() {
        let g = Graph::from_adjacency(vec![0], vec![]).unwrap();
        let mut bis = Bisection::recompute(&g, vec![]);
        assert_eq!(fm_refine(&g, &mut bis, [0, 0], 1.05, 4), 0);
    }
}
