//! Vertex separators for nested dissection.
//!
//! An edge-cut bisection is converted into a vertex separator by taking
//! a small vertex cover of the cut edges: removing the cover vertices
//! disconnects the two sides. We use the classic greedy cover (always
//! pick the endpoint covering the most uncovered cut edges), which in
//! practice yields separators close to the boundary size of the smaller
//! side — good enough to reproduce ND's fill-reducing behaviour.

use crate::recursive::multilevel_bisect;
use sparsegraph::Graph;

/// The three-way split produced by separator extraction.
#[derive(Debug, Clone)]
pub struct Separator {
    /// Vertices of the first remaining side.
    pub left: Vec<u32>,
    /// Vertices of the second remaining side.
    pub right: Vec<u32>,
    /// Separator vertices (removing them disconnects left from right).
    pub separator: Vec<u32>,
}

/// Compute a vertex separator of `g` via multilevel edge bisection and
/// greedy vertex cover of the cut edges.
pub fn vertex_separator(g: &Graph, ubfactor: f64, seed: u64) -> Separator {
    let n = g.num_vertices();
    if n <= 1 {
        return Separator {
            left: (0..n as u32).collect(),
            right: Vec::new(),
            separator: Vec::new(),
        };
    }
    let total = g.total_vertex_weight();
    let bis = multilevel_bisect(g, [total / 2, total - total / 2], ubfactor, seed);

    // Collect cut edges.
    let mut cut_edges: Vec<(u32, u32)> = Vec::new();
    for v in 0..n {
        if bis.part_of[v] != 0 {
            continue;
        }
        for &u in g.neighbors(v) {
            if bis.part_of[u as usize] == 1 {
                cut_edges.push((v as u32, u));
            }
        }
    }

    // Greedy vertex cover: repeatedly take the vertex incident to the
    // most uncovered cut edges.
    let mut cover_count = vec![0u32; n];
    for &(a, b) in &cut_edges {
        cover_count[a as usize] += 1;
        cover_count[b as usize] += 1;
    }
    let mut in_separator = vec![false; n];
    let mut alive: Vec<(u32, u32)> = cut_edges;
    while !alive.is_empty() {
        let (&(ea, eb), _) = alive
            .iter()
            .zip(0..)
            .max_by_key(|(&(a, b), _)| cover_count[a as usize].max(cover_count[b as usize]))
            .expect("alive non-empty");
        let pick = if cover_count[ea as usize] >= cover_count[eb as usize] {
            ea
        } else {
            eb
        };
        in_separator[pick as usize] = true;
        // Remove covered edges and decrement counts.
        alive.retain(|&(a, b)| {
            if a == pick || b == pick {
                cover_count[a as usize] -= 1;
                cover_count[b as usize] -= 1;
                false
            } else {
                true
            }
        });
    }

    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut separator = Vec::new();
    for v in 0..n {
        if in_separator[v] {
            separator.push(v as u32);
        } else if bis.part_of[v] == 0 {
            left.push(v as u32);
        } else {
            right.push(v as u32);
        }
    }
    Separator {
        left,
        right,
        separator,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Graph {
        let idx = |r: usize, c: usize| (r * n + c) as u32;
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r > 0 {
                    adjncy.push(idx(r - 1, c));
                }
                if r + 1 < n {
                    adjncy.push(idx(r + 1, c));
                }
                if c > 0 {
                    adjncy.push(idx(r, c - 1));
                }
                if c + 1 < n {
                    adjncy.push(idx(r, c + 1));
                }
                xadj.push(adjncy.len());
            }
        }
        Graph::from_adjacency(xadj, adjncy).unwrap()
    }

    /// Check the separator property: no edge directly connects left and
    /// right.
    fn assert_separates(g: &Graph, s: &Separator) {
        let n = g.num_vertices();
        let mut side = vec![0u8; n]; // 0 = left, 1 = right, 2 = sep
        for &v in &s.right {
            side[v as usize] = 1;
        }
        for &v in &s.separator {
            side[v as usize] = 2;
        }
        for v in 0..n {
            if side[v] == 2 {
                continue;
            }
            for &u in g.neighbors(v) {
                if side[u as usize] != 2 {
                    assert_eq!(
                        side[v], side[u as usize],
                        "edge ({v}, {u}) crosses the separator"
                    );
                }
            }
        }
    }

    #[test]
    fn grid_separator_is_small_and_valid() {
        let n = 12;
        let g = grid(n);
        let s = vertex_separator(&g, 1.08, 42);
        assert_separates(&g, &s);
        assert_eq!(
            s.left.len() + s.right.len() + s.separator.len(),
            g.num_vertices()
        );
        assert!(
            s.separator.len() <= 2 * n,
            "separator of size {} on a {n}x{n} grid (expected ~{n})",
            s.separator.len()
        );
        assert!(!s.left.is_empty() && !s.right.is_empty());
        // The sides should be roughly balanced.
        let ratio = s.left.len() as f64 / s.right.len() as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "sides too uneven: {ratio}");
    }

    #[test]
    fn tiny_graphs_degenerate_gracefully() {
        let g = Graph::from_adjacency(vec![0, 0], vec![]).unwrap();
        let s = vertex_separator(&g, 1.05, 1);
        assert_eq!(s.left.len(), 1);
        assert!(s.separator.is_empty());

        let g2 = Graph::from_adjacency(vec![0, 1, 2], vec![1, 0]).unwrap();
        let s2 = vertex_separator(&g2, 1.05, 1);
        assert_separates(&g2, &s2);
        assert_eq!(s2.left.len() + s2.right.len() + s2.separator.len(), 2);
    }

    #[test]
    fn path_separator_is_single_vertex() {
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        let n = 31;
        for v in 0..n {
            if v > 0 {
                adjncy.push((v - 1) as u32);
            }
            if v + 1 < n {
                adjncy.push((v + 1) as u32);
            }
            xadj.push(adjncy.len());
        }
        let g = Graph::from_adjacency(xadj, adjncy).unwrap();
        let s = vertex_separator(&g, 1.10, 7);
        assert_separates(&g, &s);
        assert!(
            s.separator.len() <= 2,
            "path separator should be 1-2 vertices, got {}",
            s.separator.len()
        );
    }
}
