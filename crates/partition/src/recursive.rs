//! Multilevel bisection and recursive k-way partitioning.

use crate::coarsen::coarsen_to;
use crate::fm::fm_refine;
use crate::initial::greedy_growing_bisection;
use crate::rng::SplitMix;
use crate::Bisection;
use sparsegraph::Graph;

/// Configuration for [`partition_graph`].
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Number of parts to create.
    pub num_parts: usize,
    /// Allowed imbalance factor (e.g. 1.05 = 5 %). METIS's default load
    /// balance tolerance is in the same range.
    pub ubfactor: f64,
    /// Coarsening stops below this many vertices.
    pub coarsen_to: usize,
    /// Trials for the initial bisection on the coarsest graph.
    pub initial_trials: usize,
    /// Maximum FM passes per uncoarsening level.
    pub fm_passes: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            num_parts: 2,
            ubfactor: 1.05,
            coarsen_to: 120,
            initial_trials: 6,
            fm_passes: 8,
            seed: 0x5EED,
        }
    }
}

impl PartitionConfig {
    /// Convenience constructor for a `k`-way configuration with defaults.
    pub fn k(num_parts: usize) -> Self {
        PartitionConfig {
            num_parts,
            ..Default::default()
        }
    }
}

/// Multilevel 2-way partitioning: coarsen, bisect, uncoarsen + refine.
pub fn multilevel_bisect(g: &Graph, target: [i64; 2], ubfactor: f64, seed: u64) -> Bisection {
    let mut rng = SplitMix::new(seed);
    let cfg = PartitionConfig::default();
    let levels = coarsen_to(g, cfg.coarsen_to, &mut rng);
    let coarsest: &Graph = levels.last().map(|l| &l.graph).unwrap_or(g);

    let mut bis = greedy_growing_bisection(coarsest, target, cfg.initial_trials, &mut rng);
    fm_refine(coarsest, &mut bis, target, ubfactor, cfg.fm_passes);

    // Project back through the levels, refining at each.
    for li in (0..levels.len()).rev() {
        let fine_graph: &Graph = if li == 0 { g } else { &levels[li - 1].graph };
        let coarse_of = &levels[li].coarse_of;
        let mut fine_part = vec![0u8; fine_graph.num_vertices()];
        for v in 0..fine_graph.num_vertices() {
            fine_part[v] = bis.part_of[coarse_of[v] as usize];
        }
        bis = Bisection::recompute(fine_graph, fine_part);
        fm_refine(fine_graph, &mut bis, target, ubfactor, cfg.fm_passes);
    }
    bis
}

/// Recursive-bisection k-way partitioning of a graph — the stand-in for
/// `METIS_PartGraphRecursive` used by the paper's GP reordering.
///
/// Returns the part id (in `0..num_parts`) of every vertex. Balance is
/// on vertex weight; with unit weights this balances the number of rows
/// per part, the configuration the paper uses (§3.3).
pub fn partition_graph(g: &Graph, config: &PartitionConfig) -> Vec<u32> {
    let n = g.num_vertices();
    let k = config.num_parts.max(1);
    let mut part_of = vec![0u32; n];
    if k == 1 || n == 0 {
        return part_of;
    }
    let vertices: Vec<u32> = (0..n as u32).collect();
    recurse(g, &vertices, 0, k, config, config.seed, &mut part_of);
    part_of
}

/// Recursively bisect the subgraph induced by `vertices` into parts
/// `base..base+k`.
fn recurse(
    g_full: &Graph,
    vertices: &[u32],
    base: u32,
    k: usize,
    config: &PartitionConfig,
    seed: u64,
    part_of: &mut [u32],
) {
    if k == 1 || vertices.len() <= 1 {
        for &v in vertices {
            part_of[v as usize] = base;
        }
        return;
    }
    let (sub, map) = subgraph_of(g_full, vertices);
    // Split k into k0 + k1 (k0 = floor(k/2)); target weights
    // proportional to the split so non-power-of-two k stays balanced.
    let k0 = k / 2;
    let k1 = k - k0;
    let total = sub.total_vertex_weight();
    let t0 = (total as f64 * k0 as f64 / k as f64).round() as i64;
    let target = [t0, total - t0];
    let bis = multilevel_bisect(&sub, target, config.ubfactor, seed);

    let mut left = Vec::with_capacity(vertices.len() / 2 + 1);
    let mut right = Vec::with_capacity(vertices.len() / 2 + 1);
    for (local, &global) in map.iter().enumerate() {
        if bis.part_of[local] == 0 {
            left.push(global);
        } else {
            right.push(global);
        }
    }
    recurse(
        g_full,
        &left,
        base,
        k0,
        config,
        seed.wrapping_mul(0x9E37).wrapping_add(1),
        part_of,
    );
    recurse(
        g_full,
        &right,
        base + k0 as u32,
        k1,
        config,
        seed.wrapping_mul(0x9E37).wrapping_add(2),
        part_of,
    );
}

/// Extract a vertex-induced subgraph (thin wrapper over
/// `Graph::subgraph`, avoiding the extra map clone when the vertex set
/// is the whole graph).
fn subgraph_of(g: &Graph, vertices: &[u32]) -> (Graph, Vec<u32>) {
    if vertices.len() == g.num_vertices() {
        (g.clone(), vertices.to_vec())
    } else {
        g.subgraph(vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{edge_cut, part_weights};

    fn grid(n: usize) -> Graph {
        let idx = |r: usize, c: usize| (r * n + c) as u32;
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r > 0 {
                    adjncy.push(idx(r - 1, c));
                }
                if r + 1 < n {
                    adjncy.push(idx(r + 1, c));
                }
                if c > 0 {
                    adjncy.push(idx(r, c - 1));
                }
                if c + 1 < n {
                    adjncy.push(idx(r, c + 1));
                }
                xadj.push(adjncy.len());
            }
        }
        Graph::from_adjacency(xadj, adjncy).unwrap()
    }

    #[test]
    fn multilevel_bisect_grid_quality() {
        let n = 16; // 256 vertices, optimal bisection cut = 16
        let g = grid(n);
        let total = g.total_vertex_weight();
        let b = multilevel_bisect(&g, [total / 2, total / 2], 1.05, 42);
        assert!(
            b.cut <= 28,
            "multilevel cut {} too far from optimal 16",
            b.cut
        );
        assert!(b.imbalance([total / 2, total / 2]) <= 1.06);
    }

    #[test]
    fn four_way_partition_balanced() {
        let g = grid(12); // 144 vertices
        let cfg = PartitionConfig::k(4);
        let parts = partition_graph(&g, &cfg);
        assert_eq!(parts.len(), 144);
        assert!(parts.iter().all(|&p| p < 4));
        let w = part_weights(&g, &parts, 4);
        for &pw in &w {
            assert!(
                (pw as f64) <= 36.0 * 1.12,
                "part weight {pw} too far above 36"
            );
            assert!(pw > 0, "no empty parts expected on a grid");
        }
        // Cut should be far below the total edge count.
        let cut = edge_cut(&g, &parts);
        assert!(cut < g.num_edges() as i64 / 4, "cut {cut} too large");
    }

    #[test]
    fn non_power_of_two_parts() {
        let g = grid(12);
        let cfg = PartitionConfig::k(6);
        let parts = partition_graph(&g, &cfg);
        let w = part_weights(&g, &parts, 6);
        assert_eq!(w.iter().sum::<i64>(), 144);
        for &pw in &w {
            assert!(
                (16..=33).contains(&pw),
                "6-way part weight {pw} out of range"
            );
        }
    }

    #[test]
    fn one_part_is_identity() {
        let g = grid(4);
        let cfg = PartitionConfig::k(1);
        let parts = partition_graph(&g, &cfg);
        assert!(parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid(10);
        let cfg = PartitionConfig::k(4);
        let p1 = partition_graph(&g, &cfg);
        let p2 = partition_graph(&g, &cfg);
        assert_eq!(p1, p2);
    }

    #[test]
    fn disconnected_graph_partitions() {
        // Two 4-cycles, no connection.
        let mut xadj = vec![0usize];
        let mut adjncy: Vec<u32> = Vec::new();
        for comp in 0..2u32 {
            let b = comp * 4;
            for i in 0..4u32 {
                adjncy.push(b + (i + 1) % 4);
                adjncy.push(b + (i + 3) % 4);
                xadj.push(adjncy.len());
            }
        }
        let g = Graph::from_adjacency(xadj, adjncy).unwrap();
        let cfg = PartitionConfig::k(2);
        let parts = partition_graph(&g, &cfg);
        let w = part_weights(&g, &parts, 2);
        assert_eq!(w[0] + w[1], 8);
        assert!(w[0] >= 3 && w[0] <= 5);
    }
}
