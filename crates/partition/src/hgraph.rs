//! Multilevel hypergraph partitioning with the cut-net objective — the
//! stand-in for PaToH used by the paper's HP reordering.
//!
//! The structure mirrors the graph partitioner: heavy-connectivity
//! matching coarsens the hypergraph, greedy growing produces an initial
//! bisection of the coarsest level, and FM refinement with per-net
//! side-counts improves the cut during uncoarsening. Recursive bisection
//! extends to k parts.

use crate::rng::SplitMix;
use sparsegraph::Hypergraph;

/// Nets larger than this are ignored during matching and receive no
/// incremental gain updates during FM (they are almost always cut and
/// their pins' gains are insensitive to single moves). PaToH applies
/// similar large-net thresholds.
const BIG_NET: usize = 256;

/// Partitioning objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HyperObjective {
    /// Minimise total weight of nets spanning >1 part (PaToH "cut-net",
    /// the metric chosen in §3.3 of the paper).
    CutNet,
    /// Minimise `Σ (λ−1)·w` (PaToH "connectivity", i.e. communication
    /// volume).
    Connectivity,
}

/// Configuration for [`partition_hypergraph`].
#[derive(Debug, Clone)]
pub struct HypergraphPartitionConfig {
    /// Number of parts.
    pub num_parts: usize,
    /// Allowed imbalance factor.
    pub ubfactor: f64,
    /// Objective function.
    pub objective: HyperObjective,
    /// Coarsening stops below this many vertices.
    pub coarsen_to: usize,
    /// Initial-partition trials on the coarsest hypergraph.
    pub initial_trials: usize,
    /// FM passes per level.
    pub fm_passes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HypergraphPartitionConfig {
    fn default() -> Self {
        HypergraphPartitionConfig {
            num_parts: 2,
            ubfactor: 1.05,
            objective: HyperObjective::CutNet,
            coarsen_to: 120,
            initial_trials: 6,
            fm_passes: 6,
            seed: 0x9A70,
        }
    }
}

impl HypergraphPartitionConfig {
    /// A `k`-way configuration with default knobs.
    pub fn k(num_parts: usize) -> Self {
        HypergraphPartitionConfig {
            num_parts,
            ..Default::default()
        }
    }
}

/// Internal mutable hypergraph used across coarsening levels.
#[derive(Debug, Clone)]
struct WorkHg {
    xpins: Vec<usize>,
    pins: Vec<u32>,
    xnets: Vec<usize>,
    nets: Vec<u32>,
    vwgt: Vec<i64>,
    nwgt: Vec<i64>,
}

impl WorkHg {
    fn from_hypergraph(h: &Hypergraph) -> WorkHg {
        let nv = h.num_vertices();
        let nn = h.num_nets();
        let mut xpins = Vec::with_capacity(nn + 1);
        xpins.push(0);
        let mut pins = Vec::with_capacity(h.num_pins());
        for j in 0..nn {
            pins.extend_from_slice(h.net_pins(j));
            xpins.push(pins.len());
        }
        let mut xnets = Vec::with_capacity(nv + 1);
        xnets.push(0);
        let mut nets = Vec::with_capacity(h.num_pins());
        for v in 0..nv {
            nets.extend_from_slice(h.vertex_nets(v));
            xnets.push(nets.len());
        }
        WorkHg {
            xpins,
            pins,
            xnets,
            nets,
            vwgt: (0..nv).map(|v| h.vertex_weight(v)).collect(),
            nwgt: (0..nn).map(|j| h.net_weight(j)).collect(),
        }
    }

    fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    fn num_nets(&self) -> usize {
        self.nwgt.len()
    }

    fn net_pins(&self, j: usize) -> &[u32] {
        &self.pins[self.xpins[j]..self.xpins[j + 1]]
    }

    fn vertex_nets(&self, v: usize) -> &[u32] {
        &self.nets[self.xnets[v]..self.xnets[v + 1]]
    }

    fn total_vertex_weight(&self) -> i64 {
        self.vwgt.iter().sum()
    }

    /// Rebuild the vertex→nets incidence from the net→pins arrays.
    fn rebuild_vertex_nets(&mut self) {
        let nv = self.num_vertices();
        let mut count = vec![0usize; nv + 1];
        for &p in &self.pins {
            count[p as usize + 1] += 1;
        }
        for v in 0..nv {
            count[v + 1] += count[v];
        }
        let xnets = count.clone();
        let mut nets = vec![0u32; self.pins.len()];
        let mut next: Vec<usize> = count[..nv].to_vec();
        for j in 0..self.num_nets() {
            for &p in &self.pins[self.xpins[j]..self.xpins[j + 1]] {
                nets[next[p as usize]] = j as u32;
                next[p as usize] += 1;
            }
        }
        self.xnets = xnets;
        self.nets = nets;
    }
}

/// One coarsening level.
struct HgLevel {
    hg: WorkHg,
    coarse_of: Vec<u32>,
}

/// Heavy-connectivity matching: match each vertex with the unmatched
/// co-pin vertex sharing the largest total net weight.
fn match_vertices(hg: &WorkHg, rng: &mut SplitMix) -> Vec<u32> {
    let n = hg.num_vertices();
    let mut match_of: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    let mut visit: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut visit);
    // Sparse counter of shared weight with candidate partners.
    let mut shared: Vec<i64> = vec![0; n];
    let mut touched: Vec<u32> = Vec::new();
    for &v in &visit {
        let v = v as usize;
        if matched[v] {
            continue;
        }
        touched.clear();
        for &j in hg.vertex_nets(v) {
            let pins = hg.net_pins(j as usize);
            if pins.len() > BIG_NET {
                continue;
            }
            let w = hg.nwgt[j as usize];
            for &u in pins {
                let u = u as usize;
                if u == v || matched[u] {
                    continue;
                }
                if shared[u] == 0 {
                    touched.push(u as u32);
                }
                shared[u] += w;
            }
        }
        let mut best: Option<(usize, i64)> = None;
        for &u in &touched {
            let u = u as usize;
            let s = shared[u];
            let better = match best {
                None => true,
                Some((bu, bs)) => s > bs || (s == bs && hg.vwgt[u] < hg.vwgt[bu]),
            };
            if better {
                best = Some((u, s));
            }
            shared[u] = 0;
        }
        if let Some((u, _)) = best {
            matched[v] = true;
            matched[u] = true;
            match_of[v] = u as u32;
            match_of[u] = v as u32;
        }
    }
    match_of
}

/// Contract the hypergraph along a matching. Pins are deduplicated per
/// net; nets reduced to a single pin are dropped.
fn contract_hg(hg: &WorkHg, match_of: &[u32]) -> HgLevel {
    let n = hg.num_vertices();
    let mut coarse_of = vec![u32::MAX; n];
    let mut nc = 0u32;
    for v in 0..n {
        if coarse_of[v] != u32::MAX {
            continue;
        }
        coarse_of[v] = nc;
        coarse_of[match_of[v] as usize] = nc;
        nc += 1;
    }
    let ncv = nc as usize;
    let mut vwgt = vec![0i64; ncv];
    for v in 0..n {
        vwgt[coarse_of[v] as usize] += hg.vwgt[v];
    }
    let mut xpins = vec![0usize];
    let mut pins: Vec<u32> = Vec::with_capacity(hg.pins.len());
    let mut nwgt: Vec<i64> = Vec::new();
    let mut mark = vec![u64::MAX; ncv];
    let mut stamp = 0u64;
    for j in 0..hg.num_nets() {
        stamp += 1;
        let start = pins.len();
        for &p in hg.net_pins(j) {
            let c = coarse_of[p as usize];
            if mark[c as usize] != stamp {
                mark[c as usize] = stamp;
                pins.push(c);
            }
        }
        if pins.len() - start <= 1 {
            pins.truncate(start); // single-pin net: drop
        } else {
            xpins.push(pins.len());
            nwgt.push(hg.nwgt[j]);
        }
    }
    let mut coarse = WorkHg {
        xpins,
        pins,
        xnets: Vec::new(),
        nets: Vec::new(),
        vwgt,
        nwgt,
    };
    coarse.rebuild_vertex_nets();
    HgLevel {
        hg: coarse,
        coarse_of,
    }
}

/// Net side-counts for a bisection.
fn side_counts(hg: &WorkHg, part_of: &[u8]) -> Vec<[u32; 2]> {
    let mut counts = vec![[0u32; 2]; hg.num_nets()];
    for j in 0..hg.num_nets() {
        for &p in hg.net_pins(j) {
            counts[j][part_of[p as usize] as usize] += 1;
        }
    }
    counts
}

/// Objective value of a bisection from side counts.
fn objective_value(hg: &WorkHg, counts: &[[u32; 2]], obj: HyperObjective) -> i64 {
    let mut total = 0i64;
    for j in 0..hg.num_nets() {
        let [a, b] = counts[j];
        if a > 0 && b > 0 {
            total += hg.nwgt[j]; // cut-net and conn-1 agree for 2 parts
        }
    }
    let _ = obj; // identical for bisection; kept for API symmetry
    total
}

/// Gain of moving vertex `v` to the other side, from net side counts.
fn move_gain(hg: &WorkHg, counts: &[[u32; 2]], part_of: &[u8], v: usize) -> i64 {
    let from = part_of[v] as usize;
    let to = 1 - from;
    let mut gain = 0i64;
    for &j in hg.vertex_nets(v) {
        let j = j as usize;
        let cf = counts[j][from];
        let ct = counts[j][to];
        if cf == 1 && ct > 0 {
            gain += hg.nwgt[j]; // net becomes internal to `to`
        } else if ct == 0 && cf > 1 {
            gain -= hg.nwgt[j]; // net becomes newly cut
        }
    }
    gain
}

/// Greedy growing initial bisection on the coarsest hypergraph.
fn initial_bisection(
    hg: &WorkHg,
    target: [i64; 2],
    trials: usize,
    obj: HyperObjective,
    rng: &mut SplitMix,
) -> Vec<u8> {
    let n = hg.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut best: Option<(Vec<u8>, i64, f64)> = None;
    for _ in 0..trials.max(1) {
        let mut part_of = vec![1u8; n];
        let mut w0 = 0i64;
        let mut queue = std::collections::VecDeque::new();
        let mut seen = vec![false; n];
        let start = rng.next_below(n);
        queue.push_back(start as u32);
        seen[start] = true;
        let mut seed_next = start;
        while w0 < target[0] {
            let v = match queue.pop_front() {
                Some(v) => v as usize,
                None => {
                    // Disconnected: reseed from the next unseen vertex.
                    let mut found = None;
                    for off in 0..n {
                        let u = (seed_next + off) % n;
                        if !seen[u] {
                            found = Some(u);
                            break;
                        }
                    }
                    match found {
                        Some(u) => {
                            seen[u] = true;
                            seed_next = u + 1;
                            u
                        }
                        None => break,
                    }
                }
            };
            part_of[v] = 0;
            w0 += hg.vwgt[v];
            for &j in hg.vertex_nets(v) {
                let pins = hg.net_pins(j as usize);
                if pins.len() > BIG_NET {
                    continue;
                }
                for &u in pins {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        queue.push_back(u);
                    }
                }
            }
        }
        let counts = side_counts(hg, &part_of);
        let cut = objective_value(hg, &counts, obj);
        let w0f = part_of
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == 0)
            .map(|(v, _)| hg.vwgt[v])
            .sum::<i64>() as f64;
        let imb = (w0f / target[0].max(1) as f64)
            .max((hg.total_vertex_weight() as f64 - w0f) / target[1].max(1) as f64);
        let better = match &best {
            None => true,
            Some((_, bcut, bimb)) => match (imb <= 1.05, *bimb <= 1.05) {
                (true, false) => true,
                (false, true) => false,
                _ => cut < *bcut,
            },
        };
        if better {
            best = Some((part_of, cut, imb));
        }
    }
    best.expect("at least one trial").0
}

/// FM refinement for hypergraph bisections.
fn fm_refine_hg(
    hg: &WorkHg,
    part_of: &mut [u8],
    target: [i64; 2],
    ubfactor: f64,
    max_passes: usize,
    obj: HyperObjective,
) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = hg.num_vertices();
    if n == 0 {
        return;
    }
    let max_allowed = [
        ((target[0] as f64) * ubfactor).ceil() as i64,
        ((target[1] as f64) * ubfactor).ceil() as i64,
    ];
    for _ in 0..max_passes {
        let mut counts = side_counts(hg, part_of);
        let start_cut = objective_value(hg, &counts, obj);
        let mut gain: Vec<i64> = (0..n).map(|v| move_gain(hg, &counts, part_of, v)).collect();
        let mut part_w = [0i64; 2];
        for v in 0..n {
            part_w[part_of[v] as usize] += hg.vwgt[v];
        }
        let mut locked = vec![false; n];
        let mut heap: BinaryHeap<(i64, Reverse<u32>)> = BinaryHeap::new();
        for v in 0..n {
            heap.push((gain[v], Reverse(v as u32)));
        }
        let mut moves: Vec<u32> = Vec::new();
        let mut cur_cut = start_cut;
        let mut best_cut = start_cut;
        let mut best_len = 0usize;
        let mut best_feasible = part_w[0] <= max_allowed[0] && part_w[1] <= max_allowed[1];
        let mut bad_streak = 0usize;
        let mut old_contrib: Vec<i64> = Vec::new();

        while let Some((gtop, Reverse(v))) = heap.pop() {
            let v = v as usize;
            if locked[v] || gtop != gain[v] {
                continue;
            }
            let from = part_of[v] as usize;
            let to = 1 - from;
            let wv = hg.vwgt[v];
            let feasible_after = part_w[to] + wv <= max_allowed[to];
            let overflow_now = (part_w[0] - max_allowed[0]).max(part_w[1] - max_allowed[1]);
            let overflow_after =
                ((part_w[from] - wv) - max_allowed[from]).max((part_w[to] + wv) - max_allowed[to]);
            if !feasible_after && overflow_after >= overflow_now {
                continue;
            }
            locked[v] = true;
            part_of[v] = to as u8;
            part_w[from] -= wv;
            part_w[to] += wv;
            cur_cut -= gain[v];
            moves.push(v as u32);
            // Update counts and neighbour gains per net, with O(1)
            // delta updates per pin: only net j's contribution to each
            // pin's gain changes, so we subtract the old contribution
            // and add the new one.
            for &j in hg.vertex_nets(v) {
                let j = j as usize;
                let pins = hg.net_pins(j);
                if pins.len() > BIG_NET {
                    counts[j][from] -= 1;
                    counts[j][to] += 1;
                    continue;
                }
                // Old contributions (before the count change).
                old_contrib.clear();
                for &u in pins {
                    let u = u as usize;
                    old_contrib.push(if locked[u] || u == v {
                        0
                    } else {
                        move_gain_single_net(hg, &counts, part_of, u, j)
                    });
                }
                counts[j][from] -= 1;
                counts[j][to] += 1;
                for (pi, &u) in pins.iter().enumerate() {
                    let u = u as usize;
                    if locked[u] || u == v {
                        continue;
                    }
                    let new_contrib = move_gain_single_net(hg, &counts, part_of, u, j);
                    let delta = new_contrib - old_contrib[pi];
                    if delta != 0 {
                        gain[u] += delta;
                        heap.push((gain[u], Reverse(u as u32)));
                    }
                }
            }
            let now_feasible = part_w[0] <= max_allowed[0] && part_w[1] <= max_allowed[1];
            let improves = match (now_feasible, best_feasible) {
                (true, false) => true,
                (false, true) => false,
                _ => cur_cut < best_cut,
            };
            if improves {
                best_cut = cur_cut;
                best_len = moves.len();
                best_feasible = now_feasible;
                bad_streak = 0;
            } else {
                bad_streak += 1;
                if bad_streak > 100 {
                    break;
                }
            }
        }
        for &v in &moves[best_len..] {
            let v = v as usize;
            part_of[v] = 1 - part_of[v];
        }
        if best_len == 0 || best_cut >= start_cut {
            break;
        }
    }
}

/// Gain contribution of a single net (used by incremental updates).
#[inline]
fn move_gain_single_net(
    hg: &WorkHg,
    counts: &[[u32; 2]],
    part_of: &[u8],
    v: usize,
    j: usize,
) -> i64 {
    let from = part_of[v] as usize;
    let to = 1 - from;
    let cf = counts[j][from];
    let ct = counts[j][to];
    if cf == 1 && ct > 0 {
        hg.nwgt[j]
    } else if ct == 0 && cf > 1 {
        -hg.nwgt[j]
    } else {
        0
    }
}

/// Multilevel bisection of a working hypergraph.
fn multilevel_bisect_hg(
    hg: &WorkHg,
    target: [i64; 2],
    cfg: &HypergraphPartitionConfig,
    seed: u64,
) -> Vec<u8> {
    let mut rng = SplitMix::new(seed);
    // Coarsen.
    let mut levels: Vec<HgLevel> = Vec::new();
    let mut current = hg.clone();
    while current.num_vertices() > cfg.coarsen_to {
        let m = match_vertices(&current, &mut rng);
        let level = contract_hg(&current, &m);
        if level.hg.num_vertices() as f64 / current.num_vertices() as f64 > 0.95 {
            break;
        }
        current = level.hg.clone();
        levels.push(level);
    }
    let coarsest: &WorkHg = levels.last().map(|l| &l.hg).unwrap_or(hg);
    let mut part = initial_bisection(
        coarsest,
        target,
        cfg.initial_trials,
        cfg.objective,
        &mut rng,
    );
    fm_refine_hg(
        coarsest,
        &mut part,
        target,
        cfg.ubfactor,
        cfg.fm_passes,
        cfg.objective,
    );
    for li in (0..levels.len()).rev() {
        let fine: &WorkHg = if li == 0 { hg } else { &levels[li - 1].hg };
        let coarse_of = &levels[li].coarse_of;
        let mut fine_part = vec![0u8; fine.num_vertices()];
        for v in 0..fine.num_vertices() {
            fine_part[v] = part[coarse_of[v] as usize];
        }
        part = fine_part;
        fm_refine_hg(
            fine,
            &mut part,
            target,
            cfg.ubfactor,
            cfg.fm_passes,
            cfg.objective,
        );
    }
    part
}

/// Sub-hypergraph induced on a vertex subset: nets are restricted to
/// surviving pins and dropped if ≤1 pin remains.
fn sub_hypergraph(hg: &WorkHg, vertices: &[u32]) -> WorkHg {
    let mut local_of = std::collections::HashMap::with_capacity(vertices.len());
    for (l, &v) in vertices.iter().enumerate() {
        local_of.insert(v, l as u32);
    }
    let mut xpins = vec![0usize];
    let mut pins: Vec<u32> = Vec::new();
    let mut nwgt: Vec<i64> = Vec::new();
    for j in 0..hg.num_nets() {
        let start = pins.len();
        for &p in hg.net_pins(j) {
            if let Some(&l) = local_of.get(&p) {
                pins.push(l);
            }
        }
        if pins.len() - start <= 1 {
            pins.truncate(start);
        } else {
            xpins.push(pins.len());
            nwgt.push(hg.nwgt[j]);
        }
    }
    let vwgt: Vec<i64> = vertices.iter().map(|&v| hg.vwgt[v as usize]).collect();
    let mut sub = WorkHg {
        xpins,
        pins,
        xnets: Vec::new(),
        nets: Vec::new(),
        vwgt,
        nwgt,
    };
    sub.rebuild_vertex_nets();
    sub
}

/// Recursive-bisection k-way hypergraph partitioning.
///
/// Returns the part id of every vertex. With the column-net model and
/// cut-net objective this reproduces the PaToH configuration of the
/// paper's HP reordering (§3.3).
pub fn partition_hypergraph(h: &Hypergraph, cfg: &HypergraphPartitionConfig) -> Vec<u32> {
    let hg = WorkHg::from_hypergraph(h);
    let n = hg.num_vertices();
    let k = cfg.num_parts.max(1);
    let mut part_of = vec![0u32; n];
    if k == 1 || n == 0 {
        return part_of;
    }
    let vertices: Vec<u32> = (0..n as u32).collect();
    recurse_hg(&hg, &vertices, 0, k, cfg, cfg.seed, &mut part_of);
    part_of
}

fn recurse_hg(
    hg_full: &WorkHg,
    vertices: &[u32],
    base: u32,
    k: usize,
    cfg: &HypergraphPartitionConfig,
    seed: u64,
    part_of: &mut [u32],
) {
    if k == 1 || vertices.len() <= 1 {
        for &v in vertices {
            part_of[v as usize] = base;
        }
        return;
    }
    let sub = if vertices.len() == hg_full.num_vertices() {
        hg_full.clone()
    } else {
        sub_hypergraph(hg_full, vertices)
    };
    let k0 = k / 2;
    let k1 = k - k0;
    let total = sub.total_vertex_weight();
    let t0 = (total as f64 * k0 as f64 / k as f64).round() as i64;
    let target = [t0, total - t0];
    let bis = multilevel_bisect_hg(&sub, target, cfg, seed);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (local, &global) in vertices.iter().enumerate() {
        if bis[local] == 0 {
            left.push(global);
        } else {
            right.push(global);
        }
    }
    recurse_hg(
        hg_full,
        &left,
        base,
        k0,
        cfg,
        seed.wrapping_mul(0x9E37).wrapping_add(3),
        part_of,
    );
    recurse_hg(
        hg_full,
        &right,
        base + k0 as u32,
        k1,
        cfg,
        seed.wrapping_mul(0x9E37).wrapping_add(4),
        part_of,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{CooMatrix, CsrMatrix};

    /// A banded matrix whose column-net hypergraph has an obvious
    /// low-cut split (contiguous blocks).
    fn banded(n: usize, half_bw: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let lo = i.saturating_sub(half_bw);
            let hi = (i + half_bw + 1).min(n);
            for j in lo..hi {
                coo.push(i, j, 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn bisection_of_banded_matrix_has_low_cut() {
        let a = banded(200, 2);
        let h = Hypergraph::column_net(&a);
        let cfg = HypergraphPartitionConfig::k(2);
        let parts = partition_hypergraph(&h, &cfg);
        let parts_u32: Vec<u32> = parts.clone();
        let cut = h.cut_net(&parts_u32);
        // A contiguous split cuts about 2*half_bw = 4 nets (plus slack).
        assert!(cut <= 20, "cut-net {cut} too high for a banded matrix");
        // Balance.
        let w0 = parts.iter().filter(|&&p| p == 0).count();
        assert!((80..=120).contains(&w0), "part 0 size {w0}");
    }

    #[test]
    fn four_way_partition_covers_all_parts() {
        let a = banded(400, 3);
        let h = Hypergraph::column_net(&a);
        let cfg = HypergraphPartitionConfig::k(4);
        let parts = partition_hypergraph(&h, &cfg);
        let mut sizes = [0usize; 4];
        for &p in &parts {
            assert!(p < 4);
            sizes[p as usize] += 1;
        }
        for &s in &sizes {
            assert!(s >= 60, "part size {s} too small for 400/4");
        }
    }

    #[test]
    fn single_part_is_trivial() {
        let a = banded(50, 1);
        let h = Hypergraph::column_net(&a);
        let cfg = HypergraphPartitionConfig::k(1);
        let parts = partition_hypergraph(&h, &cfg);
        assert!(parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = banded(150, 2);
        let h = Hypergraph::column_net(&a);
        let cfg = HypergraphPartitionConfig::k(4);
        assert_eq!(
            partition_hypergraph(&h, &cfg),
            partition_hypergraph(&h, &cfg)
        );
    }

    #[test]
    fn fm_never_worsens_cut() {
        let a = banded(120, 2);
        let h = Hypergraph::column_net(&a);
        let hg = WorkHg::from_hypergraph(&h);
        // Start from a deliberately bad interleaved split.
        let mut part: Vec<u8> = (0..hg.num_vertices()).map(|v| (v % 2) as u8).collect();
        let counts = side_counts(&hg, &part);
        let before = objective_value(&hg, &counts, HyperObjective::CutNet);
        let total = hg.total_vertex_weight();
        fm_refine_hg(
            &hg,
            &mut part,
            [total / 2, total - total / 2],
            1.05,
            8,
            HyperObjective::CutNet,
        );
        let counts = side_counts(&hg, &part);
        let after = objective_value(&hg, &counts, HyperObjective::CutNet);
        assert!(after <= before, "FM worsened cut: {before} -> {after}");
        assert!(
            after < before / 2,
            "FM should fix interleaving: {before} -> {after}"
        );
    }

    #[test]
    fn contraction_preserves_weight_and_reduces_size() {
        let a = banded(300, 2);
        let h = Hypergraph::column_net(&a);
        let hg = WorkHg::from_hypergraph(&h);
        let mut rng = SplitMix::new(5);
        let m = match_vertices(&hg, &mut rng);
        let level = contract_hg(&hg, &m);
        assert_eq!(level.hg.total_vertex_weight(), hg.total_vertex_weight());
        assert!(level.hg.num_vertices() < hg.num_vertices());
        // Dual incidence is consistent.
        for v in 0..level.hg.num_vertices() {
            for &j in level.hg.vertex_nets(v) {
                assert!(level.hg.net_pins(j as usize).contains(&(v as u32)));
            }
        }
    }
}
