//! A tiny deterministic PRNG (xorshift64*) used for tie-breaking and
//! vertex-visit shuffling inside the partitioner.
//!
//! Partitioning must be reproducible across runs for the experiment
//! harness to be auditable, so we avoid global RNG state and thread a
//! seed through every entry point.

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Create from a seed; a zero seed is remapped to a fixed non-zero
    /// constant (xorshift has a fixed point at zero).
    pub fn new(seed: u64) -> Self {
        SplitMix {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 step: robust even for sequential seeds.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.next_below(i + 1);
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix::new(1);
        let mut b = SplitMix::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix::new(7);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SplitMix::new(0);
        let x = rng.next_u64();
        let y = rng.next_u64();
        assert_ne!(x, y);
    }
}
