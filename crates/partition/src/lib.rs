#![allow(clippy::needless_range_loop)]

//! Multilevel graph and hypergraph partitioning.
//!
//! This crate is the from-scratch stand-in for METIS \[18\] and PaToH \[3\]
//! used by the GP, HP and ND reorderings of the paper. It implements the
//! classic multilevel paradigm:
//!
//! 1. **Coarsening** — heavy-edge matching contracts the graph until it
//!    is small;
//! 2. **Initial partitioning** — greedy graph growing from several
//!    starting vertices on the coarsest graph;
//! 3. **Uncoarsening** — the partition is projected back level by level
//!    and improved with boundary Fiduccia–Mattheyses refinement.
//!
//! Recursive bisection extends the 2-way kernel to arbitrary `k`, and a
//! greedy vertex-cover pass converts an edge-cut bisection into the
//! vertex separator needed by nested dissection.
//!
//! The hypergraph partitioner mirrors the same structure on the
//! column-net model with the cut-net objective (the PaToH configuration
//! chosen in §3.3 of the paper).

mod coarsen;
mod fm;
mod hgraph;
mod initial;
mod recursive;
mod rng;
mod separator;

pub use hgraph::{partition_hypergraph, HypergraphPartitionConfig};
pub use recursive::{partition_graph, PartitionConfig};
pub use separator::{vertex_separator, Separator};

use sparsegraph::Graph;

/// A 2-way partition of a graph: part id (0 or 1) per vertex plus the
/// achieved edge cut and part weights.
#[derive(Debug, Clone)]
pub struct Bisection {
    /// Part assignment per vertex (0 or 1).
    pub part_of: Vec<u8>,
    /// Total weight of cut edges.
    pub cut: i64,
    /// Vertex weight of part 0 and part 1.
    pub part_weights: [i64; 2],
}

impl Bisection {
    /// Recompute cut and part weights from scratch (O(E)); used for
    /// validation and after projection between levels.
    pub fn recompute(g: &Graph, part_of: Vec<u8>) -> Bisection {
        let mut cut = 0i64;
        let mut part_weights = [0i64; 2];
        for v in 0..g.num_vertices() {
            part_weights[part_of[v] as usize] += g.vertex_weight(v);
            for (u, w) in g.neighbors_weighted(v) {
                if part_of[u as usize] != part_of[v] {
                    cut += w;
                }
            }
        }
        Bisection {
            part_of,
            cut: cut / 2,
            part_weights,
        }
    }

    /// The load imbalance of the heavier part relative to its target
    /// weight share.
    pub fn imbalance(&self, target: [i64; 2]) -> f64 {
        let i0 = self.part_weights[0] as f64 / target[0].max(1) as f64;
        let i1 = self.part_weights[1] as f64 / target[1].max(1) as f64;
        i0.max(i1)
    }
}

/// Multilevel 2-way partitioning with the given target weights.
///
/// `target` gives the desired vertex weight of each side (they need not
/// be equal — recursive bisection to non-power-of-two `k` needs uneven
/// splits). `ubfactor` is the allowed imbalance, e.g. `1.05`.
pub fn bisect_graph(g: &Graph, target: [i64; 2], ubfactor: f64, seed: u64) -> Bisection {
    recursive::multilevel_bisect(g, target, ubfactor, seed)
}

/// Edge cut of a k-way partition (each cut edge counted once).
pub fn edge_cut(g: &Graph, part_of: &[u32]) -> i64 {
    let mut cut = 0i64;
    for v in 0..g.num_vertices() {
        for (u, w) in g.neighbors_weighted(v) {
            if part_of[u as usize] != part_of[v] {
                cut += w;
            }
        }
    }
    cut / 2
}

/// Weight of each part in a k-way partition.
pub fn part_weights(g: &Graph, part_of: &[u32], k: usize) -> Vec<i64> {
    let mut w = vec![0i64; k];
    for v in 0..g.num_vertices() {
        w[part_of[v] as usize] += g.vertex_weight(v);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for v in 0..n {
            if v > 0 {
                adjncy.push((v - 1) as u32);
            }
            if v + 1 < n {
                adjncy.push((v + 1) as u32);
            }
            xadj.push(adjncy.len());
        }
        Graph::from_adjacency(xadj, adjncy).unwrap()
    }

    #[test]
    fn edge_cut_counts_once() {
        let g = path_graph(4);
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 1);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 3);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn part_weights_sum_to_total() {
        let g = path_graph(5);
        let w = part_weights(&g, &[0, 1, 1, 2, 0], 3);
        assert_eq!(w, vec![2, 2, 1]);
        assert_eq!(w.iter().sum::<i64>(), g.total_vertex_weight());
    }

    #[test]
    fn bisection_recompute() {
        let g = path_graph(6);
        let b = Bisection::recompute(&g, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(b.cut, 1);
        assert_eq!(b.part_weights, [3, 3]);
        assert!((b.imbalance([3, 3]) - 1.0).abs() < 1e-12);
    }
}
