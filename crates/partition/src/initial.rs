//! Initial bisection of the coarsest graph by greedy graph growing.
//!
//! A region is grown breadth-first from a random start vertex, always
//! absorbing the frontier vertex with the highest gain (fewest new cut
//! edges), until the region reaches its target weight. Several trials
//! with different starts are run and the best cut kept — the same
//! strategy METIS uses (GGGP).

use crate::rng::SplitMix;
use crate::Bisection;
use sparsegraph::Graph;

/// Grow part 0 from `start` until its weight reaches `target0`.
fn grow_from(g: &Graph, start: usize, target0: i64) -> Vec<u8> {
    let n = g.num_vertices();
    let mut part_of = vec![1u8; n];
    let mut in_region = vec![false; n];
    let mut weight0 = 0i64;

    // Gain of moving a frontier vertex into the region: (edges into
    // region) - (edges out of region). Larger is better.
    let mut gain = vec![0i64; n];
    let mut in_frontier = vec![false; n];
    let mut frontier: Vec<u32> = Vec::new();

    let mut seed_next = start;
    loop {
        // (Re)seed with an untouched vertex if the frontier is empty
        // (disconnected coarse graphs happen).
        if frontier.is_empty() {
            if weight0 >= target0 {
                break;
            }
            let mut found = None;
            for off in 0..n {
                let v = (seed_next + off) % n;
                if !in_region[v] {
                    found = Some(v);
                    break;
                }
            }
            match found {
                Some(v) => {
                    frontier.push(v as u32);
                    in_frontier[v] = true;
                    gain[v] = 0;
                    seed_next = v + 1;
                }
                None => break,
            }
        }
        // Absorb the best-gain frontier vertex.
        let (fi, _) = frontier
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| gain[v as usize])
            .expect("frontier non-empty");
        let v = frontier.swap_remove(fi) as usize;
        in_frontier[v] = false;
        in_region[v] = true;
        part_of[v] = 0;
        weight0 += g.vertex_weight(v);
        if weight0 >= target0 {
            break;
        }
        for (u, w) in g.neighbors_weighted(v) {
            let u = u as usize;
            if in_region[u] {
                continue;
            }
            if !in_frontier[u] {
                in_frontier[u] = true;
                frontier.push(u as u32);
                // Initial gain: edges into region minus edges outside.
                let mut gi = 0i64;
                for (t, tw) in g.neighbors_weighted(u) {
                    if in_region[t as usize] {
                        gi += tw;
                    } else {
                        gi -= tw;
                    }
                }
                gain[u] = gi;
            } else {
                // v moved inside: one edge flipped from out to in.
                gain[u] += 2 * w;
            }
        }
    }
    part_of
}

/// Greedy graph-growing bisection with multiple trials.
pub fn greedy_growing_bisection(
    g: &Graph,
    target: [i64; 2],
    trials: usize,
    rng: &mut SplitMix,
) -> Bisection {
    let n = g.num_vertices();
    if n == 0 {
        return Bisection {
            part_of: Vec::new(),
            cut: 0,
            part_weights: [0, 0],
        };
    }
    let mut best: Option<Bisection> = None;
    for _ in 0..trials.max(1) {
        let start = rng.next_below(n);
        let part_of = grow_from(g, start, target[0]);
        let cand = Bisection::recompute(g, part_of);
        let better = match &best {
            None => true,
            Some(b) => {
                let (ci, bi) = (cand.imbalance(target), b.imbalance(target));
                // Prefer feasible (≤5% imbalance) solutions, then lower cut.
                match (ci <= 1.05, bi <= 1.05) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => cand.cut < b.cut,
                }
            }
        };
        if better {
            best = Some(cand);
        }
    }
    best.expect("at least one trial runs")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Graph {
        let idx = |r: usize, c: usize| (r * n + c) as u32;
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r > 0 {
                    adjncy.push(idx(r - 1, c));
                }
                if r + 1 < n {
                    adjncy.push(idx(r + 1, c));
                }
                if c > 0 {
                    adjncy.push(idx(r, c - 1));
                }
                if c + 1 < n {
                    adjncy.push(idx(r, c + 1));
                }
                xadj.push(adjncy.len());
            }
        }
        Graph::from_adjacency(xadj, adjncy).unwrap()
    }

    #[test]
    fn grid_bisection_is_balanced_and_reasonable() {
        let g = grid(8); // 64 vertices, optimal cut 8
        let total = g.total_vertex_weight();
        let mut rng = SplitMix::new(11);
        let b = greedy_growing_bisection(&g, [total / 2, total - total / 2], 8, &mut rng);
        assert_eq!(b.part_weights[0] + b.part_weights[1], total);
        assert!(
            b.imbalance([total / 2, total - total / 2]) <= 1.10,
            "imbalance {}",
            b.imbalance([total / 2, total - total / 2])
        );
        assert!(b.cut <= 24, "greedy cut {} far from optimal 8", b.cut);
        assert!(b.cut >= 8, "cut below optimum is impossible");
    }

    #[test]
    fn uneven_targets_respected() {
        let g = grid(6); // 36 vertices
        let mut rng = SplitMix::new(3);
        let b = greedy_growing_bisection(&g, [12, 24], 8, &mut rng);
        // Part 0 should be close to 12, not 18.
        assert!(
            (b.part_weights[0] - 12).abs() <= 3,
            "part 0 weight {} target 12",
            b.part_weights[0]
        );
    }

    #[test]
    fn disconnected_graph_is_fully_assigned() {
        // Two disjoint edges + isolated vertex.
        let g = Graph::from_adjacency(vec![0, 1, 2, 3, 4, 4], vec![1, 0, 3, 2]).unwrap();
        let mut rng = SplitMix::new(9);
        let b = greedy_growing_bisection(&g, [2, 3], 4, &mut rng);
        assert_eq!(b.part_weights[0] + b.part_weights[1], 5);
        assert!(b.part_weights[0] >= 2, "part 0 reached its target");
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::from_adjacency(vec![0, 0], vec![]).unwrap();
        let mut rng = SplitMix::new(1);
        let b = greedy_growing_bisection(&g, [1, 0], 2, &mut rng);
        assert_eq!(b.part_of.len(), 1);
        assert_eq!(b.cut, 0);
    }
}
