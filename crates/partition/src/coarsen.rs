//! Graph coarsening via heavy-edge matching (HEM).
//!
//! Vertices are visited in a shuffled order; each unmatched vertex is
//! matched with the unmatched neighbour connected by the heaviest edge
//! (ties broken by lower vertex weight, favouring balanced coarse
//! vertices). Matched pairs are contracted into coarse vertices whose
//! weights are summed and whose parallel edges are merged with summed
//! weights — exactly the coarsening step of METIS's multilevel scheme.

use crate::rng::SplitMix;
use sparsegraph::Graph;

/// One coarsening level: the coarse graph and the fine→coarse vertex map.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The contracted graph.
    pub graph: Graph,
    /// `coarse_of[v]` is the coarse vertex containing fine vertex `v`.
    pub coarse_of: Vec<u32>,
}

/// Compute a heavy-edge matching. Returns `match_of` where
/// `match_of[v] == v` for unmatched vertices.
pub fn heavy_edge_matching(g: &Graph, rng: &mut SplitMix) -> Vec<u32> {
    let n = g.num_vertices();
    let mut match_of: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    let mut visit: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut visit);
    for &v in &visit {
        let v = v as usize;
        if matched[v] {
            continue;
        }
        let mut best: Option<(u32, i64)> = None;
        for (u, w) in g.neighbors_weighted(v) {
            if matched[u as usize] {
                continue;
            }
            let better = match best {
                None => true,
                Some((bu, bw)) => {
                    w > bw
                        || (w == bw && g.vertex_weight(u as usize) < g.vertex_weight(bu as usize))
                }
            };
            if better {
                best = Some((u, w));
            }
        }
        if let Some((u, _)) = best {
            matched[v] = true;
            matched[u as usize] = true;
            match_of[v] = u;
            match_of[u as usize] = v as u32;
        }
    }
    match_of
}

/// Contract a graph along a matching, producing the next coarser level.
pub fn contract(g: &Graph, match_of: &[u32]) -> CoarseLevel {
    let n = g.num_vertices();
    // Assign coarse ids: each matched pair (v, u) with v < u gets one id.
    let mut coarse_of = vec![u32::MAX; n];
    let mut ncoarse = 0u32;
    for v in 0..n {
        if coarse_of[v] != u32::MAX {
            continue;
        }
        let u = match_of[v] as usize;
        coarse_of[v] = ncoarse;
        coarse_of[u] = ncoarse; // u == v for unmatched vertices
        ncoarse += 1;
    }
    let nc = ncoarse as usize;

    // Accumulate coarse vertex weights.
    let mut vwgt = vec![0i64; nc];
    for v in 0..n {
        vwgt[coarse_of[v] as usize] += g.vertex_weight(v);
    }

    // Build coarse adjacency by merging the two fine adjacency lists of
    // each coarse vertex with a dense scatter buffer.
    let mut xadj = Vec::with_capacity(nc + 1);
    xadj.push(0usize);
    let mut adjncy: Vec<u32> = Vec::with_capacity(g.adjncy().len() / 2);
    let mut ewgt: Vec<i64> = Vec::with_capacity(g.adjncy().len() / 2);
    let mut slot_of = vec![u32::MAX; nc]; // coarse neighbour -> slot in current row
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); nc];
    for v in 0..n {
        members[coarse_of[v] as usize].push(v as u32);
    }
    for (c, mem) in members.iter().enumerate() {
        let row_start = adjncy.len();
        for &v in mem {
            for (u, w) in g.neighbors_weighted(v as usize) {
                let cu = coarse_of[u as usize];
                if cu as usize == c {
                    continue; // internal edge disappears
                }
                let slot = slot_of[cu as usize];
                if slot != u32::MAX && (slot as usize) >= row_start {
                    ewgt[slot as usize] += w;
                } else {
                    slot_of[cu as usize] = adjncy.len() as u32;
                    adjncy.push(cu);
                    ewgt.push(w);
                }
            }
        }
        xadj.push(adjncy.len());
        // Reset scatter buffer for the next row.
        for &a in &adjncy[row_start..] {
            slot_of[a as usize] = u32::MAX;
        }
    }

    CoarseLevel {
        graph: Graph::from_parts_unchecked(xadj, adjncy, vwgt, ewgt),
        coarse_of,
    }
}

/// Coarsen until the graph has at most `target_size` vertices or
/// progress stalls. Returns the sequence of levels, finest first.
pub fn coarsen_to(g: &Graph, target_size: usize, rng: &mut SplitMix) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = g.clone();
    while current.num_vertices() > target_size {
        let matching = heavy_edge_matching(&current, rng);
        let level = contract(&current, &matching);
        let shrink = level.graph.num_vertices() as f64 / current.num_vertices() as f64;
        if shrink > 0.95 {
            break; // nearly no matching possible; stop
        }
        current = level.graph.clone();
        levels.push(level);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Graph {
        let idx = |r: usize, c: usize| (r * n + c) as u32;
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r > 0 {
                    adjncy.push(idx(r - 1, c));
                }
                if r + 1 < n {
                    adjncy.push(idx(r + 1, c));
                }
                if c > 0 {
                    adjncy.push(idx(r, c - 1));
                }
                if c + 1 < n {
                    adjncy.push(idx(r, c + 1));
                }
                xadj.push(adjncy.len());
            }
        }
        Graph::from_adjacency(xadj, adjncy).unwrap()
    }

    #[test]
    fn matching_is_symmetric_and_adjacent() {
        let g = grid(6);
        let mut rng = SplitMix::new(1);
        let m = heavy_edge_matching(&g, &mut rng);
        for v in 0..g.num_vertices() {
            let u = m[v] as usize;
            assert_eq!(m[u] as usize, v, "matching must be symmetric");
            if u != v {
                assert!(
                    g.neighbors(v).contains(&(u as u32)),
                    "matched vertices must be adjacent"
                );
            }
        }
    }

    #[test]
    fn contraction_preserves_total_vertex_weight() {
        let g = grid(8);
        let mut rng = SplitMix::new(2);
        let m = heavy_edge_matching(&g, &mut rng);
        let level = contract(&g, &m);
        assert_eq!(level.graph.total_vertex_weight(), g.total_vertex_weight());
        assert!(level.graph.num_vertices() < g.num_vertices());
        // Every fine vertex maps to a valid coarse vertex.
        for v in 0..g.num_vertices() {
            assert!((level.coarse_of[v] as usize) < level.graph.num_vertices());
        }
    }

    #[test]
    fn contraction_preserves_cut_weight_across_fixed_split() {
        // Contract a graph and verify: edge weight between coarse
        // vertices equals the number of fine edges between their
        // members.
        let g = grid(4);
        let mut rng = SplitMix::new(3);
        let m = heavy_edge_matching(&g, &mut rng);
        let level = contract(&g, &m);
        let cg = &level.graph;
        // Total edge weight is conserved minus internal (contracted) edges.
        let internal: i64 = (0..g.num_vertices())
            .map(|v| {
                g.neighbors_weighted(v)
                    .filter(|&(u, _)| level.coarse_of[u as usize] == level.coarse_of[v])
                    .map(|(_, w)| w)
                    .sum::<i64>()
            })
            .sum::<i64>()
            / 2;
        assert_eq!(cg.total_edge_weight(), g.total_edge_weight() - internal);
    }

    #[test]
    fn coarsen_to_reaches_target() {
        let g = grid(12); // 144 vertices
        let mut rng = SplitMix::new(4);
        let levels = coarsen_to(&g, 20, &mut rng);
        assert!(!levels.is_empty());
        let last = &levels.last().unwrap().graph;
        assert!(
            last.num_vertices() <= 40,
            "coarsest graph still has {} vertices",
            last.num_vertices()
        );
        // Monotone shrinkage.
        let mut prev = g.num_vertices();
        for l in &levels {
            assert!(l.graph.num_vertices() < prev);
            prev = l.graph.num_vertices();
        }
    }

    #[test]
    fn coarsen_stalls_gracefully_on_edgeless_graph() {
        let g = Graph::from_adjacency(vec![0, 0, 0, 0, 0], vec![]).unwrap();
        let mut rng = SplitMix::new(5);
        let levels = coarsen_to(&g, 2, &mut rng);
        assert!(levels.is_empty(), "no matching possible on edgeless graph");
    }
}
