//! Property-based tests for the partitioning substrate.

use partition::{
    edge_cut, part_weights, partition_graph, partition_hypergraph, vertex_separator,
    HypergraphPartitionConfig, PartitionConfig,
};
use proptest::prelude::*;
use sparsegraph::{Graph, Hypergraph};
use sparsemat::{CooMatrix, CsrMatrix};

/// Strategy: a random connected-ish symmetric matrix (ring + chords) so
/// partitioners always have work to do.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (
        8usize..80,
        proptest::collection::vec((0usize..1000, 0usize..1000), 0..120),
    )
        .prop_map(|(n, chords)| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 1.0);
                coo.push_symmetric(i, (i + 1) % n, 1.0); // ring keeps it connected
            }
            for (a, b) in chords {
                let (i, j) = (a % n, b % n);
                if i != j {
                    coo.push_symmetric(i.max(j), i.min(j), 1.0);
                }
            }
            Graph::from_matrix(&CsrMatrix::from_coo(&coo)).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition_covers_all_parts_within_balance(g in graph_strategy(), k in 2usize..9) {
        let cfg = PartitionConfig::k(k);
        let parts = partition_graph(&g, &cfg);
        prop_assert_eq!(parts.len(), g.num_vertices());
        prop_assert!(parts.iter().all(|&p| (p as usize) < k));
        let w = part_weights(&g, &parts, k);
        prop_assert_eq!(w.iter().sum::<i64>(), g.total_vertex_weight());
        // Every part weight stays within a generous bound of its target
        // (recursive bisection compounds the per-level tolerance).
        let target = g.total_vertex_weight() as f64 / k as f64;
        for &pw in &w {
            prop_assert!(
                (pw as f64) <= target * 1.6 + 2.0,
                "part weight {pw} vs target {target}"
            );
        }
    }

    #[test]
    fn partition_is_deterministic(g in graph_strategy(), k in 2usize..6) {
        let cfg = PartitionConfig::k(k);
        prop_assert_eq!(partition_graph(&g, &cfg), partition_graph(&g, &cfg));
    }

    #[test]
    fn cut_is_at_most_total_edges(g in graph_strategy(), k in 2usize..6) {
        let parts = partition_graph(&g, &PartitionConfig::k(k));
        let cut = edge_cut(&g, &parts);
        prop_assert!(cut >= 0);
        prop_assert!(cut <= g.total_edge_weight());
    }

    #[test]
    fn separator_disconnects(g in graph_strategy()) {
        let s = vertex_separator(&g, 1.2, 99);
        let n = g.num_vertices();
        prop_assert_eq!(s.left.len() + s.right.len() + s.separator.len(), n);
        let mut side = vec![0u8; n];
        for &v in &s.right { side[v as usize] = 1; }
        for &v in &s.separator { side[v as usize] = 2; }
        for v in 0..n {
            if side[v] == 2 { continue; }
            for &u in g.neighbors(v) {
                if side[u as usize] != 2 {
                    prop_assert_eq!(side[v], side[u as usize],
                        "edge ({}, {}) crosses the separator", v, u);
                }
            }
        }
    }

    #[test]
    fn hypergraph_partition_valid(k in 2usize..6, n in 20usize..120) {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
            coo.push(i, (i * 7 + 1) % n, 1.0);
            coo.push(i, (i + 1) % n, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let h = Hypergraph::column_net(&a);
        let parts = partition_hypergraph(&h, &HypergraphPartitionConfig::k(k));
        prop_assert_eq!(parts.len(), n);
        prop_assert!(parts.iter().all(|&p| (p as usize) < k));
        // Cut never exceeds the number of nets.
        let cut = h.cut_net(&parts);
        prop_assert!(cut >= 0 && cut <= h.num_nets() as i64);
        // Determinism.
        prop_assert_eq!(parts, partition_hypergraph(&h, &HypergraphPartitionConfig::k(k)));
    }
}
