//! Property-based validation of the Cholesky analysis machinery.
//!
//! The Gilbert–Ng–Peyton counts are checked against a naive symbolic
//! factorisation oracle, and the numeric factor's structure must match
//! the predicted counts exactly.

use cholesky::{cholesky_factor, column_counts, elimination_tree, nnz_of_factor, postorder};
use proptest::prelude::*;
use sparsemat::{CooMatrix, CsrMatrix};

/// Random symmetric matrix with full diagonal.
fn sym_strategy() -> impl Strategy<Value = CsrMatrix> {
    (
        3usize..40,
        proptest::collection::vec((0usize..1600, 0usize..1600), 0..120),
    )
        .prop_map(|(n, pairs)| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 8.0);
            }
            for (a, b) in pairs {
                let (i, j) = (a % n, b % n);
                if i != j {
                    coo.push_symmetric(i.max(j), i.min(j), -1.0);
                }
            }
            CsrMatrix::from_coo(&coo)
        })
}

/// Naive symbolic factorisation: column counts of L incl. diagonal.
fn naive_counts(a: &CsrMatrix) -> Vec<usize> {
    let n = a.nrows();
    let mut cols: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    for (i, j, _) in a.iter() {
        if i > j {
            cols[j].insert(i);
        }
    }
    for k in 0..n {
        let below: Vec<usize> = cols[k].iter().copied().collect();
        if let Some(&pivot) = below.first() {
            for &i in &below[1..] {
                cols[pivot].insert(i);
            }
        }
    }
    (0..n).map(|k| cols[k].len() + 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gnp_counts_match_oracle(a in sym_strategy()) {
        prop_assert_eq!(column_counts(&a), naive_counts(&a));
    }

    #[test]
    fn etree_parents_are_larger(a in sym_strategy()) {
        let parent = elimination_tree(&a);
        for (j, &p) in parent.iter().enumerate() {
            if p != usize::MAX {
                prop_assert!(p > j, "etree parent {p} <= child {j}");
            }
        }
    }

    #[test]
    fn postorder_is_topological(a in sym_strategy()) {
        let parent = elimination_tree(&a);
        let post = postorder(&parent);
        prop_assert_eq!(post.len(), a.nrows());
        let mut pos = vec![0usize; post.len()];
        for (k, &v) in post.iter().enumerate() {
            pos[v] = k;
        }
        for (j, &p) in parent.iter().enumerate() {
            if p != usize::MAX {
                prop_assert!(pos[j] < pos[p], "child {j} after parent {p}");
            }
        }
    }

    #[test]
    fn numeric_factor_structure_matches_counts(a in sym_strategy()) {
        // The strategy's matrices are strictly diagonally dominant
        // only if degree < 8; enforce by boosting the diagonal.
        let mut spd = a.clone();
        let n = spd.nrows();
        let mut row_off = vec![0.0f64; n];
        for (i, j, v) in a.iter() {
            if i != j {
                row_off[i] += v.abs();
            }
        }
        // Rebuild with a dominant diagonal.
        let mut coo = CooMatrix::new(n, n);
        for (i, j, v) in a.iter() {
            if i != j {
                coo.push(i, j, v);
            }
        }
        for (i, off) in row_off.iter().enumerate() {
            coo.push(i, i, off + 1.0);
        }
        spd = CsrMatrix::from_coo(&coo);
        let l = cholesky_factor(&spd).expect("diagonally dominant is SPD");
        prop_assert_eq!(l.nnz(), nnz_of_factor(&spd));
        // Solve a random system and verify the residual.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = spd.spmv_dense(&x_true);
        let x = l.solve(&b);
        for i in 0..n {
            prop_assert!((x[i] - x_true[i]).abs() < 1e-7, "solve mismatch at {i}");
        }
    }
}
