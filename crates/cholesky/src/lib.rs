#![allow(clippy::needless_range_loop)]

//! Sparse Cholesky analysis: elimination trees, fill-in counting and a
//! reference numeric factorisation.
//!
//! Section 4.6 of the paper compares reorderings by the fill they incur
//! in the Cholesky factor `L` of `A = LLᵀ`, computed with the row/column
//! counting algorithm of Gilbert, Ng and Peyton \[13\]. This crate
//! implements:
//!
//! - the **elimination tree** of a symmetric matrix (Liu's algorithm
//!   with path compression);
//! - a **postorder** of that tree;
//! - **column counts** of `L` without forming it, via the
//!   Gilbert–Ng–Peyton skeleton/least-common-ancestor algorithm, giving
//!   `nnz(L)` in near-linear time;
//! - the **fill ratio** `nnz(L) / nnz(A)` reported in Fig. 6;
//! - a reference **up-looking numeric factorisation** used to
//!   cross-validate the counts and to support the solver example.

mod counts;
mod etree;
mod numeric;

pub use counts::{column_counts, fill_ratio, nnz_of_factor};
pub use etree::{elimination_tree, postorder};
pub use numeric::{cholesky_factor, CholeskyError, CholeskyFactor};
