//! Column counts of the Cholesky factor via the Gilbert–Ng–Peyton
//! algorithm \[13\], without forming the factor.
//!
//! For each column `j` of `L`, the count is derived from the *skeleton*
//! of the matrix: an entry `a_ij` (i > j) contributes to column `j`'s
//! count only if `j` is a leaf of the row subtree of `i`, detected in
//! near-constant time with `first`-descendant timestamps and a
//! path-compressed least-common-ancestor structure.

use crate::etree::{elimination_tree, postorder};
use sparsemat::CsrMatrix;

const NONE: usize = usize::MAX;

/// Leaf classification returned by `leaf_probe`.
enum LeafKind {
    /// Not a leaf: no contribution.
    NotLeaf,
    /// First leaf of row subtree `i`.
    First,
    /// Subsequent leaf; the LCA with the previous leaf absorbs a count.
    Subsequent(usize),
}

/// cs_leaf: determine whether `j` is a leaf of the row subtree of `i`,
/// maintaining the `maxfirst`, `prevleaf` and `ancestor` structures.
fn leaf_probe(
    i: usize,
    j: usize,
    first: &[usize],
    maxfirst: &mut [usize],
    prevleaf: &mut [usize],
    ancestor: &mut [usize],
) -> LeafKind {
    if i <= j || (maxfirst[i] != NONE && first[j] <= maxfirst[i]) {
        return LeafKind::NotLeaf;
    }
    maxfirst[i] = first[j];
    let jprev = prevleaf[i];
    prevleaf[i] = j;
    if jprev == NONE {
        return LeafKind::First;
    }
    // Find the LCA of jprev and j with path compression.
    let mut q = jprev;
    while q != ancestor[q] {
        q = ancestor[q];
    }
    let mut s = jprev;
    while s != q {
        let sp = ancestor[s];
        ancestor[s] = q;
        s = sp;
    }
    LeafKind::Subsequent(q)
}

/// Column counts of the Cholesky factor `L` of a structurally symmetric
/// matrix (diagonal included), by Gilbert–Ng–Peyton.
pub fn column_counts(a: &CsrMatrix) -> Vec<usize> {
    let n = a.nrows();
    assert!(a.is_square(), "column counts require a square matrix");
    let parent = elimination_tree(a);
    let post = postorder(&parent);

    // first[j]: postorder index of the first descendant of j.
    let mut first = vec![NONE; n];
    let mut delta = vec![0i64; n];
    for (k, &j) in post.iter().enumerate() {
        delta[j] = if first[j] == NONE { 1 } else { 0 };
        let mut t = j;
        while t != NONE && first[t] == NONE {
            first[t] = k;
            t = parent[t];
        }
    }

    let mut maxfirst = vec![NONE; n];
    let mut prevleaf = vec![NONE; n];
    let mut ancestor: Vec<usize> = (0..n).collect();
    for &j in &post {
        if parent[j] != NONE {
            delta[parent[j]] -= 1;
        }
        // Iterate row j of A (equals column j by symmetry): entries i.
        let (cols, _) = a.row(j);
        for &ci in cols {
            let i = ci as usize;
            match leaf_probe(i, j, &first, &mut maxfirst, &mut prevleaf, &mut ancestor) {
                LeafKind::NotLeaf => {}
                LeafKind::First => delta[j] += 1,
                LeafKind::Subsequent(q) => {
                    delta[j] += 1;
                    delta[q] -= 1;
                }
            }
        }
        if parent[j] != NONE {
            ancestor[j] = parent[j];
        }
    }

    // Accumulate deltas up the tree in postorder.
    let mut counts = delta;
    for &j in &post {
        if parent[j] != NONE {
            counts[parent[j]] += counts[j];
        }
    }
    counts.into_iter().map(|c| c.max(1) as usize).collect()
}

/// Total number of nonzeros in the Cholesky factor `L` (diagonal
/// included).
pub fn nnz_of_factor(a: &CsrMatrix) -> usize {
    column_counts(a).iter().sum()
}

/// The fill ratio `nnz(L) / nnz(A)` reported in Fig. 6 of the paper,
/// where `nnz(A)` counts the full symmetric matrix.
pub fn fill_ratio(a: &CsrMatrix) -> f64 {
    nnz_of_factor(a) as f64 / a.nnz().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn sym(n: usize, lower: &[(usize, usize)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
        }
        for &(i, j) in lower {
            coo.push_symmetric(i, j, -1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Naive symbolic factorisation oracle: column counts of L including
    /// the diagonal.
    fn naive_counts(a: &CsrMatrix) -> Vec<usize> {
        let n = a.nrows();
        let mut cols: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
        for (i, j, _) in a.iter() {
            if i > j {
                cols[j].insert(i);
            }
        }
        for k in 0..n {
            let below: Vec<usize> = cols[k].iter().copied().collect();
            if let Some(&pivot) = below.first() {
                // Column k updates column `pivot` (its etree parent):
                // the pattern of column k (below pivot) merges in.
                for &i in &below[1..] {
                    cols[pivot].insert(i);
                }
            }
        }
        (0..n).map(|k| cols[k].len() + 1).collect()
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let a = sym(6, &[(1, 0), (2, 1), (3, 2), (4, 3), (5, 4)]);
        let counts = column_counts(&a);
        assert_eq!(counts, vec![2, 2, 2, 2, 2, 1]);
        assert_eq!(nnz_of_factor(&a), 11);
        // nnz(A) = 6 diag + 10 off = 16.
        assert!((fill_ratio(&a) - 11.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_counts_are_one() {
        let a = CsrMatrix::identity(5);
        assert_eq!(column_counts(&a), vec![1; 5]);
        assert_eq!(fill_ratio(&a), 1.0);
    }

    #[test]
    fn known_fill_example() {
        // Columns 0 and 1 both connected to 2 and 3 only through fill:
        // A has entries (2,0), (3,0), (2,1): eliminating 0 creates fill
        // (3,2)... check against the oracle.
        let a = sym(4, &[(2, 0), (3, 0), (2, 1)]);
        assert_eq!(column_counts(&a), naive_counts(&a));
    }

    #[test]
    fn matches_naive_oracle_on_grid() {
        // 5-point Laplacian 6x6 grid.
        let n = 6;
        let idx = |r: usize, c: usize| r * n + c;
        let mut lower = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r + 1 < n {
                    lower.push((idx(r + 1, c), idx(r, c)));
                }
                if c + 1 < n {
                    lower.push((idx(r, c + 1), idx(r, c)));
                }
            }
        }
        let a = sym(n * n, &lower);
        assert_eq!(column_counts(&a), naive_counts(&a));
    }

    #[test]
    fn matches_naive_oracle_on_random_symmetric() {
        let n = 40;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
        }
        let mut state = 12345u64;
        for _ in 0..100 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (state >> 33) as usize % n;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % n;
            if i != j {
                coo.push_symmetric(i.max(j), i.min(j), -1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        assert_eq!(column_counts(&a), naive_counts(&a));
    }

    #[test]
    fn dense_matrix_counts() {
        let n = 8;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                coo.push(i, j, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let counts = column_counts(&a);
        // Dense L: column j has n - j entries.
        let expect: Vec<usize> = (0..n).map(|j| n - j).collect();
        assert_eq!(counts, expect);
    }
}
