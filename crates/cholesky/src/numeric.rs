//! Reference numeric sparse Cholesky factorisation (up-looking,
//! CSparse style).
//!
//! Used to cross-validate the Gilbert–Ng–Peyton counts (the factor's
//! actual nonzero structure must match the predicted counts exactly)
//! and to back the direct-solver example. Not performance-tuned — the
//! study's measurements concern SpMV, not factorisation speed.

use crate::counts::column_counts;
use crate::etree::elimination_tree;
use sparsemat::CsrMatrix;

const NONE: usize = usize::MAX;

/// Errors from numeric factorisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholeskyError {
    /// The matrix is not square.
    NotSquare,
    /// A non-positive pivot was encountered: the matrix is not positive
    /// definite.
    NotPositiveDefinite {
        /// The column at which factorisation broke down.
        column: usize,
    },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotSquare => write!(f, "matrix is not square"),
            CholeskyError::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive definite (pivot {column})")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// The lower-triangular Cholesky factor `L` in CSC form (`A = LLᵀ`).
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    /// Dimension.
    pub n: usize,
    /// Column pointers (`n + 1` entries).
    pub colptr: Vec<usize>,
    /// Row indices, ascending within each column, diagonal first.
    pub rowidx: Vec<u32>,
    /// Values.
    pub values: Vec<f64>,
}

impl CholeskyFactor {
    /// Number of stored nonzeros in `L`.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Solve `A x = b` via `L (Lᵀ x) = b`; returns `x`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let mut x = b.to_vec();
        // Forward: L y = b.
        for j in 0..self.n {
            let lo = self.colptr[j];
            let hi = self.colptr[j + 1];
            x[j] /= self.values[lo]; // diagonal is first in the column
            let xj = x[j];
            for p in lo + 1..hi {
                x[self.rowidx[p] as usize] -= self.values[p] * xj;
            }
        }
        // Backward: Lᵀ x = y.
        for j in (0..self.n).rev() {
            let lo = self.colptr[j];
            let hi = self.colptr[j + 1];
            let mut sum = x[j];
            for p in lo + 1..hi {
                sum -= self.values[p] * x[self.rowidx[p] as usize];
            }
            x[j] = sum / self.values[lo];
        }
        x
    }
}

/// Reach of row `k` in the elimination tree: the pattern of row `k` of
/// `L` (excluding the diagonal), in topological order.
fn ereach(a: &CsrMatrix, k: usize, parent: &[usize], mark: &mut [usize], out: &mut Vec<usize>) {
    out.clear();
    mark[k] = k;
    let (cols, _) = a.row(k);
    let mut path = Vec::new();
    for &cj in cols {
        let mut j = cj as usize;
        if j >= k {
            break;
        }
        path.clear();
        while mark[j] != k {
            path.push(j);
            mark[j] = k;
            j = parent[j];
            debug_assert_ne!(j, NONE, "walk must terminate at k's subtree");
        }
        // Prepend the path reversed so ancestors appear later.
        for &p in path.iter().rev() {
            out.push(p);
        }
    }
    // `out` currently holds per-path segments; a global topological
    // order needs ancestors after descendants. Sorting by etree depth is
    // equivalent to sorting by column index here because parent[j] > j.
    out.sort_unstable();
}

/// Up-looking sparse Cholesky factorisation of a symmetric positive
/// definite matrix given as a full symmetric CSR matrix.
pub fn cholesky_factor(a: &CsrMatrix) -> Result<CholeskyFactor, CholeskyError> {
    if !a.is_square() {
        return Err(CholeskyError::NotSquare);
    }
    let n = a.nrows();
    let parent = elimination_tree(a);
    let counts = column_counts(a);
    let mut colptr = Vec::with_capacity(n + 1);
    colptr.push(0usize);
    for j in 0..n {
        colptr.push(colptr[j] + counts[j]);
    }
    let nnz = colptr[n];
    let mut rowidx = vec![0u32; nnz];
    let mut values = vec![0.0f64; nnz];
    // Next free slot per column; the diagonal is written when column j
    // is finalised, so entries start at colptr[j] + 1.
    let mut next = vec![0usize; n];
    let mut diag = vec![0.0f64; n];
    for j in 0..n {
        next[j] = colptr[j] + 1;
        rowidx[colptr[j]] = j as u32;
    }

    let mut x = vec![0.0f64; n]; // dense scratch row
    let mut mark = vec![NONE; n];
    let mut pattern: Vec<usize> = Vec::new();
    for k in 0..n {
        ereach(a, k, &parent, &mut mark, &mut pattern);
        // Scatter row k of A (lower triangle + diagonal).
        let (cols, vals) = a.row(k);
        let mut d = 0.0;
        for (&cj, &v) in cols.iter().zip(vals.iter()) {
            let j = cj as usize;
            if j < k {
                x[j] = v;
            } else if j == k {
                d = v;
            }
        }
        // Solve the triangular system for row k of L.
        for &j in pattern.iter() {
            let lkj = x[j] / diag[j];
            x[j] = 0.0;
            // Apply column j's subdiagonal entries.
            for p in colptr[j] + 1..next[j] {
                x[rowidx[p] as usize] -= values[p] * lkj;
            }
            d -= lkj * lkj;
            // Store L[k][j].
            let slot = next[j];
            debug_assert!(slot < colptr[j + 1], "column count overflow at ({k}, {j})");
            rowidx[slot] = k as u32;
            values[slot] = lkj;
            next[j] += 1;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(CholeskyError::NotPositiveDefinite { column: k });
        }
        diag[k] = d.sqrt();
        values[colptr[k]] = diag[k];
    }
    Ok(CholeskyFactor {
        n,
        colptr,
        rowidx,
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::nnz_of_factor;
    use sparsemat::CooMatrix;

    /// Diagonally dominant symmetric matrix (hence SPD) from a lower
    /// pattern.
    fn spd(n: usize, lower: &[(usize, usize)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        let mut degree = vec![0.0f64; n];
        for &(i, j) in lower {
            degree[i] += 1.0;
            degree[j] += 1.0;
            coo.push_symmetric(i, j, -1.0);
        }
        for i in 0..n {
            coo.push(i, i, degree[i] + 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    fn check_llt(a: &CsrMatrix, l: &CholeskyFactor) {
        let n = a.nrows();
        // Dense reconstruction: B = L Lᵀ.
        let mut b = vec![vec![0.0f64; n]; n];
        for j in 0..n {
            for p in l.colptr[j]..l.colptr[j + 1] {
                for q in l.colptr[j]..l.colptr[j + 1] {
                    b[l.rowidx[p] as usize][l.rowidx[q] as usize] += l.values[p] * l.values[q];
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let want = a.get(i, j).unwrap_or(0.0);
                assert!(
                    (b[i][j] - want).abs() < 1e-9 * (1.0 + want.abs()),
                    "LLᵀ mismatch at ({i},{j}): {} vs {want}",
                    b[i][j]
                );
            }
        }
    }

    #[test]
    fn factor_tridiagonal_and_reconstruct() {
        let a = spd(6, &[(1, 0), (2, 1), (3, 2), (4, 3), (5, 4)]);
        let l = cholesky_factor(&a).unwrap();
        assert_eq!(l.nnz(), nnz_of_factor(&a), "counts must match the factor");
        check_llt(&a, &l);
    }

    #[test]
    fn factor_grid_and_reconstruct() {
        let n = 5;
        let idx = |r: usize, c: usize| r * n + c;
        let mut lower = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r + 1 < n {
                    lower.push((idx(r + 1, c), idx(r, c)));
                }
                if c + 1 < n {
                    lower.push((idx(r, c + 1), idx(r, c)));
                }
            }
        }
        let a = spd(n * n, &lower);
        let l = cholesky_factor(&a).unwrap();
        assert_eq!(l.nnz(), nnz_of_factor(&a));
        check_llt(&a, &l);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd(
            8,
            &[
                (1, 0),
                (2, 1),
                (3, 2),
                (4, 3),
                (5, 4),
                (6, 5),
                (7, 6),
                (7, 0),
            ],
        );
        let l = cholesky_factor(&a).unwrap();
        let x_true: Vec<f64> = (0..8).map(|i| (i as f64 + 1.0) * 0.5).collect();
        let b = a.spmv_dense(&x_true);
        let x = l.solve(&b);
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push_symmetric(1, 0, 5.0); // off-diagonal dominates
        coo.push(1, 1, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let err = cholesky_factor(&a).unwrap_err();
        assert!(matches!(err, CholeskyError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn rejects_rectangular() {
        let a = CsrMatrix::from_coo(&CooMatrix::new(2, 3));
        assert_eq!(cholesky_factor(&a).unwrap_err(), CholeskyError::NotSquare);
    }

    #[test]
    fn factor_matches_counts_on_denser_pattern() {
        let a = spd(
            10,
            &[
                (3, 0),
                (4, 1),
                (5, 2),
                (6, 3),
                (7, 4),
                (8, 5),
                (9, 6),
                (9, 0),
                (8, 1),
                (7, 2),
                (6, 1),
                (5, 0),
            ],
        );
        let l = cholesky_factor(&a).unwrap();
        assert_eq!(l.nnz(), nnz_of_factor(&a));
        check_llt(&a, &l);
    }
}
