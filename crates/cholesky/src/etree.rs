use sparsemat::CsrMatrix;

/// Compute the elimination tree of a structurally symmetric matrix
/// (Liu's algorithm with path-compressed virtual ancestors).
///
/// `parent[j]` is the parent of column `j`, or `usize::MAX` for roots.
/// Only the lower-triangular pattern is consulted, so a full symmetric
/// CSR matrix works directly.
pub fn elimination_tree(a: &CsrMatrix) -> Vec<usize> {
    let n = a.nrows();
    assert!(a.is_square(), "elimination tree requires a square matrix");
    const NONE: usize = usize::MAX;
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for k in 0..n {
        let (cols, _) = a.row(k);
        for &cj in cols {
            let mut j = cj as usize;
            if j >= k {
                break; // row is sorted; rest is upper triangle
            }
            // Walk from j up to the root of its current virtual tree,
            // compressing the path to k.
            while j != NONE && j < k {
                let next = ancestor[j];
                ancestor[j] = k;
                if next == NONE {
                    parent[j] = k;
                }
                j = next;
            }
        }
    }
    parent
}

/// Compute a postorder of a forest given as a parent array.
///
/// Children are visited in ascending index order, making the result
/// deterministic. Roots (`parent[j] == usize::MAX`) are processed in
/// ascending order too.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    const NONE: usize = usize::MAX;
    let n = parent.len();
    // Build child lists (reverse order, then visit via stack to restore
    // ascending order).
    let mut first_child = vec![NONE; n];
    let mut next_sibling = vec![NONE; n];
    for j in (0..n).rev() {
        let p = parent[j];
        if p != NONE {
            next_sibling[j] = first_child[p];
            first_child[p] = j;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<(usize, bool)> = Vec::new();
    for root in 0..n {
        if parent[root] != NONE {
            continue;
        }
        stack.push((root, false));
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                post.push(v);
                continue;
            }
            stack.push((v, true));
            // Push children (they come out in ascending order because
            // first_child lists are built ascending and the stack holds
            // them reversed).
            let mut kids = Vec::new();
            let mut c = first_child[v];
            while c != NONE {
                kids.push(c);
                c = next_sibling[c];
            }
            for &c in kids.iter().rev() {
                stack.push((c, false));
            }
        }
    }
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    const NONE: usize = usize::MAX;

    fn sym(n: usize, lower: &[(usize, usize)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
        }
        for &(i, j) in lower {
            coo.push_symmetric(i, j, -1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn etree_of_tridiagonal_is_a_path() {
        let a = sym(5, &[(1, 0), (2, 1), (3, 2), (4, 3)]);
        let parent = elimination_tree(&a);
        assert_eq!(parent, vec![1, 2, 3, 4, NONE]);
    }

    #[test]
    fn etree_of_diagonal_is_forest_of_roots() {
        let a = CsrMatrix::identity(4);
        let parent = elimination_tree(&a);
        assert!(parent.iter().all(|&p| p == NONE));
    }

    #[test]
    fn etree_of_arrow_matrix() {
        // Arrow pointing at the last column: every column's first
        // off-diagonal connection is column n-1.
        let a = sym(5, &[(4, 0), (4, 1), (4, 2), (4, 3)]);
        let parent = elimination_tree(&a);
        assert_eq!(parent, vec![4, 4, 4, 4, NONE]);
    }

    #[test]
    fn etree_known_example() {
        // From Davis's book style examples: entries (2,0), (3,1), (3,2):
        // parent[0]=2, parent[2]=3, parent[1]=3.
        let a = sym(4, &[(2, 0), (3, 1), (3, 2)]);
        let parent = elimination_tree(&a);
        assert_eq!(parent, vec![2, 3, 3, NONE]);
    }

    #[test]
    fn postorder_visits_children_before_parents() {
        let a = sym(5, &[(4, 0), (4, 1), (4, 2), (4, 3)]);
        let parent = elimination_tree(&a);
        let post = postorder(&parent);
        assert_eq!(post.len(), 5);
        let pos = |v: usize| post.iter().position(|&x| x == v).unwrap();
        for j in 0..5 {
            if parent[j] != NONE {
                assert!(pos(j) < pos(parent[j]), "child {j} after its parent");
            }
        }
        // Root last.
        assert_eq!(*post.last().unwrap(), 4);
    }

    #[test]
    fn postorder_of_forest_covers_everything() {
        let parent = vec![NONE, 0, 0, NONE, 3];
        let post = postorder(&parent);
        let mut sorted = post.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }
}
