//! Serving-tier saturation sweep: offered load vs. delivered
//! throughput, shed fraction, and tail latency, for 1 vs. 4 shards.
//!
//! The serving tier's contract under overload is *bounded degradation*:
//! a full admission queue sheds with a reason instead of building
//! unbounded backlog, and expired deadlines are cancelled instead of
//! served late. This bench makes that visible as a saturation curve —
//! below the knee the tier delivers what is offered; past it, delivered
//! throughput plateaus and the excess turns into sheds. Sharding moves
//! the knee: four shards run four admission queues and four engines, so
//! the plateau sits higher (modulo the host's core budget).
//!
//! Besides the Criterion group (the cached end-to-end answer path), a
//! normal run (no `--test` flag) sweeps offered loads for 1 and 4
//! shards and records the curves in `BENCH_PR6.json` at the repository
//! root.

use criterion::{criterion_group, Criterion};
use engine::{AlgoSpec, MatrixHandle};
use servetier::{ServeTier, ShedReason, SpmvRequest, TenantSpec, TierConfig, TierError};
use spmv::KernelKind;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deadline attached to every swept request: past the knee, some
/// backlog ages out and must be cancelled, not served late.
const DEADLINE: Duration = Duration::from_millis(250);

/// Submitting client threads per run (pacing granularity).
const CLIENTS: usize = 2;

/// Wall-clock budget per (shards, offered-load) run.
const RUN_SECONDS: f64 = 0.4;

/// SplitMix64, for a dependency-free deterministic trace.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The key space: a handful of scrambled meshes crossed with cheap
/// orderings. Small matrices keep per-request service time low, so the
/// knee is set by the serving machinery rather than one giant SpMV.
struct KeySpace {
    handles: Vec<MatrixHandle>,
    xs: Vec<Arc<Vec<f64>>>,
    keys: Vec<(usize, AlgoSpec)>,
    /// Zipf cumulative weights over `keys`.
    cumulative: Vec<f64>,
}

fn key_space() -> KeySpace {
    let handles: Vec<MatrixHandle> = (0..8)
        .map(|i| MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(32, 32), i)))
        .collect();
    let xs: Vec<Arc<Vec<f64>>> = handles
        .iter()
        .map(|h| {
            Arc::new(
                (0..h.matrix().ncols())
                    .map(|i| 1.0 + (i % 7) as f64 * 0.5)
                    .collect(),
            )
        })
        .collect();
    let algos = [AlgoSpec::Original, AlgoSpec::Rcm, AlgoSpec::Gray];
    let keys: Vec<(usize, AlgoSpec)> = (0..handles.len())
        .flat_map(|mi| algos.iter().map(move |&a| (mi, a)))
        .collect();
    let mut cumulative = Vec::with_capacity(keys.len());
    let mut acc = 0.0;
    for rank in 1..=keys.len() {
        acc += 1.0 / (rank as f64).powf(1.1);
        cumulative.push(acc);
    }
    KeySpace {
        handles,
        xs,
        keys,
        cumulative,
    }
}

fn zipf_draw(space: &KeySpace, state: &mut u64) -> usize {
    let total = *space.cumulative.last().unwrap();
    let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64 * total;
    space
        .cumulative
        .partition_point(|&c| c <= u)
        .min(space.keys.len() - 1)
}

fn tier(shards: usize) -> ServeTier {
    ServeTier::new(TierConfig {
        shards,
        tenants: vec![TenantSpec::new("t0", 2), TenantSpec::new("t1", 1)],
        queue_capacity: 64,
        dispatchers_per_shard: 1,
        spmv_threads: 2,
        registry: Some(telemetry::Registry::new_arc()),
        ..TierConfig::default()
    })
}

struct RunResult {
    offered: f64,
    achieved: f64,
    served: usize,
    shed: usize,
    shed_fraction: f64,
    p99_ms: f64,
}

/// Drive one open-loop run: offer `offered` requests/s for
/// [`RUN_SECONDS`], deadline-bound, and report delivery and tail.
fn run_config(space: &KeySpace, shards: usize, offered: f64, seed: u64) -> RunResult {
    let tier = tier(shards);
    let requests = ((offered * RUN_SECONDS) as usize).max(40);
    let per_client = requests.div_ceil(CLIENTS);
    let interval = Duration::from_secs_f64(CLIENTS as f64 / offered);
    let mut served = 0usize;
    let mut shed = 0usize;
    let mut latencies_ns: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for ci in 0..CLIENTS {
            let tier = &tier;
            clients.push(scope.spawn(move || {
                let mut state = seed ^ (ci as u64).wrapping_mul(0x9e37_79b9);
                let mut pending = Vec::with_capacity(per_client);
                let start = Instant::now();
                for j in 0..per_client {
                    // Hybrid pacing: sleep for coarse waits, yield for
                    // the last stretch — OS sleep granularity would cap
                    // the offered rate well below the interesting loads,
                    // and busy-spinning would starve the dispatchers.
                    let target = start + interval * j as u32;
                    loop {
                        let now = Instant::now();
                        let Some(remaining) = target.checked_duration_since(now) else {
                            break;
                        };
                        if remaining > Duration::from_micros(300) {
                            std::thread::sleep(remaining - Duration::from_micros(200));
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    let k = zipf_draw(space, &mut state);
                    let (mi, algo) = space.keys[k];
                    pending.push(tier.submit(SpmvRequest {
                        tenant: if j % 3 == 0 { "t1" } else { "t0" }.into(),
                        matrix: space.handles[mi].clone(),
                        algo,
                        kernel: KernelKind::OneD,
                        x: Arc::clone(&space.xs[mi]),
                        priority: 0,
                        deadline: Some(Instant::now() + DEADLINE),
                    }));
                }
                let mut served = 0usize;
                let mut shed = 0usize;
                let mut latencies = Vec::new();
                for ticket in pending {
                    match ticket.wait() {
                        Ok(response) => {
                            served += 1;
                            latencies
                                .push((response.queue_wait + response.service).as_nanos() as u64);
                        }
                        Err(TierError::Shed(ShedReason::QueueFull | ShedReason::Expired)) => {
                            shed += 1
                        }
                        Err(other) => panic!("saturation request failed: {other}"),
                    }
                }
                (served, shed, latencies)
            }));
        }
        for client in clients {
            let (s, d, lat) = client.join().expect("client thread");
            served += s;
            shed += d;
            latencies_ns.extend(lat);
        }
    });
    let wall = RUN_SECONDS.max(1e-9);
    latencies_ns.sort_unstable();
    let p99_ms = if latencies_ns.is_empty() {
        0.0
    } else {
        let idx =
            ((latencies_ns.len() as f64 * 0.99).ceil() as usize).clamp(1, latencies_ns.len()) - 1;
        latencies_ns[idx] as f64 / 1e6
    };
    let total = served + shed;
    RunResult {
        offered,
        achieved: served as f64 / wall,
        served,
        shed,
        shed_fraction: shed as f64 / total.max(1) as f64,
        p99_ms,
    }
}

/// Criterion target: the cached end-to-end answer path (ordering, plan
/// and prepared matrix all hot) — the steady-state per-request cost the
/// saturation plateau is made of.
fn cached_answer(c: &mut Criterion) {
    let space = key_space();
    let tier = tier(1);
    let (mi, algo) = space.keys[0];
    let request = || SpmvRequest {
        tenant: "t0".into(),
        matrix: space.handles[mi].clone(),
        algo,
        kernel: KernelKind::OneD,
        x: Arc::clone(&space.xs[mi]),
        priority: 0,
        deadline: None,
    };
    tier.serve(request()).expect("warm the caches");
    c.bench_function("serve/cached_answer", |b| {
        b.iter(|| tier.serve(request()).expect("cached serve"))
    });
}

/// Sweep offered loads for 1 and 4 shards and persist the curves.
fn write_bench_json() {
    let space = key_space();
    let loads = [2000.0, 8000.0, 16000.0, 32000.0, 64000.0];
    let mut sections = Vec::new();
    for &shards in &[1usize, 4] {
        // Warm run: fills the ordering caches so the sweep measures the
        // serving machinery, not cold-start reordering.
        let _ = run_config(&space, shards, 200.0, 7);
        let mut rows = Vec::new();
        for (i, &offered) in loads.iter().enumerate() {
            let r = run_config(&space, shards, offered, 11 + i as u64);
            println!(
                "shards {shards}: offered {:>6.0}/s -> {:>6.0}/s delivered, \
                 {:>3} shed ({:.0}%), p99 {:.1} ms",
                r.offered,
                r.achieved,
                r.shed,
                100.0 * r.shed_fraction,
                r.p99_ms
            );
            rows.push(format!(
                "        {{ \"offered_per_s\": {:.0}, \"achieved_per_s\": {:.1}, \
                 \"served\": {}, \"shed\": {}, \"shed_fraction\": {:.4}, \"p99_ms\": {:.3} }}",
                r.offered, r.achieved, r.served, r.shed, r.shed_fraction, r.p99_ms
            ));
        }
        sections.push(format!(
            "    {{\n      \"shards\": {shards},\n      \"sweep\": [\n{}\n      ]\n    }}",
            rows.join(",\n")
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_saturation\",\n  \
         \"key_space\": \"8 x mesh2d(32,32) scrambled x [original, rcm, gray]\",\n  \
         \"deadline_ms\": {},\n  \"queue_capacity\": 64,\n  \"clients\": {},\n  \
         \"run_seconds\": {},\n  \"host_threads\": {},\n  \"configs\": [\n{}\n  ]\n}}\n",
        DEADLINE.as_millis(),
        CLIENTS,
        RUN_SECONDS,
        bench::host_threads(),
        sections.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("saturation curves written to BENCH_PR6.json"),
        Err(e) => eprintln!("could not write BENCH_PR6.json: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(50);
    targets = cached_answer
}

fn main() {
    benches();
    // Smoke runs (`--test`, as used by ci.sh and `cargo test`) skip the
    // sweep: sub-second paced runs under a loaded CI host would only
    // record noise.
    if !std::env::args().any(|arg| arg == "--test") {
        write_bench_json();
    }
}
