//! Reordering pipeline scaling: sequential vs. team-parallel stage
//! timings.
//!
//! The ordering hot path has three data-parallel stages — pattern
//! symmetrisation (`symmetrize_pattern_on`), level-set BFS expansion
//! (`cuthill_mckee_order_on`), and permutation application
//! (`permute_symmetric_on`) — all dispatching on the same
//! [`ThreadTeam`] the SpMV kernels use. This bench times each stage
//! (plus the end-to-end RCM compute) sequentially and on teams of
//! 1/2/4 lanes on an R-MAT matrix, whose wide BFS frontiers exercise
//! the two-phase parallel expansion.
//!
//! Every parallel stage is byte-identical to its sequential
//! counterpart (asserted here before timing), so the *only* thing that
//! varies is wall-clock.
//!
//! Besides the Criterion group, a normal run (no `--test` flag)
//! records per-stage sequential/parallel timings and ratios in
//! `BENCH_PR5.json` at the repository root, along with the host's
//! available parallelism — on a single-core host the team cannot beat
//! the sequential path, and the JSON says so honestly.

use bench::host_threads;
use criterion::{criterion_group, BenchmarkId, Criterion};
use reorder::{amd_order_on, amd_order_single, Amd, Nd, Rcm, ReorderAlgorithm, ReorderExec};
use sparsemat::{symmetrize_pattern_on, CsrMatrix};
use spmv::ThreadTeam;
use std::hint::black_box;
use std::time::Instant;
use team::Exec;

/// Team sizes the scaling record covers.
const LANES: [usize; 3] = [1, 2, 4];

/// Team sizes the AMD round-parallel record (`BENCH_PR10.json`)
/// covers.
const AMD_LANES: [usize; 4] = [1, 2, 4, 8];

/// An R-MAT graph: wide, skewed BFS frontiers — the case level-set
/// parallelism is for.
fn bench_matrix() -> CsrMatrix {
    corpus::rmat(14, 8, 42)
}

/// One timing subject: a named closure over (matrix, executor).
type Stage = (&'static str, fn(&CsrMatrix, Exec<'_>));

fn stage_symmetrize(a: &CsrMatrix, exec: Exec<'_>) {
    black_box(symmetrize_pattern_on(a, exec).expect("square input"));
}

fn stage_levels(a: &CsrMatrix, exec: Exec<'_>) {
    let g = sparsegraph::Graph::from_matrix(a).expect("ordering graph");
    black_box(Rcm::cuthill_mckee_order_on(&g, exec));
}

fn stage_permute(a: &CsrMatrix, exec: Exec<'_>) {
    let r = Rcm::default().compute(a).expect("RCM");
    black_box(a.permute_symmetric_on(&r.perm, exec).expect("applying RCM"));
}

fn stage_end_to_end(a: &CsrMatrix, exec: Exec<'_>) {
    let rx = ReorderExec::on_exec(exec);
    black_box(Rcm::default().compute_on(a, &rx).expect("RCM"));
}

const STAGES: [Stage; 4] = [
    ("symmetrize", stage_symmetrize),
    ("levels", stage_levels),
    ("permute", stage_permute),
    ("rcm_end_to_end", stage_end_to_end),
];

fn stage_amd(a: &CsrMatrix, exec: Exec<'_>) {
    let rx = ReorderExec::on_exec(exec);
    black_box(Amd::default().compute_on(a, &rx).expect("AMD"));
}

fn stage_nd(a: &CsrMatrix, exec: Exec<'_>) {
    let rx = ReorderExec::on_exec(exec);
    black_box(Nd::default().compute_on(a, &rx).expect("ND"));
}

/// The fill-reducing orderings whose hot path is AMD's round-based
/// multiple elimination (ND orders its leaves with AMD).
const AMD_STAGES: [Stage; 2] = [("amd_end_to_end", stage_amd), ("nd_end_to_end", stage_nd)];

fn reorder_scaling(c: &mut Criterion) {
    let a = bench_matrix();
    let mut group = c.benchmark_group("reorder_scaling");
    for (name, stage) in STAGES.iter().chain(AMD_STAGES.iter()) {
        group.bench_with_input(BenchmarkId::new(*name, "seq"), &a, |b, m| {
            b.iter(|| stage(m, Exec::Sequential))
        });
        for lanes in LANES {
            let team = ThreadTeam::new(lanes);
            group.bench_with_input(
                BenchmarkId::new(*name, format!("team{lanes}")),
                &a,
                |b, m| b.iter(|| stage(m, Exec::Team(&team))),
            );
        }
    }
    group.finish();
}

/// Median-of-`reps` wall time of one call, seconds.
fn time_stage(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: first dispatch pays one-time costs
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
    times[times.len() / 2]
}

/// Record per-stage sequential vs. team timings in `BENCH_PR5.json`.
fn write_bench_json() {
    let a = bench_matrix();

    // Determinism first: the numbers below are only comparable because
    // the outputs are identical.
    let seq_perm = Rcm::default().compute(&a).expect("RCM").perm;
    for lanes in LANES {
        let team = ThreadTeam::new(lanes);
        let par = Rcm::default()
            .compute_on(&a, &ReorderExec::on_team(&team))
            .expect("RCM")
            .perm;
        assert_eq!(seq_perm, par, "parallel RCM diverged at {lanes} lanes");
    }

    let reps = 5;
    let mut stage_json = Vec::new();
    for (name, stage) in STAGES {
        let seq = time_stage(reps, || stage(&a, Exec::Sequential));
        let mut team_entries = Vec::new();
        for lanes in LANES {
            let team = ThreadTeam::new(lanes);
            let t = time_stage(reps, || stage(&a, Exec::Team(&team)));
            team_entries.push(format!(
                "{{ \"lanes\": {lanes}, \"ms\": {:.3}, \"speedup_vs_seq\": {:.3} }}",
                t * 1e3,
                seq / t
            ));
        }
        stage_json.push(format!(
            "    {{\n      \"stage\": \"{name}\",\n      \"sequential_ms\": {:.3},\n      \
             \"team\": [{}]\n    }}",
            seq * 1e3,
            team_entries.join(", ")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"reorder_scaling\",\n  \"matrix\": \"rmat(14, 8, 42)\",\n  \
         \"nrows\": {},\n  \"nnz\": {},\n  \"host_threads\": {},\n  \"reps\": {},\n  \
         \"note\": \"median of reps; team sizes above host_threads oversubscribe the \
         host, so speedup_vs_seq > 1 is only expected when host_threads > 1\",\n  \
         \"stages\": [\n{}\n  ]\n}}\n",
        a.nrows(),
        a.nnz(),
        host_threads(),
        reps,
        stage_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("reorder scaling recorded to BENCH_PR5.json"),
        Err(e) => eprintln!("could not write BENCH_PR5.json: {e}"),
    }
}

/// Record the AMD round-parallel numbers in `BENCH_PR10.json`: the
/// end-to-end AMD and ND stages across team sizes, plus the
/// round-based-vs-single-elimination overhead on the raw ordering
/// (same graph, no matrix plumbing) that gates the multiple-elimination
/// rework.
fn write_bench_pr10_json() {
    let a = bench_matrix();
    let g = sparsegraph::Graph::from_matrix(&a).expect("ordering graph");

    // Determinism first: the numbers below are only comparable because
    // the outputs are identical (round_min 0 forces the parallel
    // update path even on small rounds).
    let seq_perm = Amd::default().compute(&a).expect("AMD").perm;
    for lanes in AMD_LANES {
        let team = ThreadTeam::new(lanes);
        let rx = ReorderExec::on_team(&team).with_amd_round_min(0);
        let par = Amd::default().compute_on(&a, &rx).expect("AMD").perm;
        assert_eq!(seq_perm, par, "parallel AMD diverged at {lanes} lanes");
    }

    let reps = 5;
    let single_ms = time_stage(reps, || {
        black_box(amd_order_single(&g, true));
    }) * 1e3;
    let rx_seq = ReorderExec::sequential();
    let (_, stats) = amd_order_on(&g, true, 0, &rx_seq);
    let round_seq_ms = time_stage(reps, || {
        black_box(amd_order_on(&g, true, 0, &rx_seq));
    }) * 1e3;

    let mut stage_json = Vec::new();
    for (name, stage) in AMD_STAGES {
        let seq = time_stage(reps, || stage(&a, Exec::Sequential));
        let mut team_entries = Vec::new();
        for lanes in AMD_LANES {
            let team = ThreadTeam::new(lanes);
            let t = time_stage(reps, || stage(&a, Exec::Team(&team)));
            team_entries.push(format!(
                "{{ \"lanes\": {lanes}, \"ms\": {:.3}, \"speedup_vs_seq\": {:.3} }}",
                t * 1e3,
                seq / t
            ));
        }
        stage_json.push(format!(
            "    {{\n      \"stage\": \"{name}\",\n      \"sequential_ms\": {:.3},\n      \
             \"team\": [{}]\n    }}",
            seq * 1e3,
            team_entries.join(", ")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"reorder_scaling (amd multiple elimination)\",\n  \
         \"matrix\": \"rmat(14, 8, 42)\",\n  \"nrows\": {},\n  \"nnz\": {},\n  \
         \"host_threads\": {},\n  \"reps\": {},\n  \
         \"note\": \"median of reps; team sizes above host_threads oversubscribe the \
         host, so speedup_vs_seq > 1 is only expected when host_threads > 1\",\n  \
         \"amd_single_elimination_ms\": {:.3},\n  \"amd_round_based_seq_ms\": {:.3},\n  \
         \"amd_team1_overhead\": {:.4},\n  \
         \"amd_stats\": {{ \"rounds\": {}, \"pivots\": {}, \"max_round\": {}, \
         \"merges\": {} }},\n  \"stages\": [\n{}\n  ]\n}}\n",
        a.nrows(),
        a.nnz(),
        host_threads(),
        reps,
        single_ms,
        round_seq_ms,
        round_seq_ms / single_ms,
        stats.rounds,
        stats.pivots,
        stats.max_round,
        stats.merges,
        stage_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("AMD round-parallel scaling recorded to BENCH_PR10.json"),
        Err(e) => eprintln!("could not write BENCH_PR10.json: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = reorder_scaling
}

fn main() {
    benches();
    // Smoke runs (`--test`, as used by ci.sh) skip the JSON record:
    // single-iteration timings would only add noise.
    if !std::env::args().any(|arg| arg == "--test") {
        write_bench_json();
        write_bench_pr10_json();
    }
}
