//! Cholesky analysis benchmarks: Gilbert–Ng–Peyton column counting (the
//! Fig. 6 workhorse) and the reference numeric factorisation, under the
//! natural and AMD orderings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reorder::{Amd, ReorderAlgorithm};
use std::hint::black_box;

fn fill_counting(c: &mut Criterion) {
    let a = corpus::make_spd(&corpus::mesh2d(120, 120));
    let amd = Amd::default()
        .compute(&a)
        .expect("square")
        .apply(&a)
        .expect("apply");
    let mut group = c.benchmark_group("cholesky/column_counts_mesh120");
    group.bench_function("natural", |b| {
        b.iter(|| black_box(cholesky::column_counts(black_box(&a))))
    });
    group.bench_function("amd", |b| {
        b.iter(|| black_box(cholesky::column_counts(black_box(&amd))))
    });
    group.finish();
}

fn numeric_factor(c: &mut Criterion) {
    let a = corpus::make_spd(&corpus::mesh2d(60, 60));
    let mut group = c.benchmark_group("cholesky/numeric_mesh60");
    for (name, alg) in [("natural", None), ("amd", Some(Amd::default()))] {
        let m = match alg {
            None => a.clone(),
            Some(alg) => alg.compute(&a).unwrap().apply(&a).unwrap(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &m, |b, m| {
            b.iter(|| black_box(cholesky::cholesky_factor(black_box(m)).expect("SPD")))
        });
    }
    group.finish();
}

/// Short measurement windows: the benches compare algorithms whose
/// runtimes differ by orders of magnitude, so tight confidence
/// intervals are unnecessary and a full `cargo bench` stays fast.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = fill_counting, numeric_factor
}
criterion_main!(benches);
