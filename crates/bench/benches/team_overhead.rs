//! Executor comparison: per-call scoped spawning vs. the persistent
//! [`ThreadTeam`].
//!
//! Before the team refactor every SpMV call paid thread creation and
//! teardown; this bench keeps a faithful scoped-spawn reference
//! implementation (one OS thread per plan span, created and joined per
//! call) and races it against the same 1D kernel dispatched onto a
//! long-lived team. The matrix is deliberately small so per-call
//! executor overhead — not memory bandwidth — dominates.
//!
//! Besides the Criterion group, a normal run (no `--test` flag) times
//! both executors directly and records the spawn-overhead ratio in
//! `BENCH_PR3.json` at the repository root.

use bench::host_threads;
use criterion::{criterion_group, BenchmarkId, Criterion};
use sparsemat::CsrMatrix;
use spmv::{spmv_1d, Plan1d, ThreadTeam};
use std::hint::black_box;
use std::time::Instant;

/// Small enough that executor overhead dominates the row loops.
fn small_matrix() -> CsrMatrix {
    corpus::scramble(&corpus::mesh2d(24, 24), 1)
}

/// Pre-refactor reference: the 1D kernel with every call spawning one
/// OS thread per plan span and joining them before returning.
fn spmv_1d_scoped(a: &CsrMatrix, plan: &Plan1d, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    let rowptr = a.rowptr();
    let colidx = a.colidx();
    let values = a.values();
    std::thread::scope(|scope| {
        let mut rest: &mut [f64] = y;
        let mut offset = 0;
        for &(start, end) in &plan.row_ranges {
            let (chunk, tail) = rest.split_at_mut(end - offset);
            rest = tail;
            offset = end;
            scope.spawn(move || {
                for (out, r) in chunk.iter_mut().zip(start..end) {
                    let mut sum = 0.0;
                    for k in rowptr[r]..rowptr[r + 1] {
                        sum += values[k] * x[colidx[k] as usize];
                    }
                    *out = sum;
                }
            });
        }
    });
}

fn executor_overhead(c: &mut Criterion) {
    let threads = host_threads();
    let a = small_matrix();
    let plan = Plan1d::new(&a, threads);
    let team = ThreadTeam::new(threads);
    let x: Vec<f64> = (0..a.ncols()).map(|i| (i % 13) as f64).collect();
    let mut y = vec![0.0; a.nrows()];

    let mut group = c.benchmark_group("executor");
    group.bench_with_input(BenchmarkId::new("scoped-spawn", threads), &a, |b, m| {
        b.iter(|| spmv_1d_scoped(m, &plan, black_box(&x), &mut y))
    });
    group.bench_with_input(BenchmarkId::new("team", threads), &a, |b, m| {
        b.iter(|| spmv_1d(m, &plan, &team, black_box(&x), &mut y))
    });
    group.finish();
}

/// Directly time `iters` calls of `f` and return seconds per call.
fn time_per_call(iters: u32, mut f: impl FnMut()) -> f64 {
    // Warm up: first spawns and first dispatch pay one-time costs.
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Measure the executor ratio and persist it for the PR record.
fn write_bench_json() {
    let threads = host_threads();
    let a = small_matrix();
    let plan = Plan1d::new(&a, threads);
    let team = ThreadTeam::new(threads);
    let x: Vec<f64> = (0..a.ncols()).map(|i| (i % 13) as f64).collect();
    let mut y = vec![0.0; a.nrows()];

    let iters = 2_000;
    let scoped = time_per_call(iters, || spmv_1d_scoped(&a, &plan, black_box(&x), &mut y));
    let team_t = time_per_call(iters, || spmv_1d(&a, &plan, &team, black_box(&x), &mut y));
    let ratio = scoped / team_t;

    let json = format!(
        "{{\n  \"bench\": \"team_overhead\",\n  \"matrix\": \"mesh2d(24,24) scrambled\",\n  \
         \"nrows\": {},\n  \"nnz\": {},\n  \"threads\": {},\n  \"iters\": {},\n  \
         \"scoped_spawn_us_per_call\": {:.3},\n  \"team_us_per_call\": {:.3},\n  \
         \"spawn_overhead_ratio\": {:.3}\n}}\n",
        a.nrows(),
        a.nnz(),
        threads,
        iters,
        scoped * 1e6,
        team_t * 1e6,
        ratio
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR3.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "executor ratio: scoped-spawn is {ratio:.2}x the team's per-call cost \
             (written to BENCH_PR3.json)"
        ),
        Err(e) => eprintln!("could not write BENCH_PR3.json: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(200);
    targets = executor_overhead
}

fn main() {
    benches();
    // Smoke runs (`--test`, as used by ci.sh and `cargo test`) skip the
    // JSON record: single-iteration timings would only add noise.
    if !std::env::args().any(|arg| arg == "--test") {
        write_bench_json();
    }
}
