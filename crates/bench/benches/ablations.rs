//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! - FM refinement on/off in the multilevel partitioner (quality is
//!   checked by tests; this measures the time cost);
//! - GP with row balance vs nonzero-weighted balance (§3.3 discusses
//!   both; the paper selects row balance);
//! - Gray ordering parameter sweep (bitmap bits, dense threshold);
//! - plain CM vs reversed CM (RCM).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partition::{partition_graph, PartitionConfig};
use reorder::{Gp, Gray, GrayParams, Rcm, ReorderAlgorithm};
use sparsegraph::Graph;
use std::hint::black_box;

fn fm_refinement(c: &mut Criterion) {
    let a = corpus::scramble(&corpus::mesh2d(120, 120), 7);
    let g = Graph::from_matrix(&a).expect("square");
    let mut group = c.benchmark_group("ablation/fm_passes");
    for passes in [0usize, 2, 8] {
        let cfg = PartitionConfig {
            num_parts: 64,
            fm_passes: passes,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(passes), &cfg, |b, cfg| {
            b.iter(|| black_box(partition_graph(&g, cfg)))
        });
    }
    group.finish();
}

fn gp_balance_mode(c: &mut Criterion) {
    let a = corpus::dense_rows_mix(20_000, 0.01, 3);
    let mut group = c.benchmark_group("ablation/gp_balance");
    for (name, weighted) in [("rows", false), ("nnz", true)] {
        let mut gp = Gp::new(64);
        gp.nnz_weighted = weighted;
        group.bench_with_input(BenchmarkId::from_parameter(name), &gp, |b, gp| {
            b.iter(|| black_box(gp.compute(black_box(&a)).expect("square")))
        });
    }
    group.finish();
}

fn gray_parameters(c: &mut Criterion) {
    let a = corpus::dense_rows_mix(40_000, 0.01, 9);
    let mut group = c.benchmark_group("ablation/gray_params");
    for (bits, thresh) in [(8u32, 20usize), (16, 20), (32, 20), (16, 5), (16, 100)] {
        let gray = Gray {
            params: GrayParams {
                bitmap_bits: bits,
                dense_threshold: thresh,
            },
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("bits{bits}_t{thresh}")),
            &gray,
            |b, g| b.iter(|| black_box(g.compute(black_box(&a)).expect("square"))),
        );
    }
    group.finish();
}

fn cm_vs_rcm(c: &mut Criterion) {
    let a = corpus::scramble(&corpus::banded(40_000, 4), 2);
    let mut group = c.benchmark_group("ablation/cm_vs_rcm");
    for (name, plain) in [("rcm", false), ("cm", true)] {
        let alg = Rcm { plain_cm: plain };
        group.bench_with_input(BenchmarkId::from_parameter(name), &alg, |b, alg| {
            b.iter(|| black_box(alg.compute(black_box(&a)).expect("square")))
        });
    }
    group.finish();
}

/// Short measurement windows: the benches compare algorithms whose
/// runtimes differ by orders of magnitude, so tight confidence
/// intervals are unnecessary and a full `cargo bench` stays fast.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = fm_refinement, gp_balance_mode, gray_parameters, cm_vs_rcm
}
criterion_main!(benches);
