//! Partitioner substrate benchmarks: multilevel graph partitioning at
//! the k values the paper's GP uses (16..128), and the hypergraph
//! partitioner at the HP arity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partition::{partition_graph, partition_hypergraph};
use partition::{HypergraphPartitionConfig, PartitionConfig};
use sparsegraph::{Graph, Hypergraph};
use std::hint::black_box;

fn graph_partitioning(c: &mut Criterion) {
    let a = corpus::mesh2d(160, 160);
    let g = Graph::from_matrix(&a).expect("square");
    let mut group = c.benchmark_group("partition/graph_mesh160");
    for k in [16usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(partition_graph(&g, &PartitionConfig::k(k))))
        });
    }
    group.finish();
}

fn hypergraph_partitioning(c: &mut Criterion) {
    let a = corpus::scramble(&corpus::banded(8_000, 4), 5);
    let h = Hypergraph::column_net(&a);
    let mut group = c.benchmark_group("partition/hypergraph_band8k");
    for k in [32usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(partition_hypergraph(&h, &HypergraphPartitionConfig::k(k))))
        });
    }
    group.finish();
}

/// Short measurement windows: the benches compare algorithms whose
/// runtimes differ by orders of magnitude, so tight confidence
/// intervals are unnecessary and a full `cargo bench` stays fast.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = graph_partitioning, hypergraph_partitioning
}
criterion_main!(benches);
