//! Adaptive-policy serving bench: `--policy adaptive` vs `always` vs
//! `never` on two traffic shapes.
//!
//! The policy layer's contract (PR 7) is asymmetric:
//!
//! - **cold, low-repetition traffic** (many distinct matrices, each
//!   multiplied a handful of times — fewer than the probe threshold)
//!   must get *faster* under `adaptive` than under `always`, because
//!   the policy refuses to pay reorder costs that can never amortise;
//! - **hot, high-repetition traffic** (few matrices, hammered far past
//!   break-even) must stay *within a few percent* of `always`: the
//!   policy probes, the ledger confirms the win, and from then on the
//!   served path is identical — only the handful of pre-probe
//!   original-order serves is given up.
//!
//! A normal run (no `--test`) replays both shapes closed-loop through
//! a fresh [`ServeTier`] per mode and writes the totals, tails, and
//! reorder counts to `BENCH_PR7.json` at the repository root. The
//! Criterion target measures the marginal cost of one warm adaptive
//! decision — the `policy.decide` stage every request now pays.

use criterion::{criterion_group, Criterion};
use engine::{AlgoSpec, MatrixHandle};
use policy::{PolicyConfig, PolicyEngine, PolicyMode};
use servetier::{ServeTier, SpmvRequest, TenantSpec, TierConfig};
use spmv::KernelKind;
use std::sync::Arc;
use std::time::Instant;

/// One traffic shape: `keys` distinct matrices, each requested
/// `reps_per_key` times (interleaved round-robin, the worst case for
/// any cache that hopes for back-to-back repeats).
struct Shape {
    name: &'static str,
    keys: usize,
    reps_per_key: usize,
    /// Matrix family served by this shape (seeded per key).
    build: fn(u64) -> sparsemat::CsrMatrix,
}

/// Trials per (shape, mode); the best (minimum-total) trial is
/// reported. Closed-loop totals on a shared host carry multi-percent
/// scheduling noise — min-of-N is the usual estimator for the
/// workload's intrinsic cost, and trials are interleaved across modes
/// so every mode samples the same background-load regimes.
const TRIALS: usize = 5;

const SHAPES: &[Shape] = &[
    // Scrambled meshes: cache-resident, so reordering cannot pay at 4
    // reps — `always` burns 24 reorder costs for nothing.
    Shape {
        name: "cold",
        keys: 24,
        reps_per_key: 4,
        build: |seed| corpus::scramble(&corpus::mesh2d(96, 96), seed),
    },
    // RMAT graphs whose x-vector (128 KiB) spills L1: RCM genuinely
    // speeds SpMV here and 450 reps sit far past break-even, so the
    // adaptive policy must converge onto the same reordered serving
    // path `always` uses from request one.
    Shape {
        name: "hot",
        keys: 2,
        reps_per_key: 450,
        build: |seed| corpus::rmat(14, 8, seed),
    },
];

/// Matrices big enough that one SpMV costs tens of microseconds — on
/// toy matrices the tier's fixed per-request machinery swamps both
/// the reorder costs and the policy's savings.
fn handles(shape: &Shape) -> Vec<MatrixHandle> {
    (0..shape.keys)
        .map(|i| MatrixHandle::from_matrix((shape.build)(i as u64)))
        .collect()
}

fn tier(mode: PolicyMode, registry: Arc<telemetry::Registry>) -> ServeTier {
    ServeTier::new(TierConfig {
        shards: 1,
        tenants: vec![TenantSpec::new("t0", 1)],
        queue_capacity: 64,
        dispatchers_per_shard: 1,
        spmv_threads: 2,
        registry: Some(registry),
        policy: PolicyConfig {
            mode,
            ..PolicyConfig::default()
        },
        ..TierConfig::default()
    })
}

struct RunResult {
    total_ms: f64,
    mean_us: f64,
    p99_us: f64,
    reorders: u64,
}

/// Replay one shape closed-loop under one policy mode and report
/// total time-to-answer (the quantity the policy optimises).
fn run_shape(shape: &Shape, mode: PolicyMode) -> RunResult {
    let registry = telemetry::Registry::new_arc();
    let tier = tier(mode, Arc::clone(&registry));
    let handles = handles(shape);
    let xs: Vec<Arc<Vec<f64>>> = handles
        .iter()
        .map(|h| {
            Arc::new(
                (0..h.matrix().ncols())
                    .map(|i| 1.0 + (i % 7) as f64 * 0.5)
                    .collect(),
            )
        })
        .collect();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(shape.keys * shape.reps_per_key);
    let started = Instant::now();
    for _rep in 0..shape.reps_per_key {
        for (mi, handle) in handles.iter().enumerate() {
            let t0 = Instant::now();
            tier.serve(SpmvRequest {
                tenant: "t0".into(),
                matrix: handle.clone(),
                algo: AlgoSpec::Rcm,
                kernel: KernelKind::OneD,
                x: Arc::clone(&xs[mi]),
                priority: 0,
                deadline: None,
            })
            .expect("bench serve");
            latencies_ns.push(t0.elapsed().as_nanos() as u64);
        }
    }
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    drop(tier);
    latencies_ns.sort_unstable();
    let n = latencies_ns.len();
    let p99_us = latencies_ns[((n as f64 * 0.99).ceil() as usize).clamp(1, n) - 1] as f64 / 1e3;
    let mean_us = latencies_ns.iter().sum::<u64>() as f64 / n as f64 / 1e3;
    let snap = registry.snapshot();
    if std::env::var_os("POLICY_SERVE_DEBUG").is_some() {
        eprintln!("--- {} / {} ---", shape.name, mode.as_str());
        for (name, v) in &snap.counters {
            eprintln!("  {name} = {v}");
        }
        for (name, h) in &snap.histograms {
            eprintln!("  {name}: count {} mean {:.1} us", h.count, h.mean / 1e3);
        }
    }
    let reorders = snap.histogram("reorder.rcm").map_or(0, |h| h.count);
    RunResult {
        total_ms,
        mean_us,
        p99_us,
        reorders,
    }
}

/// Criterion target: one warm adaptive decision — features cached,
/// both ledger sides sampled, so the cascade resolves on the
/// empirical-means rule like steady-state hot traffic does.
fn decide_overhead(c: &mut Criterion) {
    let a = corpus::scramble(&corpus::mesh2d(32, 32), 1);
    let hash = a.content_hash();
    let policy = PolicyEngine::new(PolicyConfig {
        registry: Some(telemetry::Registry::new_arc()),
        ..PolicyConfig::default()
    });
    policy.decide(&a, hash, AlgoSpec::Rcm, false);
    for _ in 0..3 {
        policy.observe_spmv(hash, AlgoSpec::Original, 10e-6);
        policy.observe_spmv(hash, AlgoSpec::Rcm, 7e-6);
    }
    c.bench_function("policy/decide_warm", |b| {
        b.iter(|| policy.decide(&a, hash, AlgoSpec::Rcm, true))
    });
}

fn write_bench_json() {
    let modes = [PolicyMode::Always, PolicyMode::Never, PolicyMode::Adaptive];
    let mut sections = Vec::new();
    let mut cold_win = false;
    let mut hot_close = false;
    for shape in SHAPES {
        let mut rows = Vec::new();
        let mut totals = [0.0f64; 3];
        let mut best: [Option<RunResult>; 3] = [None, None, None];
        // adaptive/always total ratio per trial: the two runs are
        // adjacent in time, so the ratio cancels background-load
        // drift that mode-vs-mode comparisons of absolute totals
        // would otherwise absorb.
        let mut paired_ratios = Vec::with_capacity(TRIALS);
        for _trial in 0..TRIALS {
            let mut trial_totals = [0.0f64; 3];
            for (i, &mode) in modes.iter().enumerate() {
                let r = run_shape(shape, mode);
                trial_totals[i] = r.total_ms;
                if best[i].as_ref().is_none_or(|b| r.total_ms < b.total_ms) {
                    best[i] = Some(r);
                }
            }
            paired_ratios.push(trial_totals[2] / trial_totals[0].max(1e-9));
        }
        paired_ratios.sort_by(f64::total_cmp);
        let median_ratio = paired_ratios[TRIALS / 2];
        println!(
            "{:>4} adaptive/always per-trial ratios: {} (median {median_ratio:.3})",
            shape.name,
            paired_ratios
                .iter()
                .map(|r| format!("{r:.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        for (i, &mode) in modes.iter().enumerate() {
            let r = best[i].as_ref().expect("at least one trial");
            totals[i] = r.total_ms;
            println!(
                "{:>4} / {:<8} total {:>8.1} ms  mean {:>7.1} us  p99 {:>8.1} us  {} reorder(s)",
                shape.name,
                mode.as_str(),
                r.total_ms,
                r.mean_us,
                r.p99_us,
                r.reorders
            );
            rows.push(format!(
                "        {{ \"mode\": \"{}\", \"total_ms\": {:.3}, \"mean_us\": {:.2}, \
                 \"p99_us\": {:.2}, \"reorders\": {} }}",
                mode.as_str(),
                r.total_ms,
                r.mean_us,
                r.p99_us,
                r.reorders
            ));
        }
        match shape.name {
            "cold" => cold_win = median_ratio < 1.0,
            _ => hot_close = median_ratio <= 1.05,
        }
        sections.push(format!(
            "    {{\n      \"shape\": \"{}\",\n      \"keys\": {},\n      \
             \"reps_per_key\": {},\n      \"adaptive_over_always_median\": {:.4},\n      \
             \"modes\": [\n{}\n      ]\n    }}",
            shape.name,
            shape.keys,
            shape.reps_per_key,
            median_ratio,
            rows.join(",\n")
        ));
    }
    println!(
        "acceptance: adaptive beats always on cold traffic: {cold_win}; \
         within 5% on hot traffic: {hot_close}"
    );
    let json = format!(
        "{{\n  \"bench\": \"policy_serve\",\n  \
         \"key_space\": \"cold scrambled mesh2d(96,96), hot rmat(14,8); algo rcm, closed-loop, best of {TRIALS}\",\n  \
         \"probe_after\": {},\n  \"host_threads\": {},\n  \
         \"adaptive_beats_always_cold\": {cold_win},\n  \
         \"adaptive_within_5pct_hot\": {hot_close},\n  \"shapes\": [\n{}\n  ]\n}}\n",
        PolicyConfig::default().probe_after,
        bench::host_threads(),
        sections.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("policy comparison written to BENCH_PR7.json"),
        Err(e) => eprintln!("could not write BENCH_PR7.json: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(50);
    targets = decide_overhead
}

fn main() {
    benches();
    // `--test` (ci.sh, `cargo test`) skips the replay sweep: paced
    // closed-loop runs on a loaded CI host would only record noise.
    if !std::env::args().any(|arg| arg == "--test") {
        write_bench_json();
    }
}
