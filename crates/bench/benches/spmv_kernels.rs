//! Real-kernel SpMV throughput per ordering — the host-scale analogue
//! of Figs. 2 and 3. For each fixture matrix and each ordering, all
//! three kernels run at the host's thread count on one persistent
//! [`ThreadTeam`]; Criterion reports throughput in elements (nonzeros)
//! per second.

use bench::{bench_matrices, host_threads};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reorder::all_algorithms;
use spmv::{KernelKind, ThreadTeam};
use std::hint::black_box;
use std::sync::Arc;

fn spmv_by_ordering(c: &mut Criterion) {
    let threads = host_threads();
    let team = ThreadTeam::new(threads);
    for (mat_name, a) in bench_matrices() {
        let mut group = c.benchmark_group(format!("spmv/{mat_name}"));
        group.throughput(Throughput::Elements(a.nnz() as u64));

        // Original + the six orderings.
        let mut variants = vec![("Original".to_string(), Arc::new(a.clone()))];
        for alg in all_algorithms(threads.max(8), 32) {
            let b = alg.compute(&a).expect("square").apply(&a).expect("apply");
            variants.push((alg.name().to_string(), Arc::new(b)));
        }

        for (ord_name, b) in &variants {
            let x: Vec<f64> = (0..b.ncols()).map(|i| (i % 31) as f64).collect();
            let mut y = vec![0.0; b.nrows()];
            for kind in KernelKind::all() {
                let kernel = kind.plan(b, threads);
                group.bench_with_input(
                    BenchmarkId::new(kind.name(), ord_name),
                    b,
                    |bench, _mat| {
                        bench.iter(|| {
                            kernel.execute(&team, black_box(&x), &mut y);
                            black_box(&y);
                        })
                    },
                );
            }
        }
        group.finish();
    }
}

/// Short measurement windows: the benches compare algorithms whose
/// runtimes differ by orders of magnitude, so tight confidence
/// intervals are unnecessary and a full `cargo bench` stays fast.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = spmv_by_ordering
}
criterion_main!(benches);
