//! Reordering wall-clock cost per algorithm — the Table 5 measurement.
//! The paper's ranking (Gray fastest, RCM second, ND/HP slowest) should
//! be visible directly in the Criterion report.

use bench::bench_matrices;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reorder::all_algorithms;
use std::hint::black_box;

fn reorder_cost(c: &mut Criterion) {
    for (mat_name, a) in bench_matrices() {
        let mut group = c.benchmark_group(format!("reorder/{mat_name}"));
        for alg in all_algorithms(64, 128) {
            group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &a, |b, m| {
                b.iter(|| black_box(alg.compute(black_box(m)).expect("square")))
            });
        }
        group.finish();
    }
}

/// Short measurement windows: the benches compare algorithms whose
/// runtimes differ by orders of magnitude, so tight confidence
/// intervals are unnecessary and a full `cargo bench` stays fast.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = reorder_cost
}
criterion_main!(benches);
