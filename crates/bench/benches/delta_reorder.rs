//! Incremental reordering: splice-after-delta vs. full recompute.
//!
//! A structural edge delta dirties only the components it touches. The
//! component-structured orderings (`compute_components_on`) let the
//! engine splice the cached sub-permutations of untouched components
//! around a recompute of the dirty ones (`splice_ordering_on`) — the
//! result is byte-identical to a full recompute (asserted here before
//! any timing), so the only question is how much wall-clock the splice
//! saves as a function of the dirty fraction.
//!
//! Two multi-component corpus families are swept ([`corpus::disjoint_meshes`]
//! and a [`corpus::disjoint_union`] of scrambled road networks) under
//! RCM and AMD at 1%, 10% and 50% dirty components. A normal run (no
//! `--test`) also measures the *serving-side* consequence through a
//! real engine — time-to-fresh-ordering for a delta descendant with a
//! warm parent cache (lineage splice) vs. a cold engine (full
//! recompute) — and records everything in `BENCH_PR8.json` at the
//! repository root.

use criterion::{criterion_group, BenchmarkId, Criterion};
use engine::{AlgoSpec, Engine, EngineConfig, MatrixHandle};
use reorder::{splice_ordering_on, Amd, ComponentOrdering, Rcm, ReorderAlgorithm, ReorderExec};
use sparsemat::{CsrMatrix, EdgeOp};
use std::hint::black_box;
use std::time::Instant;

/// Dirty fractions swept: the share of components touched by the delta.
const DIRTY_PERCENTS: [usize; 3] = [1, 10, 50];

/// Two families of multi-component matrices, both with enough
/// components that a 1% dirty fraction is still at least one component.
fn families() -> Vec<(&'static str, CsrMatrix)> {
    let meshes = corpus::disjoint_meshes(100, 14, 12, 8);
    let roads: Vec<CsrMatrix> = (0..100u64)
        .map(|r| corpus::scramble(&corpus::road(13, 12, r), 100 + r))
        .collect();
    vec![
        ("disjoint_meshes", meshes),
        ("disjoint_roads", corpus::disjoint_union(&roads)),
    ]
}

fn algorithms() -> Vec<(&'static str, Box<dyn ReorderAlgorithm>)> {
    vec![
        ("rcm", Box::new(Rcm::default())),
        ("amd", Box::new(Amd::default())),
    ]
}

/// A delta that dirties `percent`% of the cached components: one
/// symmetric off-diagonal removal inside each selected component.
/// Selection strides across the range table so the dirty components
/// are spread over the matrix.
fn delta_for_dirty_percent(
    a: &CsrMatrix,
    cached: &ComponentOrdering,
    percent: usize,
) -> Vec<EdgeOp> {
    // Components with at least one off-diagonal edge to remove
    // (isolated vertices in e.g. road networks form edgeless
    // singleton components).
    let eligible: Vec<(usize, usize)> = cached
        .ranges
        .iter()
        .filter_map(|range| {
            let members = &cached.order[range.start..range.start + range.len];
            members.iter().find_map(|&v| {
                let (cols, _) = a.row(v as usize);
                cols.iter()
                    .find(|&&c| c != v)
                    .map(|&c| (v as usize, c as usize))
            })
        })
        .collect();
    let ncomp = cached.ranges.len();
    let want = (ncomp * percent).div_ceil(100).max(1).min(eligible.len());
    let stride = eligible.len() / want;
    let mut ops = Vec::with_capacity(2 * want);
    for t in 0..want {
        let (i, j) = eligible[t * stride];
        ops.push(EdgeOp::Remove { row: i, col: j });
        ops.push(EdgeOp::Remove { row: j, col: i });
    }
    ops
}

/// One measurement subject: the mutated matrix, its delta's touched
/// rows, and the parent's cached ordering to splice around.
struct Subject {
    child: CsrMatrix,
    touched: Vec<u32>,
    cached: ComponentOrdering,
}

fn subject(a: &CsrMatrix, algo: &dyn ReorderAlgorithm, percent: usize) -> Subject {
    let rx = ReorderExec::sequential();
    let cached = algo
        .compute_components_on(a, &rx)
        .expect("parent ordering")
        .expect("component-capable algorithm");
    let ops = delta_for_dirty_percent(a, &cached, percent);
    let mut child = a.clone();
    let report = child.apply_delta(&ops).expect("delta applies");
    Subject {
        child,
        touched: report.touched_rows,
        cached,
    }
}

fn run_full(s: &Subject, algo: &dyn ReorderAlgorithm) -> ComponentOrdering {
    algo.compute_components_on(&s.child, &ReorderExec::sequential())
        .expect("full recompute")
        .expect("component-capable algorithm")
}

fn run_splice(s: &Subject, algo: &dyn ReorderAlgorithm) -> ComponentOrdering {
    let (co, _) = splice_ordering_on(
        algo,
        &s.child,
        &s.cached.order,
        &s.cached.ranges,
        &s.touched,
        &ReorderExec::sequential(),
    )
    .expect("splice")
    .expect("splice accepted");
    co
}

fn delta_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_reorder");
    for (fname, a) in families() {
        for (aname, algo) in algorithms() {
            let s = subject(&a, algo.as_ref(), 10);
            assert_eq!(
                run_full(&s, algo.as_ref()).order,
                run_splice(&s, algo.as_ref()).order,
                "splice diverged from full recompute ({fname}/{aname})"
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{fname}/{aname}"), "full"),
                &s,
                |b, s| b.iter(|| black_box(run_full(s, algo.as_ref()))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{fname}/{aname}"), "splice_10pct"),
                &s,
                |b, s| b.iter(|| black_box(run_splice(s, algo.as_ref()))),
            );
        }
    }
    group.finish();
}

/// Median-of-`reps` wall time of one call, seconds.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
    times[times.len() / 2]
}

/// Serving-side freshness: milliseconds from submitting a delta
/// descendant until its ordering is served, with a warm parent cache
/// (lineage splice) vs. a cold engine (full recompute).
fn engine_freshness_ms(a: &CsrMatrix, child: &CsrMatrix, algo: AlgoSpec) -> (f64, f64) {
    // Private registries: the default is process-global, which would
    // make `delta_splices` cumulative across the engines built here.
    let cfg = || EngineConfig {
        workers: 1,
        reorder_threads: 1,
        registry: Some(std::sync::Arc::new(telemetry::Registry::new())),
        ..EngineConfig::default()
    };
    let parent = MatrixHandle::from_matrix(a.clone());
    let child_handle = MatrixHandle::from_matrix(child.clone());

    let warm = Engine::new(cfg());
    warm.get(&parent, algo).expect("parent ordering");
    let t0 = Instant::now();
    warm.get(&child_handle, algo).expect("spliced ordering");
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(warm.stats().delta_splices, 1, "warm path did not splice");

    let cold = Engine::new(cfg());
    let t0 = Instant::now();
    cold.get(&child_handle, algo).expect("full ordering");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    (warm_ms, cold_ms)
}

/// Record the full-vs-splice sweep and the engine freshness numbers in
/// `BENCH_PR8.json`.
fn write_bench_json() {
    let reps = 5;
    let mut rows = Vec::new();
    let mut freshness = Vec::new();
    for (fname, a) in families() {
        for (aname, algo) in algorithms() {
            for percent in DIRTY_PERCENTS {
                let s = subject(&a, algo.as_ref(), percent);
                let full = run_full(&s, algo.as_ref());
                let spliced = run_splice(&s, algo.as_ref());
                assert_eq!(
                    full.order, spliced.order,
                    "splice diverged ({fname}/{aname} at {percent}%)"
                );
                let full_ms = time_median(reps, || {
                    black_box(run_full(&s, algo.as_ref()));
                }) * 1e3;
                let splice_ms = time_median(reps, || {
                    black_box(run_splice(&s, algo.as_ref()));
                }) * 1e3;
                let dirty_rows = s.touched.len();
                rows.push(format!(
                    "    {{ \"family\": \"{fname}\", \"algo\": \"{aname}\", \
                     \"dirty_components_pct\": {percent}, \"dirty_rows\": {dirty_rows}, \
                     \"components\": {}, \"full_ms\": {full_ms:.3}, \
                     \"splice_ms\": {splice_ms:.3}, \"speedup\": {:.2} }}",
                    s.cached.ranges.len(),
                    full_ms / splice_ms
                ));
            }
            // Freshness through a real engine at the 10% point.
            let s = subject(&a, algo.as_ref(), 10);
            let spec = if aname == "amd" {
                AlgoSpec::Amd
            } else {
                AlgoSpec::Rcm
            };
            let (warm_ms, cold_ms) = engine_freshness_ms(&a, &s.child, spec);
            freshness.push(format!(
                "    {{ \"family\": \"{fname}\", \"algo\": \"{aname}\", \
                 \"dirty_components_pct\": 10, \"time_to_fresh_warm_ms\": {warm_ms:.3}, \
                 \"time_to_fresh_cold_ms\": {cold_ms:.3}, \"speedup\": {:.2} }}",
                cold_ms / warm_ms
            ));
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"delta_reorder\",\n  \"reps\": {reps},\n  \
         \"note\": \"median of reps; splice re-derives only components touched by the \
         delta and copies the rest of the cached ordering verbatim (byte-identity \
         asserted before timing); freshness is the engine-side time from submitting a \
         delta descendant to a served ordering, warm = lineage splice, cold = full \
         recompute\",\n  \"sweep\": [\n{}\n  ],\n  \"engine_freshness\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        freshness.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("delta reorder sweep recorded to BENCH_PR8.json"),
        Err(e) => eprintln!("could not write BENCH_PR8.json: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = delta_reorder
}

fn main() {
    benches();
    // Smoke runs (`--test`, as used by ci.sh) skip the JSON record:
    // single-iteration timings would only add noise.
    if !std::env::args().any(|arg| arg == "--test") {
        write_bench_json();
    }
}
