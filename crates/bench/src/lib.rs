//! Shared fixtures for the Criterion benchmarks.
//!
//! The benchmarks complement the `experiments` binaries: the binaries
//! regenerate the paper's tables/figures through the machine model,
//! while these benches measure the *real* kernels and algorithms on the
//! host — SpMV throughput per ordering (the Fig. 2/3 mechanism at host
//! scale), reordering wall-clock (Table 5's ranking) and the ablation
//! knobs called out in DESIGN.md.

use sparsemat::CsrMatrix;

/// A compact fixture set: one matrix per structural regime, sized for
/// benchmarking (a few hundred thousand nonzeros).
pub fn bench_matrices() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        (
            "mesh2d_scrambled",
            corpus::scramble(&corpus::mesh2d(110, 110), 1),
        ),
        ("rmat_powerlaw", corpus::rmat(12, 8, 2)),
        (
            "band_scrambled",
            corpus::scramble(&corpus::banded(10_000, 4), 3),
        ),
    ]
}

/// Threads to use for real-kernel benches on this host — the same
/// lookup [`spmv::MeasureConfig::default`] uses, re-exported so the
/// benches and the measurement protocol can never disagree.
pub use spmv::host_threads;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let ms = bench_matrices();
        assert_eq!(ms.len(), 3);
        for (name, a) in &ms {
            assert!(a.nnz() > 20_000, "{name} too small for benching");
        }
        assert!(host_threads() >= 1);
    }
}
