//! End-to-end tests for the ops HTTP server: real sockets, real
//! routes, a scripted `OpsSource` standing in for the serving tier.

use obsv::{ObsvConfig, ObsvServer, OpsSource, SloConfig, SloSpec, SloTracker};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use telemetry::Registry;

/// Minimal HTTP GET: returns `(status, body)`.
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Scripted tier stand-in.
struct FakeTier {
    ready: AtomicBool,
}

impl OpsSource for FakeTier {
    fn ready(&self) -> Result<(), String> {
        if self.ready.load(Ordering::Relaxed) {
            Ok(())
        } else {
            Err("shards warming".to_string())
        }
    }

    fn health_detail(&self) -> String {
        "\"shards\":2".to_string()
    }

    fn trace_index(&self) -> Vec<(u64, u64)> {
        vec![(7, 700), (9, 900)]
    }

    fn request_trace_json(&self, request_id: u64) -> Option<String> {
        (request_id == 7 || request_id == 9)
            .then(|| format!("{{\"traceEvents\":[],\"request\":{request_id}}}"))
    }
}

fn server_with(registry: Arc<Registry>, source: Option<Arc<dyn OpsSource>>) -> ObsvServer {
    let mut config = ObsvConfig::new("127.0.0.1:0", registry);
    config.source = source;
    ObsvServer::start(config).expect("start ops server")
}

#[test]
fn metrics_and_stats_serve_the_registry() {
    let registry = Registry::new_arc();
    registry.describe("obsvtest.hits", "Hits recorded by the server test.");
    registry.counter("obsvtest.hits").add(41);
    registry
        .histogram("obsvtest.latency")
        .record_duration(Duration::from_millis(3));
    let server = server_with(Arc::clone(&registry), None);
    let addr = server.local_addr();

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("obsvtest_hits 41"), "{body}");
    assert!(
        body.contains("# HELP obsvtest_hits Hits recorded by the server test."),
        "{body}"
    );
    assert!(body.contains("obsvtest_latency_count"), "{body}");

    let (status, body) = get(addr, "/stats.json");
    assert_eq!(status, 200);
    let parsed: serde_json::Value = serde_json::from_str(&body).expect("stats.json parses");
    let hits = parsed
        .get("counters")
        .and_then(|c| c.get("obsvtest.hits"))
        .and_then(|v| v.as_u64());
    assert_eq!(hits, Some(41));
}

#[test]
fn health_and_readiness_follow_the_source() {
    let tier = Arc::new(FakeTier {
        ready: AtomicBool::new(false),
    });
    let server = server_with(
        Registry::new_arc(),
        Some(tier.clone() as Arc<dyn OpsSource>),
    );
    let addr = server.local_addr();

    // Liveness is unconditional; readiness follows the tier.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"shards\":2"), "{body}");

    let (status, body) = get(addr, "/readyz");
    assert_eq!(status, 503);
    assert!(body.contains("shards warming"), "{body}");

    tier.ready.store(true, Ordering::Relaxed);
    let (status, body) = get(addr, "/readyz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ready\":true"), "{body}");
}

#[test]
fn readyz_defaults_to_ready_without_a_source() {
    let server = server_with(Registry::new_arc(), None);
    let (status, _) = get(server.local_addr(), "/readyz");
    assert_eq!(status, 200);
}

#[test]
fn traces_index_and_lookup() {
    let tier = Arc::new(FakeTier {
        ready: AtomicBool::new(true),
    });
    let server = server_with(Registry::new_arc(), Some(tier as Arc<dyn OpsSource>));
    let addr = server.local_addr();

    let (status, body) = get(addr, "/traces");
    assert_eq!(status, 200);
    let parsed: serde_json::Value = serde_json::from_str(&body).expect("trace index parses");
    let traces = parsed.get("traces").expect("traces array");
    let entry = |i: usize, key: &str| {
        traces
            .get_index(i)
            .and_then(|e| e.get(key))
            .and_then(|v| v.as_u64())
    };
    assert_eq!(entry(0, "request_id"), Some(7));
    assert_eq!(entry(1, "trace_id"), Some(900));

    let (status, body) = get(addr, "/traces/7");
    assert_eq!(status, 200);
    assert!(body.contains("\"request\":7"), "{body}");

    // `latest` resolves to the newest index entry.
    let (status, body) = get(addr, "/traces/latest");
    assert_eq!(status, 200);
    assert!(body.contains("\"request\":9"), "{body}");

    let (status, _) = get(addr, "/traces/12345");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/traces/not-a-number");
    assert_eq!(status, 404);
}

#[test]
fn slo_json_serves_the_tracker() {
    let registry = Registry::new_arc();
    let tracker = SloTracker::new(
        Arc::clone(&registry),
        SloConfig {
            specs: vec![SloSpec::new("tenant-a", 50.0, 0.99)],
            ..SloConfig::default()
        },
    );
    registry
        .histogram_labeled("tier.request", &[("tenant", "tenant-a")])
        .record_duration(Duration::from_millis(1));
    tracker.tick();

    let mut config = ObsvConfig::new("127.0.0.1:0", Arc::clone(&registry));
    config.slo = Some(Arc::clone(&tracker));
    let server = ObsvServer::start(config).unwrap();
    let addr = server.local_addr();

    let (status, body) = get(addr, "/slo.json");
    assert_eq!(status, 200);
    let parsed: serde_json::Value = serde_json::from_str(&body).expect("slo.json parses");
    let tenant = parsed
        .get("tenants")
        .and_then(|t| t.get_index(0))
        .expect("one tenant row");
    assert_eq!(
        tenant.get("tenant").and_then(|v| v.as_str()),
        Some("tenant-a")
    );
    assert_eq!(tenant.get("total").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        tenant.get("budget_remaining").and_then(|v| v.as_f64()),
        Some(1.0)
    );

    // The derived gauges surface on /metrics too.
    let (_, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("slo_budget_remaining"), "{metrics}");
    assert!(metrics.contains("slo_burn_rate"), "{metrics}");
}

#[test]
fn slo_route_404s_when_unconfigured() {
    let server = server_with(Registry::new_arc(), None);
    let (status, _) = get(server.local_addr(), "/slo.json");
    assert_eq!(status, 404);
}

#[test]
fn profile_route_samples_and_stays_concurrent() {
    let server = server_with(Registry::new_arc(), None);
    let addr = server.local_addr();

    // Hold a live stage on a worker so the profile has something to
    // fold; the session inside profile_for enables publishing, so open
    // the guard while a profile is known to be running.
    let profiler = std::thread::spawn(move || get(addr, "/profile?seconds=0.4&hz=200"));
    std::thread::sleep(Duration::from_millis(50));
    let _session = telemetry::StageSession::start();
    let _stage = telemetry::stage("obsvtest.profiled");

    // While the profile runs, other routes answer on their own
    // threads.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);

    let (status, body) = profiler.join().unwrap();
    assert_eq!(status, 200);
    assert!(body.starts_with("# samples"), "{body}");
    assert!(body.contains("obsvtest.profiled"), "{body}");
}

#[test]
fn unknown_routes_and_bad_methods_are_rejected() {
    let server = server_with(Registry::new_arc(), None);
    let addr = server.local_addr();
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
}

#[test]
fn drop_shuts_the_listener_down() {
    let server = server_with(Registry::new_arc(), None);
    let addr = server.local_addr();
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    drop(server);
    // The port must stop answering (connect may still succeed briefly
    // on some stacks, but a request must not).
    let answered = TcpStream::connect(addr).is_ok_and(|mut s| {
        let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
        write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").is_ok() && {
            let mut buf = [0u8; 16];
            matches!(s.read(&mut buf), Ok(n) if n > 0)
        }
    });
    assert!(!answered, "server still answering after drop");
}
