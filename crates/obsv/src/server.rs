//! The embedded ops HTTP server: a std-only `TcpListener` accept loop
//! serving the route table in the crate docs.
//!
//! Design constraints, in order:
//!
//! - **No dependencies.** The workspace is offline; the server is
//!   hand-rolled HTTP/1.1 over `std::net` (see [`crate::http`]).
//! - **Never wedge the serving path.** Scrapes read registry
//!   snapshots — the same lock-free reads the stdout reporter does —
//!   and each connection is handled on its own short-lived thread
//!   under a socket timeout, with a hard cap on concurrent handlers
//!   (excess connections get an immediate 503 rather than a queue).
//! - **Graceful shutdown.** Dropping [`ObsvServer`] flips a flag,
//!   nudges the blocked `accept` with a self-connection, and joins the
//!   accept thread, so tests and `serve` runs exit cleanly.
//!
//! Tier-specific facts (readiness, trace lookup) come through
//! [`OpsSource`] so this crate depends only on `telemetry`; `servetier`
//! implements it for `ServeTier`.

use crate::http::{read_request, respond, HttpError, Request};
use crate::profile::profile_for;
use crate::slo::SloTracker;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::Registry;

/// What the ops server asks the serving tier. Every method has a
/// conservative default so a bare registry can be served without a
/// tier (e.g. batch sweeps that want `/metrics` only).
pub trait OpsSource: Send + Sync {
    /// `Ok` when the process should receive traffic; `Err(reason)`
    /// renders as a 503 on `/readyz`.
    fn ready(&self) -> Result<(), String> {
        Ok(())
    }

    /// Extra JSON object (without braces) merged into `/healthz`,
    /// e.g. `"shards":4,"queued":12`. Empty = nothing extra.
    fn health_detail(&self) -> String {
        String::new()
    }

    /// `(request id, trace id)` pairs of recently traced requests,
    /// oldest first.
    fn trace_index(&self) -> Vec<(u64, u64)> {
        Vec::new()
    }

    /// Chrome-trace JSON for one traced request, by request id.
    /// (Named to avoid colliding with inherent methods on the
    /// implementing type.)
    fn request_trace_json(&self, _request_id: u64) -> Option<String> {
        None
    }
}

/// Construction parameters for [`ObsvServer::start`].
pub struct ObsvConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral; read the
    /// bound port back via [`ObsvServer::local_addr`]).
    pub addr: String,
    /// Registry served on `/metrics` and `/stats.json`.
    pub registry: Arc<Registry>,
    /// Tier hook for `/readyz`, `/healthz` detail and `/traces`.
    pub source: Option<Arc<dyn OpsSource>>,
    /// SLO tracker served on `/slo.json`.
    pub slo: Option<Arc<SloTracker>>,
    /// Concurrent handler cap; further connections get 503.
    pub max_connections: usize,
    /// Upper bound on `/profile?seconds=N`.
    pub profile_max_seconds: f64,
}

impl ObsvConfig {
    pub fn new(addr: impl Into<String>, registry: Arc<Registry>) -> ObsvConfig {
        ObsvConfig {
            addr: addr.into(),
            registry,
            source: None,
            slo: None,
            max_connections: 8,
            profile_max_seconds: 30.0,
        }
    }
}

/// Shared state for handler threads.
struct Shared {
    registry: Arc<Registry>,
    source: Option<Arc<dyn OpsSource>>,
    slo: Option<Arc<SloTracker>>,
    profile_max_seconds: f64,
    started: Instant,
    active: AtomicUsize,
    shutting_down: AtomicBool,
}

/// A running ops server; shuts down when dropped.
pub struct ObsvServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl ObsvServer {
    /// Bind `config.addr` and start serving.
    pub fn start(config: ObsvConfig) -> io::Result<ObsvServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: config.registry,
            source: config.source,
            slo: config.slo,
            profile_max_seconds: config.profile_max_seconds,
            started: Instant::now(),
            active: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
        });
        let max_connections = config.max_connections.max(1);
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("obsv-http".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.shutting_down.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    if accept_shared.active.load(Ordering::Relaxed) >= max_connections {
                        respond(
                            &mut stream,
                            503,
                            "text/plain",
                            "too many concurrent ops connections\n",
                        );
                        continue;
                    }
                    accept_shared.active.fetch_add(1, Ordering::Relaxed);
                    let handler_shared = Arc::clone(&accept_shared);
                    let spawned = std::thread::Builder::new()
                        .name("obsv-handler".to_string())
                        .spawn(move || {
                            handle_connection(&handler_shared, &mut stream);
                            handler_shared.active.fetch_sub(1, Ordering::Relaxed);
                        });
                    if spawned.is_err() {
                        accept_shared.active.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            })?;
        Ok(ObsvServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsvServer {
    fn drop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Relaxed);
        // Unblock the accept loop; it checks the flag before handling.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    match read_request(stream) {
        Ok(request) => route(shared, stream, &request),
        Err(HttpError::BadRequest(reason)) => {
            respond(stream, 400, "text/plain", &format!("{reason}\n"));
        }
        Err(HttpError::MethodNotAllowed) => {
            respond(stream, 405, "text/plain", "only GET is supported\n");
        }
        Err(HttpError::Io) => {}
    }
}

fn route(shared: &Shared, stream: &mut TcpStream, request: &Request) {
    match request.path.as_str() {
        "/" => {
            let body = "obsv ops plane\n\
                 /metrics /stats.json /healthz /readyz /slo.json\n\
                 /traces /traces/latest /traces/<request-id>\n\
                 /profile?seconds=N&hz=H\n";
            respond(stream, 200, "text/plain", body);
        }
        "/metrics" => {
            let body = shared.registry.snapshot().to_prometheus();
            respond(stream, 200, "text/plain; version=0.0.4", &body);
        }
        "/stats.json" => {
            let body = shared.registry.snapshot().to_json();
            respond(stream, 200, "application/json", &body);
        }
        "/healthz" => {
            let detail = shared
                .source
                .as_ref()
                .map(|s| s.health_detail())
                .filter(|d| !d.is_empty())
                .map(|d| format!(",{d}"))
                .unwrap_or_default();
            let body = format!(
                "{{\"status\":\"ok\",\"uptime_ms\":{}{detail}}}",
                shared.started.elapsed().as_millis()
            );
            respond(stream, 200, "application/json", &body);
        }
        "/readyz" => match shared.source.as_ref().map_or(Ok(()), |s| s.ready()) {
            Ok(()) => respond(stream, 200, "application/json", "{\"ready\":true}"),
            Err(reason) => {
                let body = format!(
                    "{{\"ready\":false,\"reason\":\"{}\"}}",
                    crate::json_escape(&reason)
                );
                respond(stream, 503, "application/json", &body);
            }
        },
        "/slo.json" => match &shared.slo {
            Some(tracker) => respond(stream, 200, "application/json", &tracker.to_json()),
            None => respond(stream, 404, "text/plain", "no SLO tracker configured\n"),
        },
        "/traces" => {
            let index = shared
                .source
                .as_ref()
                .map(|s| s.trace_index())
                .unwrap_or_default();
            let mut body = String::from("{\"traces\":[");
            for (i, (request_id, trace_id)) in index.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!(
                    "{{\"request_id\":{request_id},\"trace_id\":{trace_id}}}"
                ));
            }
            body.push_str("]}");
            respond(stream, 200, "application/json", &body);
        }
        path if path.starts_with("/traces/") => {
            let tail = &path["/traces/".len()..];
            let request_id = if tail == "latest" {
                shared
                    .source
                    .as_ref()
                    .and_then(|s| s.trace_index().last().map(|&(rid, _)| rid))
            } else {
                tail.parse::<u64>().ok()
            };
            let trace = request_id.and_then(|rid| {
                shared
                    .source
                    .as_ref()
                    .and_then(|s| s.request_trace_json(rid))
            });
            match trace {
                Some(json) => respond(stream, 200, "application/json", &json),
                None => respond(stream, 404, "text/plain", "no such trace\n"),
            }
        }
        "/profile" => {
            let seconds = request
                .param("seconds")
                .and_then(|s| s.parse::<f64>().ok())
                .unwrap_or(1.0)
                .clamp(0.05, shared.profile_max_seconds.max(0.05));
            let hz = request
                .param("hz")
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(100);
            // Runs inline on this handler thread: other routes stay
            // responsive on their own threads while we sample.
            let report = profile_for(Duration::from_secs_f64(seconds), hz);
            respond(stream, 200, "text/plain", &report.to_text());
        }
        _ => respond(stream, 404, "text/plain", "unknown ops route\n"),
    }
}
