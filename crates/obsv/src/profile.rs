//! The continuous logical-stage profiler: sample the stage board for a
//! while, fold what was seen into collapsed-stack flamegraph lines.
//!
//! Where a CPU profiler samples instruction pointers, this samples
//! **logical stages** — the span labels the workspace already opens
//! (`engine.submit`, `reorder.permute`, `serve.spmv`, ...). A sample
//! of the whole process at 100 Hz for a few seconds answers "where is
//! wall-clock time going across all threads right now", attributed to
//! stages an operator can act on rather than inlined symbols.
//!
//! [`profile_for`] holds a [`StageSession`] for the duration, so the
//! board (and every `Span`'s implicit [`telemetry::stage`] guard) is
//! live exactly while a profile wants it; overlapping profiles
//! compose via the session refcount. Output is the de-facto
//! collapsed-stack format — `thread;outer;inner count` per line —
//! accepted verbatim by `flamegraph.pl`, speedscope, and friends.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use telemetry::{sample_stages, StageSession};

/// Folded result of one profiling run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Number of board samples taken (≥ 1).
    pub samples: u64,
    /// Wall-clock time actually spent sampling.
    pub duration: Duration,
    /// `"thread;stage;substage"` → times observed.
    pub folded: BTreeMap<String, u64>,
}

impl ProfileReport {
    /// Collapsed-stack text: one `stack count` line per distinct
    /// stack, sorted (BTreeMap order) for deterministic output.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.folded {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// The `/profile` response: metadata header lines (`# key value`)
    /// followed by the collapsed stacks.
    pub fn to_text(&self) -> String {
        format!(
            "# samples {}\n# duration_ms {}\n# distinct_stacks {}\n{}",
            self.samples,
            self.duration.as_millis(),
            self.folded.len(),
            self.collapsed()
        )
    }
}

/// Profile the process for `duration`, sampling every registered
/// thread's stage stack at `hz` (clamped to 1..=1000). Blocks the
/// calling thread for `duration`; idle threads (empty stacks) fold
/// nothing, so a quiet process yields an empty report.
pub fn profile_for(duration: Duration, hz: u32) -> ProfileReport {
    let _session = StageSession::start();
    let interval = Duration::from_secs_f64(1.0 / f64::from(hz.clamp(1, 1000)));
    let start = Instant::now();
    let mut folded = BTreeMap::new();
    let mut samples = 0u64;
    loop {
        for (thread, stack) in sample_stages() {
            let mut key = thread;
            for stage in stack {
                key.push(';');
                key.push_str(stage);
            }
            *folded.entry(key).or_insert(0) += 1;
        }
        samples += 1;
        if start.elapsed() >= duration {
            break;
        }
        std::thread::sleep(interval.min(duration.saturating_sub(start.elapsed())));
    }
    ProfileReport {
        samples,
        duration: start.elapsed(),
        folded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// A busy thread holding a nested stage stack must fold into one
    /// `thread;outer;inner` line.
    #[test]
    fn profiles_a_busy_thread_into_nested_stacks() {
        // Hold a session across the worker's whole life so its guards
        // publish regardless of when profile_for's own session starts.
        let _session = StageSession::start();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_worker = Arc::clone(&stop);
        let ready = Arc::new(AtomicBool::new(false));
        let ready_worker = Arc::clone(&ready);
        let worker = std::thread::Builder::new()
            .name("proftest-worker".to_string())
            .spawn(move || {
                let _outer = telemetry::stage("proftest.outer");
                let _inner = telemetry::stage("proftest.inner");
                ready_worker.store(true, Ordering::Relaxed);
                while !stop_worker.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
            .unwrap();
        while !ready.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = profile_for(Duration::from_millis(100), 100);
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        assert!(report.samples >= 2, "sampled {} times", report.samples);
        let key = "proftest-worker;proftest.outer;proftest.inner";
        let count = *report
            .folded
            .get(key)
            .unwrap_or_else(|| panic!("stack not folded: {:?}", report.folded));
        assert!(count >= 1);
        assert!(report.collapsed().contains(&format!("{key} {count}")));
        assert!(report.to_text().starts_with("# samples"));
    }

    #[test]
    fn quiet_process_yields_empty_but_valid_report() {
        let report = profile_for(Duration::from_millis(20), 200);
        assert!(report.samples >= 2);
        assert!(report.duration >= Duration::from_millis(20));
        // No stages of ours are open; our own folded lines are absent.
        assert!(!report.collapsed().contains("proftest.absent"));
        assert!(report.to_text().contains("# distinct_stacks"));
    }

    #[test]
    fn hz_is_clamped_and_duration_respected() {
        let start = Instant::now();
        let report = profile_for(Duration::from_millis(30), 0); // clamped to 1 Hz
        assert!(start.elapsed() >= Duration::from_millis(30));
        // 1 Hz over 30 ms: the loop still samples at least once at
        // start and once at the end check.
        assert!(report.samples >= 1);
    }
}
