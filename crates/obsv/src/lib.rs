//! # obsv — the live ops plane
//!
//! Everything the rest of the workspace *measures* (the `telemetry`
//! registry, the flight recorder, the stage board), this crate makes
//! *operable on a live process*: an embedded, dependency-free HTTP
//! server, per-tenant SLO / error-budget accounting, and a continuous
//! logical-stage profiler. The paper's discipline — conclusions about
//! reordering hinge on careful measurement — applied at serving time,
//! scrapeable while the tier is under load instead of post-mortem via
//! file dumps.
//!
//! Three subsystems:
//!
//! 1. **[`ObsvServer`]** — a std-only HTTP server (`TcpListener`, a
//!    bounded accept loop, graceful shutdown on drop) exposing:
//!
//!    | route | body |
//!    |---|---|
//!    | `GET /metrics` | Prometheus text exposition of the registry |
//!    | `GET /stats.json` | JSON registry snapshot |
//!    | `GET /healthz` | process liveness + uptime + source detail |
//!    | `GET /readyz` | 200/503 from the tier's readiness state |
//!    | `GET /slo.json` | per-tenant error budgets and burn rates |
//!    | `GET /traces` | index of sampled request traces |
//!    | `GET /traces/<id>` | one request's Chrome-trace JSON |
//!    | `GET /profile?seconds=N` | collapsed-stack flamegraph sample |
//!
//!    Tier-specific answers (readiness, trace lookup) come through the
//!    [`OpsSource`] trait so this crate depends only on `telemetry`;
//!    `servetier` implements the trait for `ServeTier`.
//!
//! 2. **[`SloTracker`]** — rolling error budgets. Each [`SloSpec`]
//!    declares a per-tenant latency threshold and an objective (the
//!    fraction of requests that must be served under it); the tracker
//!    reads the existing `tier.request{tenant}` histograms and
//!    `tier.shed_tenant{tenant}` counters on every [`SloTracker::tick`]
//!    and publishes `slo.budget_remaining{tenant}` (basis points) and
//!    `slo.burn_rate{tenant,window}` (milli-burns) gauges — so budgets
//!    show up in `/metrics`, `/slo.json` *and* the periodic stdout
//!    [`telemetry::Reporter`] with no extra wiring.
//!
//! 3. **[`profile_for`]** — the continuous profiler: enables the
//!    stage board ([`telemetry::StageSession`], ref-counted so
//!    overlapping profiles compose), samples every registered thread's
//!    stage stack at ~100 Hz, and folds the samples into
//!    collapsed-stack lines (`thread;stage;substage count`) that any
//!    flamegraph renderer accepts. When no profile is running the
//!    stage board costs one relaxed atomic load per span — the same
//!    "cheap when idle" bound as the tracing gates, pinned under 2% of
//!    an SpMV iteration in `crates/spmv`.

mod http;
mod profile;
mod server;
mod slo;

pub use profile::{profile_for, ProfileReport};
pub use server::{ObsvConfig, ObsvServer, OpsSource};
pub use slo::{SloConfig, SloSpec, SloTicker, SloTracker, TenantSlo};

/// Escape a string for embedding in a JSON string literal (the crate's
/// responses are hand-built JSON, like `telemetry`'s exporters).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
