//! Per-tenant SLOs: rolling error budgets and multi-window burn
//! rates, computed from metrics the serving tier already records.
//!
//! An [`SloSpec`] declares, per tenant, a latency threshold and an
//! objective — "99% of requests answer under 50 ms". A request is
//! **good** when it was served under the threshold; it is **bad** when
//! it was shed (any reason) or served slow. The tracker reads the
//! tier's cumulative per-tenant series on every [`SloTracker::tick`]:
//!
//! - `tier.request{tenant}` — the end-to-end latency histogram; its
//!   exact `count` is total served, and
//!   [`telemetry::Histogram::count_below`] gives the bucket-accurate
//!   good count;
//! - `tier.shed_tenant{tenant}` — the tier's per-tenant shed counter.
//!
//! Ticks append cumulative `(total, bad)` readings to a bounded ring,
//! so window arithmetic is pure subtraction and a **tick is the unit
//! of time** — production drives it from a wall-clock thread
//! ([`SloTracker::start`]); tests call [`SloTracker::tick`] directly
//! and get deterministic burn rates with no sleeping.
//!
//! Two derived series publish back into the registry (and therefore
//! into `/metrics`, `/slo.json` and the periodic stdout reporter):
//!
//! - `slo.budget_remaining{tenant}` — the fraction of the error
//!   budget (1 − objective) still unspent over the process lifetime,
//!   in **basis points** (10000 = untouched, 0 = exhausted);
//! - `slo.burn_rate{tenant,window}` — bad-fraction ÷ budget over the
//!   trailing window, in **milli-burns** (1000 = burning exactly at
//!   budget; sustained >1000 exhausts the budget early).

use crate::json_escape;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use telemetry::{series_name, Gauge, Registry};

/// One tenant's objective: serve `objective` of requests under
/// `latency_ms`, counting sheds against the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Tenant name, matching the tier's metric labels.
    pub tenant: String,
    /// Latency threshold in milliseconds.
    pub latency_ms: f64,
    /// Required good fraction in `(0, 1)`, e.g. `0.99`. The error
    /// budget is `1 - objective`.
    pub objective: f64,
}

impl SloSpec {
    pub fn new(tenant: impl Into<String>, latency_ms: f64, objective: f64) -> Self {
        SloSpec {
            tenant: tenant.into(),
            latency_ms,
            objective,
        }
    }

    fn latency_ns(&self) -> u64 {
        (self.latency_ms.max(0.0) * 1e6) as u64
    }

    /// The error budget `1 - objective`, floored so a 100% objective
    /// (which no finite traffic can hold) stays computable.
    fn budget(&self) -> f64 {
        (1.0 - self.objective).max(1e-9)
    }
}

/// Tracker construction parameters.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// One spec per tracked tenant.
    pub specs: Vec<SloSpec>,
    /// Burn-rate windows, in **ticks** (the multi-window alerting
    /// pattern: a short window catches fast burns, a long one slow
    /// ones).
    pub windows: Vec<usize>,
    /// Base name of the per-tenant latency histograms.
    pub latency_series: String,
    /// Base name of the per-tenant shed counters.
    pub shed_series: String,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            specs: Vec::new(),
            windows: vec![5, 30, 150],
            latency_series: "tier.request".to_string(),
            shed_series: "tier.shed_tenant".to_string(),
        }
    }
}

/// A cumulative reading at one tick.
#[derive(Debug, Clone, Copy, Default)]
struct Reading {
    total: u64,
    bad: u64,
}

struct TenantState {
    spec: SloSpec,
    latency_key: String,
    shed_key: String,
    budget_gauge: Arc<Gauge>,
    /// One gauge per window, `windows`-ordered.
    burn_gauges: Vec<Arc<Gauge>>,
    readings: Mutex<VecDeque<Reading>>,
}

/// Point-in-time SLO status for one tenant (the `/slo.json` row).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlo {
    pub tenant: String,
    pub latency_ms: f64,
    pub objective: f64,
    /// Cumulative requests (served + shed) at the last tick.
    pub total: u64,
    /// Cumulative bad requests (shed or served slow) at the last tick.
    pub bad: u64,
    /// Lifetime budget remaining in `[0, 1]`.
    pub budget_remaining: f64,
    /// `(window ticks, burn rate)` per configured window.
    pub burn_rates: Vec<(usize, f64)>,
}

/// The error-budget tracker (see module docs).
pub struct SloTracker {
    registry: Arc<Registry>,
    windows: Vec<usize>,
    tenants: Vec<TenantState>,
}

impl SloTracker {
    /// Build a tracker publishing into `registry`. Gauges are created
    /// eagerly (budget at 10000 bp, burns at 0) so the series exist in
    /// the first scrape even before any traffic.
    pub fn new(registry: Arc<Registry>, config: SloConfig) -> Arc<SloTracker> {
        registry.describe(
            "slo.budget_remaining",
            "Error budget remaining over the process lifetime, in basis points \
             (10000 = untouched).",
        );
        registry.describe(
            "slo.burn_rate",
            "Error-budget burn rate over the trailing window, in milli-burns \
             (1000 = burning exactly at budget).",
        );
        let windows = if config.windows.is_empty() {
            vec![1]
        } else {
            config.windows.clone()
        };
        let tenants = config
            .specs
            .iter()
            .map(|spec| {
                let labels = [("tenant", spec.tenant.as_str())];
                let budget_gauge = registry.gauge_labeled("slo.budget_remaining", &labels);
                budget_gauge.set(10_000);
                let burn_gauges = windows
                    .iter()
                    .map(|w| {
                        let window = w.to_string();
                        let g = registry.gauge_labeled(
                            "slo.burn_rate",
                            &[("tenant", spec.tenant.as_str()), ("window", &window)],
                        );
                        g.set(0);
                        g
                    })
                    .collect();
                TenantState {
                    latency_key: series_name(&config.latency_series, &labels),
                    shed_key: series_name(&config.shed_series, &labels),
                    budget_gauge,
                    burn_gauges,
                    readings: Mutex::new(VecDeque::new()),
                    spec: spec.clone(),
                }
            })
            .collect();
        let tracker = Arc::new(SloTracker {
            registry,
            windows,
            tenants,
        });
        // Baseline reading: traffic arriving before the first periodic
        // tick still lands inside a window delta.
        tracker.tick();
        tracker
    }

    /// The configured burn-rate windows, in ticks.
    pub fn windows(&self) -> &[usize] {
        &self.windows
    }

    /// Take one reading per tenant and refresh the published gauges.
    pub fn tick(&self) {
        let retain = self.windows.iter().copied().max().unwrap_or(1) + 1;
        for state in &self.tenants {
            let (served, good) = match self.registry.find_histogram(&state.latency_key) {
                Some(h) => (h.count(), h.count_below(state.spec.latency_ns())),
                None => (0, 0),
            };
            let shed = self
                .registry
                .find_counter(&state.shed_key)
                .map_or(0, |c| c.get());
            let reading = Reading {
                total: served + shed,
                bad: served.saturating_sub(good) + shed,
            };
            let mut readings = state.readings.lock().unwrap();
            readings.push_back(reading);
            while readings.len() > retain {
                readings.pop_front();
            }
            state
                .budget_gauge
                .set((budget_remaining_of(reading, &state.spec) * 10_000.0).round() as i64);
            for (gauge, &window) in state.burn_gauges.iter().zip(&self.windows) {
                let burn = burn_over_window(&readings, window, &state.spec);
                gauge.set((burn * 1_000.0).round() as i64);
            }
        }
    }

    /// Lifetime budget remaining for `tenant` (`None` = not tracked;
    /// 1.0 before the first tick or with no traffic).
    pub fn budget_remaining(&self, tenant: &str) -> Option<f64> {
        let state = self.state_of(tenant)?;
        let reading = state
            .readings
            .lock()
            .unwrap()
            .back()
            .copied()
            .unwrap_or_default();
        Some(budget_remaining_of(reading, &state.spec))
    }

    /// Burn rate for `tenant` over the trailing `window` ticks
    /// (`None` = tenant not tracked; 0.0 with no traffic in window).
    pub fn burn_rate(&self, tenant: &str, window: usize) -> Option<f64> {
        let state = self.state_of(tenant)?;
        Some(burn_over_window(
            &state.readings.lock().unwrap(),
            window,
            &state.spec,
        ))
    }

    /// Status rows for every tracked tenant.
    pub fn status(&self) -> Vec<TenantSlo> {
        self.tenants
            .iter()
            .map(|state| {
                let readings = state.readings.lock().unwrap();
                let reading = readings.back().copied().unwrap_or_default();
                TenantSlo {
                    tenant: state.spec.tenant.clone(),
                    latency_ms: state.spec.latency_ms,
                    objective: state.spec.objective,
                    total: reading.total,
                    bad: reading.bad,
                    budget_remaining: budget_remaining_of(reading, &state.spec),
                    burn_rates: self
                        .windows
                        .iter()
                        .map(|&w| (w, burn_over_window(&readings, w, &state.spec)))
                        .collect(),
                }
            })
            .collect()
    }

    /// The `/slo.json` body.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&w.to_string());
        }
        out.push_str("],\"tenants\":[");
        for (i, t) in self.status().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":\"{}\",\"latency_ms\":{},\"objective\":{},\"total\":{},\"bad\":{},\"budget_remaining\":{:.4},\"burn_rates\":{{",
                json_escape(&t.tenant),
                t.latency_ms,
                t.objective,
                t.total,
                t.bad,
                t.budget_remaining,
            ));
            for (j, (w, burn)) in t.burn_rates.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{w}\":{burn:.4}"));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Tick this tracker from a background thread every `interval`
    /// until the returned handle drops.
    pub fn start(self: &Arc<Self>, interval: Duration) -> SloTicker {
        let tracker = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("slo-ticker".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    tracker.tick();
                }
            })
            .expect("spawn slo ticker");
        SloTicker {
            stop,
            handle: Some(handle),
        }
    }

    fn state_of(&self, tenant: &str) -> Option<&TenantState> {
        self.tenants.iter().find(|s| s.spec.tenant == tenant)
    }
}

fn budget_remaining_of(reading: Reading, spec: &SloSpec) -> f64 {
    if reading.total == 0 {
        return 1.0;
    }
    let bad_fraction = reading.bad as f64 / reading.total as f64;
    (1.0 - bad_fraction / spec.budget()).clamp(0.0, 1.0)
}

/// Burn rate over the trailing `window` ticks: the bad fraction of the
/// requests arriving in the window, divided by the budget. 0.0 when
/// fewer than two readings exist or no requests arrived.
fn burn_over_window(readings: &VecDeque<Reading>, window: usize, spec: &SloSpec) -> f64 {
    let n = readings.len();
    if n < 2 {
        return 0.0;
    }
    let newest = readings[n - 1];
    let oldest = readings[n - 1 - window.clamp(1, n - 1)];
    let total = newest.total.saturating_sub(oldest.total);
    if total == 0 {
        return 0.0;
    }
    let bad = newest.bad.saturating_sub(oldest.bad);
    (bad as f64 / total as f64) / spec.budget()
}

/// Stops the background ticking thread when dropped.
pub struct SloTicker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for SloTicker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration as StdDuration;

    fn tracker_with(
        registry: &Arc<Registry>,
        objective: f64,
        latency_ms: f64,
        windows: Vec<usize>,
    ) -> Arc<SloTracker> {
        SloTracker::new(
            Arc::clone(registry),
            SloConfig {
                specs: vec![SloSpec::new("t0", latency_ms, objective)],
                windows,
                ..SloConfig::default()
            },
        )
    }

    /// Record `n` served requests at `ms` milliseconds each.
    fn serve(registry: &Registry, n: u64, ms: u64) {
        let h = registry.histogram_labeled("tier.request", &[("tenant", "t0")]);
        for _ in 0..n {
            h.record_duration(StdDuration::from_millis(ms));
        }
    }

    fn shed(registry: &Registry, n: u64) {
        registry
            .counter_labeled("tier.shed_tenant", &[("tenant", "t0")])
            .add(n);
    }

    #[test]
    fn gauges_exist_before_any_traffic() {
        let r = Registry::new_arc();
        let _t = tracker_with(&r, 0.99, 50.0, vec![2, 10]);
        let snap = r.snapshot();
        assert_eq!(
            snap.gauge_labeled("slo.budget_remaining", &[("tenant", "t0")]),
            Some(10_000)
        );
        assert_eq!(
            snap.gauge_labeled("slo.burn_rate", &[("tenant", "t0"), ("window", "2")]),
            Some(0)
        );
        assert_eq!(
            snap.gauge_labeled("slo.burn_rate", &[("tenant", "t0"), ("window", "10")]),
            Some(0)
        );
        // HELP descriptions registered for the exporter.
        assert!(snap
            .help
            .iter()
            .any(|(base, _)| base == "slo.budget_remaining"));
    }

    /// The acceptance scenario: a synthetic stream with a known shed
    /// rate must produce exactly the predicted budget numbers.
    #[test]
    fn known_shed_rate_burns_the_predicted_budget() {
        let r = Registry::new_arc();
        // Objective 0.9 → budget 0.1. 80 fast + 10 slow + 10 shed of
        // 100 total → bad fraction 0.2 → burn 2.0 → budget exhausted
        // (remaining 0 after clamping: 1 - 0.2/0.1 = -1).
        let t = tracker_with(&r, 0.9, 10.0, vec![1]);
        serve(&r, 80, 1);
        serve(&r, 10, 100);
        shed(&r, 10);
        t.tick();
        t.tick(); // burn windows need two readings
        assert_eq!(t.budget_remaining("t0"), Some(0.0));
        // All traffic arrived before the first tick; the window
        // between tick 1 and 2 saw nothing.
        assert_eq!(t.burn_rate("t0", 1), Some(0.0));
        let status = &t.status()[0];
        assert_eq!((status.total, status.bad), (100, 20));
        assert_eq!(
            r.snapshot()
                .gauge_labeled("slo.budget_remaining", &[("tenant", "t0")]),
            Some(0)
        );
    }

    #[test]
    fn burn_rate_is_windowed_and_in_budget_units() {
        let r = Registry::new_arc();
        // Objective 0.99 → budget 0.01.
        let t = tracker_with(&r, 0.99, 10.0, vec![1, 4]);
        serve(&r, 100, 1); // all good
        t.tick();
        // Second interval: 96 good + 4 slow → bad fraction 4/100 =
        // 0.04 → burn 4.0 over the short window.
        serve(&r, 96, 1);
        serve(&r, 4, 100);
        t.tick();
        let short = t.burn_rate("t0", 1).unwrap();
        assert!((short - 4.0).abs() < 1e-9, "short burn {short}");
        // The long window spans both intervals: 4 bad of 200 → 2.0.
        let long = t.burn_rate("t0", 4).unwrap();
        assert!((long - 2.0).abs() < 1e-9, "long burn {long}");
        // Milli-burn gauges match.
        let snap = r.snapshot();
        assert_eq!(
            snap.gauge_labeled("slo.burn_rate", &[("tenant", "t0"), ("window", "1")]),
            Some(4_000)
        );
        assert_eq!(
            snap.gauge_labeled("slo.burn_rate", &[("tenant", "t0"), ("window", "4")]),
            Some(2_000)
        );
        // Budget: 4 bad of 200 total = 0.02 bad fraction on a 0.01
        // budget → exhausted.
        assert_eq!(t.budget_remaining("t0"), Some(0.0));
    }

    #[test]
    fn quiet_tenant_keeps_full_budget() {
        let r = Registry::new_arc();
        let t = tracker_with(&r, 0.99, 50.0, vec![2]);
        for _ in 0..5 {
            t.tick();
        }
        assert_eq!(t.budget_remaining("t0"), Some(1.0));
        assert_eq!(t.burn_rate("t0", 2), Some(0.0));
        assert_eq!(t.budget_remaining("missing"), None);
    }

    #[test]
    fn json_reports_every_tenant_and_window() {
        let r = Registry::new_arc();
        let t = tracker_with(&r, 0.95, 25.0, vec![2, 8]);
        serve(&r, 50, 1);
        t.tick();
        let json = t.to_json();
        assert!(json.contains("\"windows\":[2,8]"), "{json}");
        assert!(json.contains("\"tenant\":\"t0\""), "{json}");
        assert!(json.contains("\"objective\":0.95"), "{json}");
        assert!(json.contains("\"total\":50"), "{json}");
        assert!(json.contains("\"budget_remaining\":1.0000"), "{json}");
        assert!(json.contains("\"2\":"), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }

    #[test]
    fn background_ticker_advances_readings() {
        let r = Registry::new_arc();
        let t = tracker_with(&r, 0.99, 50.0, vec![2]);
        serve(&r, 10, 1);
        let ticker = t.start(StdDuration::from_millis(5));
        // Wait until at least one reading lands (bounded).
        let deadline = std::time::Instant::now() + StdDuration::from_secs(2);
        while t.status()[0].total == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(StdDuration::from_millis(5));
        }
        drop(ticker);
        assert_eq!(t.status()[0].total, 10, "ticker never took a reading");
    }
}
