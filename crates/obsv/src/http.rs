//! Minimal HTTP/1.1 plumbing for the ops server: request parsing and
//! response writing over a raw `TcpStream`.
//!
//! Deliberately tiny — the ops plane serves `GET` with short ASCII
//! targets to trusted operators on a loopback or cluster-internal
//! address. Requests are capped at 8 KiB, read under a socket
//! timeout, and anything malformed is answered with a 4xx rather than
//! parsed charitably.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request head (start line + headers). An ops `GET` fits
/// in a fraction of this; anything larger is hostile or lost.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: an operator's curl answers
/// instantly; a stalled peer must not pin a handler thread.
pub(crate) const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A parsed request target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Request {
    /// Path component, e.g. `/traces/42`.
    pub path: String,
    /// Decoded `k=v` query pairs, in order.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of query parameter `key`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served; each maps to one response.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum HttpError {
    /// Malformed start line / oversized head → 400.
    BadRequest(&'static str),
    /// Any method but GET → 405.
    MethodNotAllowed,
    /// Socket error or timeout mid-read: nothing to answer.
    Io,
}

/// Read and parse one request head from `stream`.
pub(crate) fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !head_complete(&buf) {
        if buf.len() >= MAX_REQUEST_BYTES {
            return Err(HttpError::BadRequest("request head too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Io),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(HttpError::Io),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let start_line = head
        .lines()
        .next()
        .ok_or(HttpError::BadRequest("empty request"))?;
    let mut parts = start_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::BadRequest("missing method"))?;
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing target"))?;
    if parts.next().is_none_or(|v| !v.starts_with("HTTP/")) {
        return Err(HttpError::BadRequest("not an HTTP request"));
    }
    if method != "GET" {
        return Err(HttpError::MethodNotAllowed);
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        path: path.to_string(),
        query,
    })
}

fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n")
}

/// Write one `Connection: close` response.
pub(crate) fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // A peer hanging up mid-write is its problem, not ours.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Run the parser against one raw request string.
    fn parse(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s
        });
        let (mut conn, _) = listener.accept().unwrap();
        let parsed = read_request(&mut conn);
        drop(writer.join().unwrap());
        parsed
    }

    #[test]
    fn parses_path_and_query() {
        let r = parse("GET /profile?seconds=2&hz=50 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.path, "/profile");
        assert_eq!(r.param("seconds"), Some("2"));
        assert_eq!(r.param("hz"), Some("50"));
        assert_eq!(r.param("missing"), None);
    }

    #[test]
    fn plain_path_has_empty_query() {
        let r = parse("GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(r.path, "/metrics");
        assert!(r.query.is_empty());
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        assert_eq!(
            parse("POST /metrics HTTP/1.1\r\n\r\n"),
            Err(HttpError::MethodNotAllowed)
        );
        assert!(matches!(
            parse("not an http request at all\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }
}
