//! Property-based tests for the graph/hypergraph substrate.

use proptest::prelude::*;
use sparsegraph::{bfs_levels, connected_components, pseudo_peripheral_vertex, Graph, Hypergraph};
use sparsemat::{CooMatrix, CsrMatrix};

fn sym_matrix_strategy() -> impl Strategy<Value = CsrMatrix> {
    (
        2usize..60,
        proptest::collection::vec((0usize..3600, 0usize..3600), 0..150),
    )
        .prop_map(|(n, pairs)| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 1.0);
            }
            for (a, b) in pairs {
                let (i, j) = (a % n, b % n);
                if i != j {
                    coo.push_symmetric(i.max(j), i.min(j), 1.0);
                }
            }
            CsrMatrix::from_coo(&coo)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_adjacency_is_symmetric(a in sym_matrix_strategy()) {
        let g = Graph::from_matrix(&a).unwrap();
        for v in 0..g.num_vertices() {
            for &u in g.neighbors(v) {
                prop_assert!(
                    g.neighbors(u as usize).contains(&(v as u32)),
                    "edge ({v}, {u}) missing its reverse"
                );
                prop_assert_ne!(u as usize, v, "self-loop at {}", v);
            }
        }
        // Handshake lemma.
        let degree_sum: usize = (0..g.num_vertices()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn bfs_levels_partition_the_component(a in sym_matrix_strategy()) {
        let g = Graph::from_matrix(&a).unwrap();
        let b = bfs_levels(&g, 0);
        // Levels are disjoint and adjacent levels differ by exactly 1.
        let mut seen = std::collections::HashSet::new();
        for (k, level) in b.levels.iter().enumerate() {
            for &v in level {
                prop_assert!(seen.insert(v), "vertex {} in two levels", v);
                prop_assert_eq!(b.level_of[v as usize], k);
            }
        }
        // Edge level gap is at most 1 within the component.
        for v in 0..g.num_vertices() {
            if b.level_of[v] == usize::MAX { continue; }
            for &u in g.neighbors(v) {
                let d = b.level_of[v].abs_diff(b.level_of[u as usize]);
                prop_assert!(d <= 1, "edge ({v}, {u}) spans {d} levels");
            }
        }
    }

    #[test]
    fn components_partition_vertices(a in sym_matrix_strategy()) {
        let g = Graph::from_matrix(&a).unwrap();
        let c = connected_components(&g);
        let total: usize = c.members.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_vertices());
        // Edges never cross components.
        for v in 0..g.num_vertices() {
            for &u in g.neighbors(v) {
                prop_assert_eq!(c.component_of[v], c.component_of[u as usize]);
            }
        }
    }

    #[test]
    fn pseudo_peripheral_has_maximal_or_near_depth(a in sym_matrix_strategy()) {
        let g = Graph::from_matrix(&a).unwrap();
        let p = pseudo_peripheral_vertex(&g, 0);
        let depth_p = bfs_levels(&g, p).depth();
        let depth_0 = bfs_levels(&g, 0).depth();
        prop_assert!(depth_p >= depth_0, "peripheral depth {depth_p} < start depth {depth_0}");
    }

    #[test]
    fn hypergraph_duality(a in sym_matrix_strategy()) {
        let h = Hypergraph::column_net(&a);
        prop_assert_eq!(h.num_pins(), a.nnz());
        // v in pins(j) <=> j in nets(v).
        for j in 0..h.num_nets() {
            for &v in h.net_pins(j) {
                prop_assert!(h.vertex_nets(v as usize).contains(&(j as u32)));
            }
        }
        for v in 0..h.num_vertices() {
            for &j in h.vertex_nets(v) {
                prop_assert!(h.net_pins(j as usize).contains(&(v as u32)));
            }
        }
        // Single-part assignment cuts nothing.
        let parts = vec![0u32; h.num_vertices()];
        prop_assert_eq!(h.cut_net(&parts), 0);
    }
}
