use crate::{bfs_levels_with, Graph, DEFAULT_PAR_FRONTIER_MIN};
use team::Exec;

/// Find a pseudo-peripheral vertex of the component containing `start`,
/// using the George–Liu algorithm \[10\].
///
/// Starting from `start`, repeatedly build a rooted level structure and
/// restart from a minimum-degree vertex of the last (deepest) level,
/// until the eccentricity stops increasing. The returned vertex is a
/// good Cuthill–McKee starting point: its BFS level structure is deep
/// and narrow, which translates into small bandwidth after reordering.
pub fn pseudo_peripheral_vertex(g: &Graph, start: usize) -> usize {
    pseudo_peripheral_vertex_on(g, start, Exec::Sequential)
}

/// [`pseudo_peripheral_vertex`] on an executor. The repeated level
/// structures dominate the finder's cost and parallelise through
/// [`crate::bfs_levels_on`]; the min-degree candidate selection keeps its
/// first-minimum (within-level order) semantics, which parallel BFS
/// preserves exactly.
pub fn pseudo_peripheral_vertex_on(g: &Graph, start: usize, exec: Exec<'_>) -> usize {
    pseudo_peripheral_vertex_with(g, start, exec, DEFAULT_PAR_FRONTIER_MIN)
}

/// [`pseudo_peripheral_vertex_on`] with an explicit parallel-expansion
/// cutover (see [`bfs_levels_with`]); the returned vertex is identical
/// for every threshold.
pub fn pseudo_peripheral_vertex_with(
    g: &Graph,
    start: usize,
    exec: Exec<'_>,
    frontier_min: usize,
) -> usize {
    let mut root = start;
    let mut b = bfs_levels_with(g, root, exec, frontier_min);
    loop {
        let last = b
            .levels
            .last()
            .expect("BFS always produces at least one level");
        // Minimum-degree vertex of the deepest level.
        let candidate = *last
            .iter()
            .min_by_key(|&&v| g.degree(v as usize))
            .expect("levels are non-empty") as usize;
        if candidate == root {
            return root;
        }
        let b2 = bfs_levels_with(g, candidate, exec, frontier_min);
        if b2.depth() > b.depth() {
            root = candidate;
            b = b2;
        } else {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_levels;

    fn path(n: usize) -> Graph {
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for v in 0..n {
            if v > 0 {
                adjncy.push((v - 1) as u32);
            }
            if v + 1 < n {
                adjncy.push((v + 1) as u32);
            }
            xadj.push(adjncy.len());
        }
        Graph::from_adjacency(xadj, adjncy).unwrap()
    }

    #[test]
    fn path_endpoint_is_peripheral() {
        let g = path(7);
        let v = pseudo_peripheral_vertex(&g, 3);
        assert!(v == 0 || v == 6, "expected a path endpoint, got {v}");
    }

    #[test]
    fn starting_at_endpoint_stays_peripheral() {
        let g = path(7);
        let v = pseudo_peripheral_vertex(&g, 0);
        let depth = bfs_levels(&g, v).depth();
        assert_eq!(depth, 7, "peripheral vertex must realise full diameter");
    }

    #[test]
    fn star_graph_returns_leaf() {
        // Star: center 0 connected to 1..=4.
        let mut xadj = vec![0usize, 4];
        let mut adjncy: Vec<u32> = vec![1, 2, 3, 4];
        for _ in 1..=4 {
            adjncy.push(0);
            xadj.push(adjncy.len());
        }
        let g = Graph::from_adjacency(xadj, adjncy).unwrap();
        let v = pseudo_peripheral_vertex(&g, 0);
        assert!(v >= 1, "a leaf is more eccentric than the center");
    }

    #[test]
    fn grid_corner_found_from_center() {
        // 5x5 grid graph.
        let n = 5;
        let idx = |r: usize, c: usize| (r * n + c) as u32;
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r > 0 {
                    adjncy.push(idx(r - 1, c));
                }
                if r + 1 < n {
                    adjncy.push(idx(r + 1, c));
                }
                if c > 0 {
                    adjncy.push(idx(r, c - 1));
                }
                if c + 1 < n {
                    adjncy.push(idx(r, c + 1));
                }
                xadj.push(adjncy.len());
            }
        }
        let g = Graph::from_adjacency(xadj, adjncy).unwrap();
        let v = pseudo_peripheral_vertex(&g, 12); // center
        let ecc = bfs_levels(&g, v).depth() - 1;
        assert_eq!(ecc, 8, "grid pseudo-peripheral vertex should be a corner");
    }
}
