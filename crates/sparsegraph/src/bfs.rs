use crate::Graph;

/// The result of a level-structured breadth-first search.
///
/// `levels[k]` holds the vertices at distance `k` from the root;
/// `level_of[v]` is the distance of `v`, or `usize::MAX` if `v` is
/// unreachable from the root.
#[derive(Debug, Clone)]
pub struct BfsLevels {
    /// Vertices grouped by distance from the root.
    pub levels: Vec<Vec<u32>>,
    /// Distance of every vertex (`usize::MAX` if unreachable).
    pub level_of: Vec<usize>,
}

impl BfsLevels {
    /// Number of levels (the *depth* or eccentricity + 1 of the root
    /// within its component).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Width of the widest level.
    pub fn width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of vertices reached (size of the root's component).
    pub fn num_reached(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

/// Breadth-first search from `root`, producing the rooted level
/// structure used by Cuthill–McKee and the pseudo-peripheral finder.
///
/// Only the connected component containing `root` is traversed.
pub fn bfs_levels(g: &Graph, root: usize) -> BfsLevels {
    let n = g.num_vertices();
    assert!(root < n, "BFS root {root} out of range for {n} vertices");
    let mut level_of = vec![usize::MAX; n];
    let mut levels: Vec<Vec<u32>> = Vec::new();
    let mut frontier = vec![root as u32];
    level_of[root] = 0;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        let depth = levels.len() + 1;
        for &v in &frontier {
            for &u in g.neighbors(v as usize) {
                if level_of[u as usize] == usize::MAX {
                    level_of[u as usize] = depth;
                    next.push(u);
                }
            }
        }
        levels.push(frontier);
        frontier = next;
    }
    BfsLevels { levels, level_of }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for v in 0..n {
            if v > 0 {
                adjncy.push((v - 1) as u32);
            }
            if v + 1 < n {
                adjncy.push((v + 1) as u32);
            }
            xadj.push(adjncy.len());
        }
        Graph::from_adjacency(xadj, adjncy).unwrap()
    }

    #[test]
    fn bfs_on_path_has_linear_levels() {
        let g = path(5);
        let b = bfs_levels(&g, 0);
        assert_eq!(b.depth(), 5);
        assert_eq!(b.width(), 1);
        assert_eq!(b.num_reached(), 5);
        for v in 0..5 {
            assert_eq!(b.level_of[v], v);
        }
    }

    #[test]
    fn bfs_from_middle() {
        let g = path(5);
        let b = bfs_levels(&g, 2);
        assert_eq!(b.depth(), 3);
        assert_eq!(b.levels[0], vec![2]);
        let mut l1 = b.levels[1].clone();
        l1.sort();
        assert_eq!(l1, vec![1, 3]);
    }

    #[test]
    fn bfs_ignores_other_components() {
        // Two disconnected edges: 0-1, 2-3.
        let g = Graph::from_adjacency(vec![0, 1, 2, 3, 4], vec![1, 0, 3, 2]).unwrap();
        let b = bfs_levels(&g, 0);
        assert_eq!(b.num_reached(), 2);
        assert_eq!(b.level_of[2], usize::MAX);
        assert_eq!(b.level_of[3], usize::MAX);
    }

    #[test]
    fn bfs_single_vertex() {
        let g = Graph::from_adjacency(vec![0, 0], vec![]).unwrap();
        let b = bfs_levels(&g, 0);
        assert_eq!(b.depth(), 1);
        assert_eq!(b.levels[0], vec![0]);
    }
}
