use crate::Graph;
use std::sync::atomic::{AtomicU32, Ordering};
use team::Exec;

/// Frontier positions per chunk in the parallel expansion; each
/// position costs O(degree) work.
const FRONTIER_GRAIN: usize = 512;

/// Below this frontier width the one-pass sequential expansion wins:
/// a team dispatch costs microseconds, claiming a few hundred edges
/// costs less. BENCH_PR5 showed the 1024 cutover from PR 5 flipping
/// whole level-set traversals onto the two-phase path on hosts where
/// the dispatch never pays for itself; `reorder_scaling` re-measured
/// with the tunable (see DESIGN §9) keeps 4096 as the default — wide
/// enough that only genuinely massive frontiers pay for a dispatch,
/// while `ReorderExec::with_frontier_min` lets multicore hosts tune it
/// back down.
pub const DEFAULT_PAR_FRONTIER_MIN: usize = 4096;

/// The result of a level-structured breadth-first search.
///
/// `levels[k]` holds the vertices at distance `k` from the root;
/// `level_of[v]` is the distance of `v`, or `usize::MAX` if `v` is
/// unreachable from the root.
#[derive(Debug, Clone)]
pub struct BfsLevels {
    /// Vertices grouped by distance from the root.
    pub levels: Vec<Vec<u32>>,
    /// Distance of every vertex (`usize::MAX` if unreachable).
    pub level_of: Vec<usize>,
}

impl BfsLevels {
    /// Number of levels (the *depth* or eccentricity + 1 of the root
    /// within its component).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Width of the widest level.
    pub fn width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of vertices reached (size of the root's component).
    pub fn num_reached(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

/// Breadth-first search from `root`, producing the rooted level
/// structure used by Cuthill–McKee and the pseudo-peripheral finder.
///
/// Only the connected component containing `root` is traversed.
pub fn bfs_levels(g: &Graph, root: usize) -> BfsLevels {
    let n = g.num_vertices();
    assert!(root < n, "BFS root {root} out of range for {n} vertices");
    let mut level_of = vec![usize::MAX; n];
    let mut levels: Vec<Vec<u32>> = Vec::new();
    let mut frontier = vec![root as u32];
    level_of[root] = 0;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        let depth = levels.len() + 1;
        for &v in &frontier {
            for &u in g.neighbors(v as usize) {
                if level_of[u as usize] == usize::MAX {
                    level_of[u as usize] = depth;
                    next.push(u);
                }
            }
        }
        levels.push(frontier);
        frontier = next;
    }
    BfsLevels { levels, level_of }
}

/// [`bfs_levels`] on an executor: frontiers wide enough to amortise a
/// dispatch are expanded in parallel via [`expand_frontier_on`], and
/// the result is byte-identical to the sequential search (see the
/// determinism argument there). Uses the default cutover
/// [`DEFAULT_PAR_FRONTIER_MIN`]; see [`bfs_levels_with`] for a tuned
/// threshold.
pub fn bfs_levels_on(g: &Graph, root: usize, exec: Exec<'_>) -> BfsLevels {
    bfs_levels_with(g, root, exec, DEFAULT_PAR_FRONTIER_MIN)
}

/// [`bfs_levels_on`] with an explicit sequential-fallback threshold:
/// levels narrower than `frontier_min` are expanded by the one-pass
/// sequential loop even on a team. The threshold changes wall-clock
/// only — the returned level structure is identical for every value.
pub fn bfs_levels_with(g: &Graph, root: usize, exec: Exec<'_>, frontier_min: usize) -> BfsLevels {
    if exec.lanes() == 1 {
        return bfs_levels(g, root);
    }
    let n = g.num_vertices();
    assert!(root < n, "BFS root {root} out of range for {n} vertices");
    let mut level_of = vec![usize::MAX; n];
    let scratch = FrontierScratch::new(n);
    let mut levels: Vec<Vec<u32>> = Vec::new();
    let mut frontier = vec![root as u32];
    level_of[root] = 0;
    while !frontier.is_empty() {
        let depth = levels.len() + 1;
        let next = expand_frontier_with(
            g,
            &frontier,
            |u| level_of[u] == usize::MAX,
            &scratch,
            exec,
            frontier_min,
            |_| {},
        );
        for &u in &next {
            level_of[u as usize] = depth;
        }
        levels.push(std::mem::replace(&mut frontier, next));
    }
    BfsLevels { levels, level_of }
}

/// Per-vertex claim slots reused across the levels of one traversal
/// (allocate once per search or per ordering, not per level).
///
/// A slot holds the frontier position of the parent that claimed the
/// vertex this level, or `u32::MAX` when unclaimed. Slots are restored
/// to `u32::MAX` by [`expand_frontier_on`] before it returns.
pub struct FrontierScratch {
    claims: Vec<AtomicU32>,
}

impl FrontierScratch {
    /// Claim slots for a graph with `n` vertices.
    pub fn new(n: usize) -> FrontierScratch {
        FrontierScratch {
            claims: (0..n).map(|_| AtomicU32::new(u32::MAX)).collect(),
        }
    }

    /// Number of vertices the scratch covers.
    pub fn len(&self) -> usize {
        self.claims.len()
    }

    /// Whether the scratch covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }
}

/// Expand one BFS level: return the vertices adjacent to `frontier`
/// for which `unvisited` holds, each appearing exactly once, grouped
/// by the *lowest-positioned* frontier parent that reaches them and
/// ordered within a parent's group by `sort_children` (pass a no-op
/// for adjacency order). The caller marks the returned vertices
/// visited before the next expansion.
///
/// # Determinism
///
/// The sequential one-pass expansion ("first parent to scan a vertex
/// claims it") assigns every vertex to its minimum-position parent,
/// because parents are scanned in frontier order. The parallel path
/// computes the same assignment explicitly — a `fetch_min` race over
/// parent positions is order-independent — then concatenates per-chunk
/// child lists in chunk order, which is frontier order. Both paths
/// therefore return the exact same vertex sequence for every executor
/// and team size; narrow frontiers take the sequential path outright.
pub fn expand_frontier_on<P, S>(
    g: &Graph,
    frontier: &[u32],
    unvisited: P,
    scratch: &FrontierScratch,
    exec: Exec<'_>,
    sort_children: S,
) -> Vec<u32>
where
    P: Fn(usize) -> bool + Sync,
    S: Fn(&mut Vec<u32>) + Sync,
{
    expand_frontier_with(
        g,
        frontier,
        unvisited,
        scratch,
        exec,
        DEFAULT_PAR_FRONTIER_MIN,
        sort_children,
    )
}

/// [`expand_frontier_on`] with an explicit sequential-fallback
/// threshold (`frontier_min`): frontiers narrower than it always take
/// the one-pass sequential expansion. Output is identical for every
/// threshold — only the dispatch decision changes.
pub fn expand_frontier_with<P, S>(
    g: &Graph,
    frontier: &[u32],
    unvisited: P,
    scratch: &FrontierScratch,
    exec: Exec<'_>,
    frontier_min: usize,
    sort_children: S,
) -> Vec<u32>
where
    P: Fn(usize) -> bool + Sync,
    S: Fn(&mut Vec<u32>) + Sync,
{
    debug_assert!(scratch.len() >= g.num_vertices());
    let claims = &scratch.claims;
    if exec.lanes() == 1 || frontier.len() < frontier_min {
        // One-pass: claims double as claimed-this-level flags, so the
        // first (= minimum-position) parent wins, as in the parallel
        // path.
        let mut next: Vec<u32> = Vec::new();
        let mut children: Vec<u32> = Vec::new();
        for (i, &v) in frontier.iter().enumerate() {
            children.clear();
            for &u in g.neighbors(v as usize) {
                let slot = &claims[u as usize];
                if unvisited(u as usize) && slot.load(Ordering::Relaxed) == u32::MAX {
                    slot.store(i as u32, Ordering::Relaxed);
                    children.push(u);
                }
            }
            sort_children(&mut children);
            next.extend_from_slice(&children);
        }
        for &u in &next {
            claims[u as usize].store(u32::MAX, Ordering::Relaxed);
        }
        return next;
    }
    // Claim phase: every unvisited neighbour records its
    // minimum-position parent. The `run` barrier between the two
    // phases orders these relaxed writes before the reads below.
    exec.parallel_for(frontier.len(), FRONTIER_GRAIN, |range| {
        for i in range {
            for &u in g.neighbors(frontier[i] as usize) {
                if unvisited(u as usize) {
                    claims[u as usize].fetch_min(i as u32, Ordering::Relaxed);
                }
            }
        }
    });
    // Collect phase: each parent gathers the children it won, chunks
    // concatenate in frontier order.
    let chunks = exec.map_chunks(frontier.len(), FRONTIER_GRAIN, |_, range| {
        let mut out: Vec<u32> = Vec::new();
        let mut children: Vec<u32> = Vec::new();
        for i in range {
            children.clear();
            for &u in g.neighbors(frontier[i] as usize) {
                if unvisited(u as usize) && claims[u as usize].load(Ordering::Relaxed) == i as u32 {
                    children.push(u);
                }
            }
            sort_children(&mut children);
            out.extend_from_slice(&children);
        }
        out
    });
    let mut next: Vec<u32> = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for chunk in chunks {
        next.extend(chunk);
    }
    for &u in &next {
        claims[u as usize].store(u32::MAX, Ordering::Relaxed);
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for v in 0..n {
            if v > 0 {
                adjncy.push((v - 1) as u32);
            }
            if v + 1 < n {
                adjncy.push((v + 1) as u32);
            }
            xadj.push(adjncy.len());
        }
        Graph::from_adjacency(xadj, adjncy).unwrap()
    }

    #[test]
    fn bfs_on_path_has_linear_levels() {
        let g = path(5);
        let b = bfs_levels(&g, 0);
        assert_eq!(b.depth(), 5);
        assert_eq!(b.width(), 1);
        assert_eq!(b.num_reached(), 5);
        for v in 0..5 {
            assert_eq!(b.level_of[v], v);
        }
    }

    #[test]
    fn bfs_from_middle() {
        let g = path(5);
        let b = bfs_levels(&g, 2);
        assert_eq!(b.depth(), 3);
        assert_eq!(b.levels[0], vec![2]);
        let mut l1 = b.levels[1].clone();
        l1.sort();
        assert_eq!(l1, vec![1, 3]);
    }

    #[test]
    fn bfs_ignores_other_components() {
        // Two disconnected edges: 0-1, 2-3.
        let g = Graph::from_adjacency(vec![0, 1, 2, 3, 4], vec![1, 0, 3, 2]).unwrap();
        let b = bfs_levels(&g, 0);
        assert_eq!(b.num_reached(), 2);
        assert_eq!(b.level_of[2], usize::MAX);
        assert_eq!(b.level_of[3], usize::MAX);
    }

    #[test]
    fn bfs_single_vertex() {
        let g = Graph::from_adjacency(vec![0, 0], vec![]).unwrap();
        let b = bfs_levels(&g, 0);
        assert_eq!(b.depth(), 1);
        assert_eq!(b.levels[0], vec![0]);
    }

    /// A random-ish graph with wide levels: a union of rings plus
    /// chords, deterministic from a seed.
    fn chorded(n: usize, seed: u64) -> Graph {
        let mut edges = std::collections::BTreeSet::new();
        for v in 0..n {
            edges.insert((
                (v as u32).min(((v + 1) % n) as u32),
                (v as u32).max(((v + 1) % n) as u32),
            ));
        }
        let mut state = seed;
        for _ in 0..3 * n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((state >> 33) as usize % n) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((state >> 33) as usize % n) as u32;
            if a != b {
                edges.insert((a.min(b), a.max(b)));
            }
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        for mut nbrs in adj {
            nbrs.sort_unstable();
            adjncy.extend_from_slice(&nbrs);
            xadj.push(adjncy.len());
        }
        Graph::from_adjacency(xadj, adjncy).unwrap()
    }

    #[test]
    fn parallel_bfs_matches_sequential() {
        let g = chorded(20_000, 42);
        let registry = telemetry::Registry::new_arc();
        let seq = bfs_levels(&g, 0);
        // A low explicit threshold forces the two-phase path onto this
        // graph's levels regardless of where the tuned default sits.
        const FORCED_MIN: usize = 1024;
        assert!(
            seq.width() >= FORCED_MIN,
            "test graph must be wide enough to hit the two-phase path (width {})",
            seq.width()
        );
        for size in [1usize, 2, 4, 8] {
            let t = team::ThreadTeam::new_in(&registry, size);
            let par = bfs_levels_with(&g, 0, Exec::Team(&t), FORCED_MIN);
            assert_eq!(seq.level_of, par.level_of, "team size {size}");
            assert_eq!(seq.levels, par.levels, "team size {size}");
            // The default-threshold entry point must agree as well.
            let par_default = bfs_levels_on(&g, 0, Exec::Team(&t));
            assert_eq!(seq.level_of, par_default.level_of, "team size {size}");
        }
    }

    #[test]
    fn expand_frontier_restores_scratch() {
        let g = path(10);
        let scratch = FrontierScratch::new(10);
        let visited = [
            true, false, false, false, false, false, false, false, false, false,
        ];
        let next = expand_frontier_on(
            &g,
            &[0],
            |u| !visited[u],
            &scratch,
            Exec::Sequential,
            |_| {},
        );
        assert_eq!(next, vec![1]);
        for c in &scratch.claims {
            assert_eq!(c.load(Ordering::Relaxed), u32::MAX);
        }
    }
}
