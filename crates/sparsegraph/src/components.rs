use crate::Graph;

/// The connected components of a graph.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id of each vertex, in `0..num_components`.
    pub component_of: Vec<u32>,
    /// Vertices of each component, in BFS discovery order.
    pub members: Vec<Vec<u32>>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// The largest component's vertex list.
    pub fn largest(&self) -> &[u32] {
        self.members
            .iter()
            .max_by_key(|m| m.len())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Compute connected components by repeated BFS.
///
/// Many matrices in the study decompose into several components; the
/// reorderings process each component independently (RCM restarts its
/// BFS, ND and GP partition per component), so this is shared
/// infrastructure.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_vertices();
    let mut component_of = vec![u32::MAX; n];
    let mut members: Vec<Vec<u32>> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if component_of[s] != u32::MAX {
            continue;
        }
        let cid = members.len() as u32;
        let mut verts = Vec::new();
        component_of[s] = cid;
        queue.push_back(s as u32);
        while let Some(v) = queue.pop_front() {
            verts.push(v);
            for &u in g.neighbors(v as usize) {
                if component_of[u as usize] == u32::MAX {
                    component_of[u as usize] = cid;
                    queue.push_back(u);
                }
            }
        }
        members.push(verts);
    }
    Components {
        component_of,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::from_adjacency(vec![0, 1, 2], vec![1, 0]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.members[0].len(), 2);
    }

    #[test]
    fn multiple_components_and_isolated_vertices() {
        // Edge 0-1, isolated 2, edge 3-4.
        let g = Graph::from_adjacency(vec![0, 1, 2, 2, 3, 4], vec![1, 0, 4, 3]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.component_of[0], c.component_of[1]);
        assert_eq!(c.component_of[3], c.component_of[4]);
        assert_ne!(c.component_of[0], c.component_of[2]);
        assert_eq!(c.largest().len(), 2);
    }

    #[test]
    fn all_isolated() {
        let g = Graph::from_adjacency(vec![0, 0, 0, 0], vec![]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        for m in &c.members {
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn discovery_order_is_bfs() {
        // Path 0-1-2: starting at 0, discovery order is 0,1,2.
        let g = Graph::from_adjacency(vec![0, 1, 3, 4], vec![1, 0, 2, 1]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.members[0], vec![0, 1, 2]);
    }
}
