use sparsemat::{is_structurally_symmetric, symmetrize_pattern, CsrMatrix, SparseError};

/// An undirected graph in adjacency-array (CSR-like) form, with integer
/// vertex and edge weights.
///
/// The adjacency of vertex `v` is `adjncy[xadj[v]..xadj[v+1]]`; each
/// undirected edge `{u, v}` is stored twice (once per endpoint) with the
/// same weight. Self-loops are never stored. Weights default to 1 and
/// accumulate during multilevel coarsening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
    vwgt: Vec<i64>,
    ewgt: Vec<i64>,
}

impl Graph {
    /// Build a graph from raw adjacency arrays with unit weights.
    ///
    /// The caller must supply a symmetric adjacency structure (each edge
    /// listed from both endpoints) with no self-loops; this is verified.
    pub fn from_adjacency(xadj: Vec<usize>, adjncy: Vec<u32>) -> Result<Self, SparseError> {
        let n = xadj.len().saturating_sub(1);
        if xadj.is_empty() || xadj[0] != 0 || *xadj.last().unwrap() != adjncy.len() {
            return Err(SparseError::InvalidStructure(
                "xadj must start at 0 and end at adjncy.len()".into(),
            ));
        }
        for v in 0..n {
            if xadj[v] > xadj[v + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "xadj not monotone at vertex {v}"
                )));
            }
            for &u in &adjncy[xadj[v]..xadj[v + 1]] {
                if u as usize >= n {
                    return Err(SparseError::InvalidStructure(format!(
                        "neighbour {u} out of range for {n} vertices"
                    )));
                }
                if u as usize == v {
                    return Err(SparseError::InvalidStructure(format!(
                        "self-loop at vertex {v}"
                    )));
                }
            }
        }
        // Verify symmetry with a degree-count matching argument:
        // build reverse counts and compare.
        let mut seen = std::collections::HashSet::new();
        for v in 0..n {
            for &u in &adjncy[xadj[v]..xadj[v + 1]] {
                seen.insert((v as u32, u));
            }
        }
        for &(v, u) in seen.iter() {
            if !seen.contains(&(u, v)) {
                return Err(SparseError::InvalidStructure(format!(
                    "edge ({v}, {u}) has no reverse"
                )));
            }
        }
        let nedges = adjncy.len();
        Ok(Graph {
            xadj,
            adjncy,
            vwgt: vec![1; n],
            ewgt: vec![1; nedges],
        })
    }

    /// Build from raw parts including weights, without symmetry
    /// verification (used by the coarsener where structure is correct by
    /// construction).
    pub fn from_parts_unchecked(
        xadj: Vec<usize>,
        adjncy: Vec<u32>,
        vwgt: Vec<i64>,
        ewgt: Vec<i64>,
    ) -> Self {
        debug_assert_eq!(xadj.len(), vwgt.len() + 1);
        debug_assert_eq!(adjncy.len(), ewgt.len());
        debug_assert_eq!(*xadj.last().unwrap(), adjncy.len());
        Graph {
            xadj,
            adjncy,
            vwgt,
            ewgt,
        }
    }

    /// The undirected graph of a structurally symmetric square matrix:
    /// vertices are rows/columns, edges are off-diagonal nonzeros.
    ///
    /// If the pattern is unsymmetric, it is symmetrised as `A + Aᵀ`
    /// first, matching the paper's §3.3 policy for RCM/AMD/ND/GP.
    pub fn from_matrix(a: &CsrMatrix) -> Result<Self, SparseError> {
        if !a.is_square() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        if is_structurally_symmetric(a) {
            Graph::from_symmetric_matrix(a)
        } else {
            Graph::from_symmetric_matrix(&symmetrize_pattern(a)?)
        }
    }

    /// Like [`Graph::from_matrix`] for a matrix the caller already
    /// knows to be structurally symmetric — skips the symmetry check
    /// (itself a full transpose) and the symmetrisation. Callers that
    /// symmetrise explicitly (e.g. the parallel reordering path) use
    /// this to avoid paying for the transpose twice.
    ///
    /// The pattern is *not* re-verified; an unsymmetric input yields a
    /// graph whose adjacency is not symmetric, which the traversals in
    /// this crate do not support.
    pub fn from_symmetric_matrix(m: &CsrMatrix) -> Result<Self, SparseError> {
        if !m.is_square() {
            return Err(SparseError::NotSquare {
                nrows: m.nrows(),
                ncols: m.ncols(),
            });
        }
        let n = m.nrows();
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0usize);
        let mut adjncy = Vec::with_capacity(m.nnz());
        for v in 0..n {
            let (cols, _) = m.row(v);
            for &c in cols {
                if c as usize != v {
                    adjncy.push(c);
                }
            }
            xadj.push(adjncy.len());
        }
        let nedges = adjncy.len();
        Ok(Graph {
            xadj,
            adjncy,
            vwgt: vec![1; n],
            ewgt: vec![1; nedges],
        })
    }

    /// Like [`Graph::from_matrix`], but weighting each vertex by the
    /// number of nonzeros in the corresponding matrix row (the
    /// nnz-balanced partitioning variant discussed in §3.3).
    pub fn from_matrix_nnz_weighted(a: &CsrMatrix) -> Result<Self, SparseError> {
        let mut g = Graph::from_matrix(a)?;
        for v in 0..g.num_vertices() {
            g.vwgt[v] = a.row_nnz(v).max(1) as i64;
        }
        Ok(g)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges (each stored twice internally).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// The adjacency list of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Neighbour/edge-weight pairs of vertex `v`.
    #[inline]
    pub fn neighbors_weighted(&self, v: usize) -> impl Iterator<Item = (u32, i64)> + '_ {
        let lo = self.xadj[v];
        let hi = self.xadj[v + 1];
        self.adjncy[lo..hi]
            .iter()
            .zip(self.ewgt[lo..hi].iter())
            .map(|(&u, &w)| (u, w))
    }

    /// Degree (number of adjacent vertices) of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Vertex weight of `v`.
    #[inline]
    pub fn vertex_weight(&self, v: usize) -> i64 {
        self.vwgt[v]
    }

    /// All vertex weights.
    #[inline]
    pub fn vertex_weights(&self) -> &[i64] {
        &self.vwgt
    }

    /// Total vertex weight.
    pub fn total_vertex_weight(&self) -> i64 {
        self.vwgt.iter().sum()
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_edge_weight(&self) -> i64 {
        self.ewgt.iter().sum::<i64>() / 2
    }

    /// The adjacency offsets array.
    #[inline]
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// The adjacency array.
    #[inline]
    pub fn adjncy(&self) -> &[u32] {
        &self.adjncy
    }

    /// Edge weights, parallel to [`Graph::adjncy`].
    #[inline]
    pub fn edge_weights(&self) -> &[i64] {
        &self.ewgt
    }

    /// Extract the vertex-induced subgraph on `vertices`, returning the
    /// subgraph and the mapping `local -> global`.
    pub fn subgraph(&self, vertices: &[u32]) -> (Graph, Vec<u32>) {
        let mut global_to_local = std::collections::HashMap::with_capacity(vertices.len());
        for (local, &v) in vertices.iter().enumerate() {
            global_to_local.insert(v, local as u32);
        }
        let mut xadj = Vec::with_capacity(vertices.len() + 1);
        xadj.push(0usize);
        let mut adjncy = Vec::new();
        let mut ewgt = Vec::new();
        let mut vwgt = Vec::with_capacity(vertices.len());
        for &v in vertices {
            for (u, w) in self.neighbors_weighted(v as usize) {
                if let Some(&lu) = global_to_local.get(&u) {
                    adjncy.push(lu);
                    ewgt.push(w);
                }
            }
            xadj.push(adjncy.len());
            vwgt.push(self.vwgt[v as usize]);
        }
        (
            Graph {
                xadj,
                adjncy,
                vwgt,
                ewgt,
            },
            vertices.to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    /// A path graph 0-1-2-3 as a symmetric matrix with diagonal.
    fn path4() -> CsrMatrix {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 2.0);
        }
        for i in 0..3 {
            coo.push_symmetric(i, i + 1, -1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn from_matrix_drops_diagonal() {
        let g = Graph::from_matrix(&path4()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn from_unsymmetric_matrix_symmetrises() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0); // only one direction
        coo.push(2, 0, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let g = Graph::from_matrix(&a).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn nnz_weighted_vertices() {
        let a = path4();
        let g = Graph::from_matrix_nnz_weighted(&a).unwrap();
        assert_eq!(g.vertex_weight(0), 2); // row 0 has 2 nnz
        assert_eq!(g.vertex_weight(1), 3);
        assert_eq!(g.total_vertex_weight(), 2 + 3 + 3 + 2);
    }

    #[test]
    fn from_adjacency_validates() {
        // Valid triangle.
        let g = Graph::from_adjacency(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1]).unwrap();
        assert_eq!(g.num_edges(), 3);
        // Self-loop rejected.
        assert!(Graph::from_adjacency(vec![0, 1], vec![0]).is_err());
        // Asymmetric rejected.
        assert!(Graph::from_adjacency(vec![0, 1, 1], vec![1]).is_err());
        // Out-of-range neighbour rejected.
        assert!(Graph::from_adjacency(vec![0, 1, 2], vec![5, 0]).is_err());
    }

    #[test]
    fn rectangular_matrix_rejected() {
        let coo = CooMatrix::new(2, 3);
        let a = CsrMatrix::from_coo(&coo);
        assert!(Graph::from_matrix(&a).is_err());
    }

    #[test]
    fn subgraph_extraction() {
        let g = Graph::from_matrix(&path4()).unwrap();
        let (sg, map) = g.subgraph(&[1, 2, 3]);
        assert_eq!(sg.num_vertices(), 3);
        // Edges 1-2 and 2-3 survive; edge 0-1 is cut.
        assert_eq!(sg.num_edges(), 2);
        assert_eq!(map, vec![1, 2, 3]);
        assert_eq!(sg.neighbors(0), &[1]); // local 0 = global 1, neighbour local 1 = global 2
    }

    #[test]
    fn weighted_iteration() {
        let g = Graph::from_matrix(&path4()).unwrap();
        let pairs: Vec<_> = g.neighbors_weighted(1).collect();
        assert_eq!(pairs, vec![(0, 1), (2, 1)]);
        assert_eq!(g.total_edge_weight(), 3);
    }
}
