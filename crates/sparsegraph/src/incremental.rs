//! Incremental connected-component bookkeeping across structural
//! deltas.
//!
//! The reordering pipeline decomposes every matrix into connected
//! components and orders each independently. When an edge delta
//! arrives, recomputing the full component structure from scratch is
//! wasteful: only the components containing a touched endpoint can
//! change. [`IncrementalComponents`] keeps the component partition
//! alive across deltas — the flat `comp_of` array is a fully
//! path-compressed union-find forest whose canonical representative is
//! each component's **minimum vertex id** (the same canonical key
//! [`connected_components`](crate::connected_components) produces) —
//! and [`IncrementalComponents::apply_delta`] re-scans *only* the
//! touched components with a scope-bounded BFS, which handles edge
//! additions (merges), removals (splits) and internal rewires
//! uniformly.
//!
//! The boundedness argument relies on the delta contract that the
//! touched set contains **both endpoints** of every changed edge
//! (`sparsemat::DeltaReport::touched_rows`): a post-delta component
//! that overlaps a touched component cannot reach outside the union of
//! touched components' members, because crossing into an untouched
//! component would require a changed edge whose far endpoint was — by
//! the contract — touched.

use crate::components::connected_components;
use crate::graph::Graph;
use std::collections::BTreeMap;

/// Connected components maintained incrementally across edge deltas.
#[derive(Debug, Clone)]
pub struct IncrementalComponents {
    /// Component label per vertex; the label is the component's
    /// minimum member id (fully compressed union-find forest).
    comp_of: Vec<u32>,
    /// Label → members, sorted ascending (so `members[0] == label`).
    members: BTreeMap<u32, Vec<u32>>,
}

/// What one [`IncrementalComponents::apply_delta`] call changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComponentDelta {
    /// Post-delta labels of every component overlapping the re-scanned
    /// scope. These are the *dirty* components: their subgraph may have
    /// changed even when their membership did not (an edge rewired
    /// inside a component keeps its members and label).
    pub dirty: Vec<u32>,
    /// Pre-delta labels that no longer exist after the re-scan.
    pub retired: Vec<u32>,
    /// Vertices visited by the bounded re-scan (the work actually
    /// done — compare against `num_vertices` for the dirty fraction).
    pub rescanned: usize,
}

impl IncrementalComponents {
    /// Build the initial partition from a graph by union-find: union
    /// the endpoints of every edge, always rooting at the smaller id.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], v: u32) -> u32 {
            let mut root = v;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            // Path compression.
            let mut cur = v;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for u in 0..n {
            for &w in g.neighbors(u) {
                let ru = find(&mut parent, u as u32);
                let rw = find(&mut parent, w);
                if ru != rw {
                    // Union by minimum id keeps roots canonical.
                    let (lo, hi) = (ru.min(rw), ru.max(rw));
                    parent[hi as usize] = lo;
                }
            }
        }
        let mut comp_of = vec![0u32; n];
        let mut members: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for v in 0..n {
            let root = find(&mut parent, v as u32);
            comp_of[v] = root;
            members.entry(root).or_default().push(v as u32);
        }
        IncrementalComponents { comp_of, members }
    }

    /// Rebuild the structure from an existing partition (for example
    /// the per-component ranges of a cached ordering). Each part may be
    /// in any order; membership must exactly cover `0..n`.
    pub fn from_partition<I, P>(n: usize, parts: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: IntoIterator<Item = u32>,
    {
        let mut comp_of = vec![u32::MAX; n];
        let mut members: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for part in parts {
            let mut sorted: Vec<u32> = part.into_iter().collect();
            sorted.sort_unstable();
            assert!(!sorted.is_empty(), "empty component part");
            let label = sorted[0];
            for &v in &sorted {
                assert!(
                    (v as usize) < n && comp_of[v as usize] == u32::MAX,
                    "partition must cover each vertex exactly once"
                );
                comp_of[v as usize] = label;
            }
            members.insert(label, sorted);
        }
        assert!(
            comp_of.iter().all(|&c| c != u32::MAX),
            "partition must cover every vertex"
        );
        IncrementalComponents { comp_of, members }
    }

    /// Number of vertices tracked.
    pub fn num_vertices(&self) -> usize {
        self.comp_of.len()
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// The component label (minimum member id) of vertex `v`.
    pub fn label_of(&self, v: usize) -> u32 {
        self.comp_of[v]
    }

    /// Sorted members of the component with the given label.
    pub fn members(&self, label: u32) -> Option<&[u32]> {
        self.members.get(&label).map(Vec::as_slice)
    }

    /// All component labels, ascending.
    pub fn labels(&self) -> impl Iterator<Item = u32> + '_ {
        self.members.keys().copied()
    }

    /// Update the partition after a structural delta to the graph.
    ///
    /// `g` is the **post-delta** graph and `touched` the endpoints of
    /// every changed edge (see the module docs for why both endpoints
    /// are required). Only the components containing a touched vertex
    /// are re-scanned; everything else is carried over untouched.
    pub fn apply_delta(&mut self, g: &Graph, touched: &[u32]) -> ComponentDelta {
        assert_eq!(
            g.num_vertices(),
            self.comp_of.len(),
            "deltas are structural: the vertex count never changes"
        );
        let mut delta = ComponentDelta::default();
        if touched.is_empty() {
            return delta;
        }

        // Scope: the union of the touched components' members.
        let mut old_labels: Vec<u32> = touched.iter().map(|&t| self.comp_of[t as usize]).collect();
        old_labels.sort_unstable();
        old_labels.dedup();
        let mut scope: Vec<u32> = Vec::new();
        for &label in &old_labels {
            scope.extend_from_slice(&self.members[&label]);
            self.members.remove(&label);
        }
        scope.sort_unstable();
        delta.rescanned = scope.len();
        let mut in_scope = vec![false; self.comp_of.len()];
        for &v in &scope {
            in_scope[v as usize] = true;
        }

        // Bounded BFS re-scan: seeds are taken in ascending order, so
        // each seed is the minimum of its (new) component and therefore
        // its canonical label. Neighbours outside the scope are
        // unreachable through changed edges (contract above), so the
        // traversal never escapes.
        let mut visited = vec![false; self.comp_of.len()];
        let mut queue: Vec<u32> = Vec::new();
        for &seed in &scope {
            if visited[seed as usize] {
                continue;
            }
            visited[seed as usize] = true;
            queue.clear();
            queue.push(seed);
            let mut group: Vec<u32> = Vec::new();
            let mut head = 0usize;
            while head < queue.len() {
                let v = queue[head];
                head += 1;
                group.push(v);
                for &w in g.neighbors(v as usize) {
                    debug_assert!(
                        in_scope[w as usize],
                        "scope escape: edge ({v}, {w}) leaves the touched components — \
                         the delta's touched set is missing an endpoint"
                    );
                    if in_scope[w as usize] && !visited[w as usize] {
                        visited[w as usize] = true;
                        queue.push(w);
                    }
                }
            }
            group.sort_unstable();
            for &v in &group {
                self.comp_of[v as usize] = seed;
            }
            delta.dirty.push(seed);
            self.members.insert(seed, group);
        }

        delta.retired = old_labels
            .into_iter()
            .filter(|l| !delta.dirty.contains(l))
            .collect();
        delta
    }

    /// Assert the maintained partition equals a fresh recomputation —
    /// the correctness oracle used by tests.
    pub fn assert_matches(&self, g: &Graph) {
        let fresh = connected_components(g);
        assert_eq!(self.count(), fresh.count(), "component count diverged");
        for m in &fresh.members {
            let label = m[0];
            let mut sorted = m.clone();
            sorted.sort_unstable();
            assert_eq!(
                self.members(label),
                Some(sorted.as_slice()),
                "component {label} diverged from the fresh scan"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{CooMatrix, CsrMatrix, EdgeOp};

    fn graph_of(a: &CsrMatrix) -> Graph {
        Graph::from_symmetric_matrix(a).expect("symmetric test matrix")
    }

    /// Three paths: {0,1,2}, {3,4}, {5}.
    fn three_components() -> CsrMatrix {
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 1.0);
        }
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(1, 2, 1.0);
        coo.push_symmetric(3, 4, 1.0);
        CsrMatrix::from_coo(&coo)
    }

    fn sym_ops(pairs: &[(usize, usize)], add: bool) -> Vec<EdgeOp> {
        pairs
            .iter()
            .flat_map(|&(i, j)| {
                if add {
                    vec![
                        EdgeOp::Add {
                            row: i,
                            col: j,
                            value: 1.0,
                        },
                        EdgeOp::Add {
                            row: j,
                            col: i,
                            value: 1.0,
                        },
                    ]
                } else {
                    vec![
                        EdgeOp::Remove { row: i, col: j },
                        EdgeOp::Remove { row: j, col: i },
                    ]
                }
            })
            .collect()
    }

    #[test]
    fn from_graph_matches_fresh_scan() {
        let a = three_components();
        let inc = IncrementalComponents::from_graph(&graph_of(&a));
        assert_eq!(inc.count(), 3);
        assert_eq!(inc.members(0), Some(&[0u32, 1, 2][..]));
        assert_eq!(inc.members(3), Some(&[3u32, 4][..]));
        assert_eq!(inc.members(5), Some(&[5u32][..]));
        inc.assert_matches(&graph_of(&a));
    }

    #[test]
    fn merge_via_added_edge() {
        let mut a = three_components();
        let mut inc = IncrementalComponents::from_graph(&graph_of(&a));
        let report = a.apply_delta(&sym_ops(&[(2, 3)], true)).unwrap();
        let g = graph_of(&a);
        let delta = inc.apply_delta(&g, &report.touched_rows);
        assert_eq!(delta.dirty, vec![0]);
        assert_eq!(delta.retired, vec![3]);
        assert_eq!(delta.rescanned, 5, "component {{5}} was not re-scanned");
        assert_eq!(inc.count(), 2);
        inc.assert_matches(&g);
    }

    #[test]
    fn split_via_removed_edge() {
        let mut a = three_components();
        let mut inc = IncrementalComponents::from_graph(&graph_of(&a));
        let report = a.apply_delta(&sym_ops(&[(1, 2)], false)).unwrap();
        let g = graph_of(&a);
        let delta = inc.apply_delta(&g, &report.touched_rows);
        assert_eq!(delta.dirty, vec![0, 2]);
        assert!(delta.retired.is_empty());
        assert_eq!(inc.count(), 4);
        assert_eq!(inc.members(2), Some(&[2u32][..]));
        inc.assert_matches(&g);
    }

    #[test]
    fn internal_rewire_keeps_membership_but_reports_dirty() {
        let mut a = three_components();
        let mut inc = IncrementalComponents::from_graph(&graph_of(&a));
        // Add a chord inside {0,1,2}: same members, new subgraph.
        let report = a.apply_delta(&sym_ops(&[(0, 2)], true)).unwrap();
        let g = graph_of(&a);
        let delta = inc.apply_delta(&g, &report.touched_rows);
        assert_eq!(delta.dirty, vec![0]);
        assert!(delta.retired.is_empty());
        assert_eq!(delta.rescanned, 3);
        inc.assert_matches(&g);
    }

    #[test]
    fn from_partition_round_trips() {
        let a = three_components();
        let g = graph_of(&a);
        let fresh = IncrementalComponents::from_graph(&g);
        let parts: Vec<Vec<u32>> = fresh
            .labels()
            .map(|l| fresh.members(l).unwrap().to_vec())
            .collect();
        let rebuilt = IncrementalComponents::from_partition(6, parts);
        rebuilt.assert_matches(&g);
        assert_eq!(rebuilt.label_of(4), 3);
    }

    #[test]
    fn randomised_deltas_track_fresh_scans() {
        // A chain of random-ish deltas over a block-diagonal corpus
        // matrix; after every delta the incremental partition must equal
        // a from-scratch recomputation.
        let mut a = corpus_like(5, 12);
        let mut inc = IncrementalComponents::from_graph(&graph_of(&a));
        let mut state = 0x9E37u64;
        for step in 0..40 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let n = a.nrows();
            let i = (state >> 33) as usize % n;
            let j = (state >> 17) as usize % n;
            if i == j {
                continue;
            }
            let add = step % 3 != 0;
            let report = a.apply_delta(&sym_ops(&[(i, j)], add)).unwrap();
            if !report.changed() {
                continue;
            }
            let g = graph_of(&a);
            let delta = inc.apply_delta(&g, &report.touched_rows);
            assert!(!delta.dirty.is_empty());
            inc.assert_matches(&g);
        }
    }

    /// Block-diagonal with no inter-block coupling: `blocks` cliques of
    /// size `bs` (deterministic, no corpus dependency).
    fn corpus_like(blocks: usize, bs: usize) -> CsrMatrix {
        let n = blocks * bs;
        let mut coo = CooMatrix::new(n, n);
        for b in 0..blocks {
            let base = b * bs;
            for i in 0..bs {
                coo.push(base + i, base + i, 1.0);
                if i + 1 < bs {
                    coo.push_symmetric(base + i, base + i + 1, -1.0);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn empty_touched_set_is_a_no_op() {
        let a = three_components();
        let g = graph_of(&a);
        let mut inc = IncrementalComponents::from_graph(&g);
        let delta = inc.apply_delta(&g, &[]);
        assert_eq!(delta, ComponentDelta::default());
        inc.assert_matches(&g);
    }
}
