#![allow(clippy::needless_range_loop)]

//! Graph and hypergraph substrate for sparse matrix reordering.
//!
//! Reordering algorithms operate on the *undirected graph* of a
//! structurally symmetric sparse matrix: one vertex per row/column, one
//! edge per symmetric off-diagonal nonzero pair. Hypergraph-based
//! reordering uses the *column-net model* instead: one vertex per row,
//! one net (hyperedge) per column, with the net containing every row
//! that has a nonzero in that column.
//!
//! This crate provides both models plus the graph traversal machinery
//! the reorderings need: breadth-first search with level sets, the
//! George–Liu pseudo-peripheral vertex finder, and connected components.

mod bfs;
mod components;
mod graph;
mod hypergraph;
mod incremental;
mod peripheral;

pub use bfs::{
    bfs_levels, bfs_levels_on, bfs_levels_with, expand_frontier_on, expand_frontier_with,
    BfsLevels, FrontierScratch, DEFAULT_PAR_FRONTIER_MIN,
};
pub use components::{connected_components, Components};
pub use graph::Graph;
pub use hypergraph::Hypergraph;
pub use incremental::{ComponentDelta, IncrementalComponents};
pub use peripheral::{
    pseudo_peripheral_vertex, pseudo_peripheral_vertex_on, pseudo_peripheral_vertex_with,
};
