use sparsemat::CsrMatrix;

/// A hypergraph in pin-array form, with the dual (vertex → nets)
/// incidence also stored.
///
/// In the *column-net model* used by the paper's HP reordering (§3.3),
/// the rows of a matrix become vertices and the columns become nets: net
/// `j` contains every row with a nonzero in column `j`. Minimising the
/// cut-net metric then minimises the number of columns whose nonzeros
/// straddle a part boundary.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    /// Pins of each net: `pins[xpins[j]..xpins[j+1]]` are the vertices of net `j`.
    xpins: Vec<usize>,
    pins: Vec<u32>,
    /// Nets of each vertex: `nets[xnets[v]..xnets[v+1]]` are the nets containing `v`.
    xnets: Vec<usize>,
    nets: Vec<u32>,
    /// Vertex weights (unit by default; nnz-per-row for balance studies).
    vwgt: Vec<i64>,
    /// Net weights (unit: cut-net metric counts each cut net once).
    nwgt: Vec<i64>,
}

impl Hypergraph {
    /// Build the column-net hypergraph of a matrix: vertices = rows,
    /// nets = columns.
    pub fn column_net(a: &CsrMatrix) -> Hypergraph {
        let nverts = a.nrows();
        let nnets = a.ncols();
        // vertex -> nets is exactly the CSR structure.
        let xnets: Vec<usize> = a.rowptr().to_vec();
        let nets: Vec<u32> = a.colidx().to_vec();
        // net -> pins is the CSC structure.
        let mut count = vec![0usize; nnets + 1];
        for &c in a.colidx() {
            count[c as usize + 1] += 1;
        }
        for j in 0..nnets {
            count[j + 1] += count[j];
        }
        let xpins = count.clone();
        let mut pins = vec![0u32; a.nnz()];
        let mut next: Vec<usize> = count[..nnets].to_vec();
        for i in 0..nverts {
            let (cols, _) = a.row(i);
            for &c in cols {
                pins[next[c as usize]] = i as u32;
                next[c as usize] += 1;
            }
        }
        Hypergraph {
            xpins,
            pins,
            xnets,
            nets,
            vwgt: vec![1; nverts],
            nwgt: vec![1; nnets],
        }
    }

    /// Build from raw parts (used by the multilevel coarsener).
    pub fn from_parts_unchecked(
        xpins: Vec<usize>,
        pins: Vec<u32>,
        xnets: Vec<usize>,
        nets: Vec<u32>,
        vwgt: Vec<i64>,
        nwgt: Vec<i64>,
    ) -> Self {
        debug_assert_eq!(xpins.len(), nwgt.len() + 1);
        debug_assert_eq!(xnets.len(), vwgt.len() + 1);
        Hypergraph {
            xpins,
            pins,
            xnets,
            nets,
            vwgt,
            nwgt,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.nwgt.len()
    }

    /// Total number of pins.
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// The vertices of net `j`.
    #[inline]
    pub fn net_pins(&self, j: usize) -> &[u32] {
        &self.pins[self.xpins[j]..self.xpins[j + 1]]
    }

    /// The nets containing vertex `v`.
    #[inline]
    pub fn vertex_nets(&self, v: usize) -> &[u32] {
        &self.nets[self.xnets[v]..self.xnets[v + 1]]
    }

    /// Vertex weight.
    #[inline]
    pub fn vertex_weight(&self, v: usize) -> i64 {
        self.vwgt[v]
    }

    /// All vertex weights.
    #[inline]
    pub fn vertex_weights(&self) -> &[i64] {
        &self.vwgt
    }

    /// Net weight.
    #[inline]
    pub fn net_weight(&self, j: usize) -> i64 {
        self.nwgt[j]
    }

    /// Total vertex weight.
    pub fn total_vertex_weight(&self) -> i64 {
        self.vwgt.iter().sum()
    }

    /// The cut-net objective for a given part assignment: total weight
    /// of nets whose pins span more than one part.
    ///
    /// This is the PaToH "cut-net" metric the paper selects for HP.
    pub fn cut_net(&self, part_of: &[u32]) -> i64 {
        assert_eq!(part_of.len(), self.num_vertices());
        let mut cut = 0i64;
        for j in 0..self.num_nets() {
            let pins = self.net_pins(j);
            if pins.is_empty() {
                continue;
            }
            let first = part_of[pins[0] as usize];
            if pins.iter().any(|&p| part_of[p as usize] != first) {
                cut += self.nwgt[j];
            }
        }
        cut
    }

    /// The connectivity-1 objective: `Σ_nets (λ_j − 1) · w_j`, where
    /// `λ_j` is the number of distinct parts net `j` touches. PaToH's
    /// alternative metric; corresponds to communication volume.
    pub fn connectivity_minus_one(&self, part_of: &[u32], num_parts: usize) -> i64 {
        assert_eq!(part_of.len(), self.num_vertices());
        let mut mark = vec![u32::MAX; num_parts];
        let mut total = 0i64;
        for j in 0..self.num_nets() {
            let mut lambda = 0i64;
            for &p in self.net_pins(j) {
                let part = part_of[p as usize] as usize;
                if mark[part] != j as u32 {
                    mark[part] = j as u32;
                    lambda += 1;
                }
            }
            if lambda > 1 {
                total += (lambda - 1) * self.nwgt[j];
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn sample() -> CsrMatrix {
        // [ x x 0 ]
        // [ 0 x x ]
        // [ x 0 x ]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(1, 2, 1.0);
        coo.push(2, 0, 1.0);
        coo.push(2, 2, 1.0);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn column_net_structure() {
        let h = Hypergraph::column_net(&sample());
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_nets(), 3);
        assert_eq!(h.num_pins(), 6);
        assert_eq!(h.net_pins(0), &[0, 2]); // column 0 touches rows 0 and 2
        assert_eq!(h.net_pins(1), &[0, 1]);
        assert_eq!(h.net_pins(2), &[1, 2]);
        assert_eq!(h.vertex_nets(0), &[0, 1]);
    }

    #[test]
    fn cut_net_counts_straddling_nets() {
        let h = Hypergraph::column_net(&sample());
        // All in one part: no cut.
        assert_eq!(h.cut_net(&[0, 0, 0]), 0);
        // Rows {0} vs {1,2}: nets 0 and 1 are cut, net 2 internal.
        assert_eq!(h.cut_net(&[0, 1, 1]), 2);
        // All separate: every net cut.
        assert_eq!(h.cut_net(&[0, 1, 2]), 3);
    }

    #[test]
    fn connectivity_metric() {
        let h = Hypergraph::column_net(&sample());
        assert_eq!(h.connectivity_minus_one(&[0, 0, 0], 1), 0);
        // Each cut net spans exactly 2 parts here, so conn-1 == cut-net.
        assert_eq!(h.connectivity_minus_one(&[0, 1, 1], 2), 2);
        assert_eq!(h.connectivity_minus_one(&[0, 1, 2], 3), 3);
    }

    #[test]
    fn empty_column_makes_empty_net() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let h = Hypergraph::column_net(&a);
        assert_eq!(h.net_pins(1), &[] as &[u32]);
        assert_eq!(h.cut_net(&[0, 1]), 1); // only net 0 is cut
    }
}
