//! Property tests for the engine: a cache hit must be indistinguishable
//! from a fresh computation, for every algorithm in the study.

use engine::{AlgoSpec, Engine, EngineConfig, MatrixHandle};
use proptest::prelude::*;
use sparsemat::{CooMatrix, CsrMatrix};

/// Strategy: a random connected-ish square matrix (ring + random
/// chords) so every reordering algorithm has a sensible input.
fn matrix_strategy() -> impl Strategy<Value = CsrMatrix> {
    (
        4usize..28,
        proptest::collection::vec((0usize..784, 0usize..784), 0..60),
    )
        .prop_map(|(n, chords)| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 4.0);
                coo.push_symmetric(i, (i + 1) % n, -1.0);
            }
            for (a, b) in chords {
                let (i, j) = (a % n, b % n);
                if i != j {
                    coo.push_symmetric(i, j, -0.5);
                }
            }
            CsrMatrix::from_coo(&coo)
        })
}

fn test_engine() -> Engine {
    Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        cache_shards: 4,
        plan_cache_capacity: 16,
        persist_dir: None,
        registry: Some(telemetry::Registry::new_arc()),
        ..EngineConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The serving contract: for every algorithm, the cached answer is
    /// bit-identical to what a fresh, engine-free computation returns.
    #[test]
    fn cache_hit_equals_fresh_computation(a in matrix_strategy()) {
        let engine = test_engine();
        let handle = MatrixHandle::from_matrix(a.clone());
        let mut specs = vec![AlgoSpec::Original];
        specs.extend(AlgoSpec::study_suite(4, 8));
        for spec in specs {
            let first = engine.get(&handle, spec).unwrap();
            let cached = engine.get(&handle, spec).unwrap();
            // Second call is a hit (same Arc, not just equal contents).
            prop_assert!(
                std::sync::Arc::ptr_eq(&first, &cached),
                "{} second call did not hit the cache",
                spec.name()
            );
            let fresh = spec.instantiate().compute(&a).unwrap();
            prop_assert_eq!(
                cached.perm.order(),
                fresh.perm.order(),
                "{} cached permutation differs from fresh computation",
                spec.name()
            );
            prop_assert_eq!(cached.symmetric, fresh.symmetric);
        }
        // Seven algorithms, each computed exactly once.
        let stats = engine.stats();
        prop_assert_eq!(stats.jobs_executed, 7);
        prop_assert_eq!(stats.cache.hits, 7);
    }

    /// The content address ignores construction history: a matrix
    /// rebuilt from shuffled triplets is the same cache entry.
    #[test]
    fn content_address_ignores_triplet_order(a in matrix_strategy()) {
        let mut triplets: Vec<(usize, usize, f64)> = a.iter().collect();
        triplets.reverse();
        let mut coo = CooMatrix::new(a.nrows(), a.ncols());
        for (i, j, v) in triplets {
            coo.push(i, j, v);
        }
        let b = CsrMatrix::from_coo(&coo);
        prop_assert_eq!(a.content_hash(), b.content_hash());

        // And the engine treats them as one key.
        let engine = test_engine();
        let ha = MatrixHandle::from_matrix(a);
        let hb = MatrixHandle::from_matrix(b);
        let ra = engine.get(&ha, AlgoSpec::Rcm).unwrap();
        let rb = engine.get(&hb, AlgoSpec::Rcm).unwrap();
        prop_assert!(std::sync::Arc::ptr_eq(&ra, &rb));
        prop_assert_eq!(engine.stats().jobs_executed, 1);
    }
}
