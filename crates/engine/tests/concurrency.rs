//! Concurrency tests: request coalescing and parallel batch behavior.

use engine::{AlgoSpec, Engine, EngineConfig, MatrixHandle};
use std::sync::Arc;

/// N threads racing to request the same (matrix, algorithm) key must
/// trigger exactly one computation; everyone shares the result.
#[test]
fn concurrent_requests_coalesce_to_one_computation() {
    // One worker and a non-trivial matrix maximise the in-flight
    // window, but the "exactly once" guarantee holds regardless of
    // interleaving: late arrivals are cache hits instead.
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 16,
        cache_shards: 1,
        plan_cache_capacity: 16,
        persist_dir: None,
        registry: Some(telemetry::Registry::new_arc()),
        ..EngineConfig::default()
    }));
    let handle = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(40, 40), 5));
    let spec = AlgoSpec::Hp { parts: 16 };

    const THREADS: usize = 8;
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let handle = handle.clone();
                scope.spawn(move || engine.get(&handle, spec).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All threads got the same shared result.
    for r in &results[1..] {
        assert!(Arc::ptr_eq(&results[0], r));
    }

    let stats = engine.stats();
    assert_eq!(
        stats.jobs_executed, 1,
        "computation must run exactly once; stats: {stats}"
    );
    assert_eq!(stats.submitted, THREADS as u64);
    // Every request besides the one that computed was amortised, either
    // by coalescing onto the in-flight job or by hitting the cache.
    assert_eq!(
        stats.coalesced + stats.cache.hits,
        (THREADS - 1) as u64,
        "stats: {stats}"
    );
}

/// A parallel batch over many distinct keys completes fully and
/// deduplicates within the batch.
#[test]
fn parallel_batch_over_distinct_keys() {
    let engine = Engine::new(EngineConfig {
        workers: 4,
        queue_capacity: 8, // smaller than the batch: exercises back-pressure
        cache_capacity: 256,
        cache_shards: 4,
        plan_cache_capacity: 16,
        persist_dir: None,
        registry: Some(telemetry::Registry::new_arc()),
        ..EngineConfig::default()
    });
    let matrices: Vec<MatrixHandle> = (0..6)
        .map(|s| MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(12, 12), s)))
        .collect();
    let suite = AlgoSpec::study_suite(4, 8);

    // Two passes over (matrix x algorithm): 72 requests, 36 unique.
    let requests: Vec<_> = (0..2)
        .flat_map(|_| {
            matrices
                .iter()
                .flat_map(|m| suite.iter().map(move |&a| (m, a)))
        })
        .collect();
    let tickets = engine.submit_batch(requests);
    assert_eq!(tickets.len(), 72);
    for t in tickets {
        t.wait().unwrap();
    }

    let stats = engine.stats();
    assert_eq!(stats.jobs_executed, 36, "stats: {stats}");
    assert_eq!(
        stats.cache.hits + stats.coalesced,
        36,
        "every duplicate must be amortised; stats: {stats}"
    );
    assert!(stats.amortised_fraction() >= 0.5 - 1e-9);
}

/// Eviction under a tiny cache still serves correct results — entries
/// are recomputed when they come back.
#[test]
fn tiny_cache_recomputes_after_eviction() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 2,
        cache_shards: 1,
        plan_cache_capacity: 16,
        persist_dir: None,
        registry: Some(telemetry::Registry::new_arc()),
        ..EngineConfig::default()
    });
    let handle = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(10, 10), 1));
    let suite = AlgoSpec::study_suite(2, 4);

    let first: Vec<_> = suite
        .iter()
        .map(|&a| engine.get(&handle, a).unwrap())
        .collect();
    // The suite (6 keys) overflows the 2-entry cache, so re-requesting
    // from the start recomputes, with identical results (determinism).
    let second: Vec<_> = suite
        .iter()
        .map(|&a| engine.get(&handle, a).unwrap())
        .collect();
    for (a, b) in first.iter().zip(second.iter()) {
        assert_eq!(a.perm.order(), b.perm.order());
        assert_eq!(a.symmetric, b.symmetric);
    }
    let stats = engine.stats();
    assert!(stats.cache.evictions > 0, "stats: {stats}");
    assert!(stats.jobs_executed > 6, "stats: {stats}");
}
