//! The plan cache: planned SpMV kernels keyed by
//! `(matrix content hash, kernel kind, thread count)`.
//!
//! Sitting next to the ordering cache, this closes the second
//! amortisation loop of the serving story: a reordering is computed
//! once per matrix, and the execution plan (row split, nonzero split,
//! or merge path) is likewise computed once per (matrix, kernel,
//! threads) and shared by every subsequent request. Cached kernels
//! hold the matrix by `Arc` (see [`spmv::Kernel::matrix`]), so handing
//! a plan out shares the payload instead of cloning it.

use sparsemat::CsrMatrix;
use spmv::{Kernel, KernelKind};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use telemetry::{Counter, Gauge, Registry};

/// Cache key for a planned kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// `CsrMatrix::content_hash()` of the matrix the plan was built for.
    pub matrix_hash: u128,
    /// Kernel family.
    pub kernel: KernelKind,
    /// Requested thread count (the plan's effective count may be
    /// lower; the requested value keys the cache so lookups are exact).
    pub nthreads: usize,
}

impl PlanKey {
    pub fn new(matrix_hash: u128, kernel: KernelKind, nthreads: usize) -> Self {
        PlanKey {
            matrix_hash,
            kernel,
            nthreads,
        }
    }
}

/// The cache's registry metrics (`engine.plans.*`), resolved once at
/// construction so the hot path only touches atomics.
#[derive(Debug)]
struct PlanMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    resident: Arc<Gauge>,
}

impl PlanMetrics {
    fn new(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        PlanMetrics {
            hits: registry.counter_labeled("engine.plans.hits", labels),
            misses: registry.counter_labeled("engine.plans.misses", labels),
            evictions: registry.counter_labeled("engine.plans.evictions", labels),
            resident: registry.gauge_labeled("engine.plans.resident", labels),
        }
    }
}

/// Point-in-time plan-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Plans served from memory.
    pub hits: u64,
    /// Plans built afresh.
    pub misses: u64,
    /// Plans evicted by the LRU policy.
    pub evictions: u64,
}

struct PlanShardState {
    map: HashMap<PlanKey, (Arc<dyn Kernel>, u64)>,
    recency: BTreeMap<u64, PlanKey>,
    tick: u64,
}

/// Exact-LRU cache of planned kernels.
pub struct PlanCache {
    state: Mutex<PlanShardState>,
    capacity: usize,
    metrics: PlanMetrics,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (clamped to ≥ 1),
    /// reporting `engine.plans.*` into `registry`.
    pub fn new_in(registry: &Registry, capacity: usize) -> PlanCache {
        PlanCache::new_labeled_in(registry, capacity, &[])
    }

    /// Like [`PlanCache::new_in`] with `labels` on every series (one
    /// plan cache per serving-tier shard shares the tier's registry).
    pub fn new_labeled_in(
        registry: &Registry,
        capacity: usize,
        labels: &[(&str, &str)],
    ) -> PlanCache {
        PlanCache {
            state: Mutex::new(PlanShardState {
                map: HashMap::new(),
                recency: BTreeMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            metrics: PlanMetrics::new(registry, labels),
        }
    }

    /// Fetch the plan for `key`, building it from `matrix` on a miss.
    /// The returned kernel shares `matrix`'s storage by `Arc`.
    pub fn get_or_plan(&self, key: PlanKey, matrix: &Arc<CsrMatrix>) -> Arc<dyn Kernel> {
        self.get_or_plan_with_status(key, matrix).0
    }

    /// Like [`PlanCache::get_or_plan`], also reporting whether the plan
    /// was served from cache (`true`) or built (`false`) — tracing
    /// wants the outcome without a second counter read.
    pub fn get_or_plan_with_status(
        &self,
        key: PlanKey,
        matrix: &Arc<CsrMatrix>,
    ) -> (Arc<dyn Kernel>, bool) {
        let mut s = self.state.lock().unwrap();
        s.tick += 1;
        let tick = s.tick;
        if let Some((kernel, stamp)) = s.map.get_mut(&key) {
            let kernel = Arc::clone(kernel);
            let old = std::mem::replace(stamp, tick);
            s.recency.remove(&old);
            s.recency.insert(tick, key);
            self.metrics.hits.inc();
            return (kernel, true);
        }
        self.metrics.misses.inc();
        // Planning is O(nnz) at worst but lock-held build keeps the
        // cache simple; plans are tiny compared to reorderings and the
        // engine's worker pool never calls in here.
        let kernel = key.kernel.plan(matrix, key.nthreads);
        s.map.insert(key, (Arc::clone(&kernel), tick));
        s.recency.insert(tick, key);
        self.metrics.resident.set(s.map.len() as i64);
        while s.map.len() > self.capacity {
            let (&old_tick, &old_key) = s.recency.iter().next().expect("recency mirrors map");
            s.recency.remove(&old_tick);
            s.map.remove(&old_key);
            self.metrics.evictions.inc();
            self.metrics.resident.set(s.map.len() as i64);
        }
        (kernel, false)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            evictions: self.metrics.evictions.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh_arc(n: usize) -> Arc<CsrMatrix> {
        Arc::new(corpus::mesh2d(n, n))
    }

    fn cache(capacity: usize) -> PlanCache {
        PlanCache::new_in(&telemetry::Registry::new_arc(), capacity)
    }

    #[test]
    fn second_lookup_is_a_hit_sharing_the_plan() {
        let c = cache(8);
        let a = mesh_arc(10);
        let key = PlanKey::new(a.content_hash(), KernelKind::TwoD, 4);
        let first = c.get_or_plan(key, &a);
        let second = c.get_or_plan(key, &a);
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit must return the cached Arc"
        );
        assert!(
            Arc::ptr_eq(first.matrix(), &a),
            "payload is shared, not cloned"
        );
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn distinct_kinds_and_thread_counts_are_distinct_plans() {
        let c = cache(16);
        let a = mesh_arc(8);
        let h = a.content_hash();
        for kind in KernelKind::all() {
            for t in [1, 2, 4] {
                c.get_or_plan(PlanKey::new(h, kind, t), &a);
            }
        }
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 9));
    }

    #[test]
    fn lru_evicts_the_coldest_plan() {
        let c = cache(2);
        let a = mesh_arc(6);
        let h = a.content_hash();
        let k1 = PlanKey::new(h, KernelKind::OneD, 1);
        let k2 = PlanKey::new(h, KernelKind::OneD, 2);
        let k3 = PlanKey::new(h, KernelKind::OneD, 3);
        c.get_or_plan(k1, &a);
        c.get_or_plan(k2, &a);
        c.get_or_plan(k1, &a); // refresh k1: k2 is now coldest
        c.get_or_plan(k3, &a); // evicts k2
        assert_eq!(c.stats().evictions, 1);
        c.get_or_plan(k1, &a); // still resident
        assert_eq!(c.stats().hits, 2);
        c.get_or_plan(k2, &a); // rebuilt
        assert_eq!(c.stats().misses, 4);
    }
}
