//! Value-level descriptions of the study's reordering algorithms.
//!
//! The cache needs a hashable, comparable key for "which algorithm,
//! with which parameters", which trait objects cannot provide — so the
//! engine speaks [`AlgoSpec`], a plain enum mirroring the constructors
//! in the `reorder` crate, and instantiates the trait object only at
//! compute time.

use reorder::{Amd, Gp, Gray, Hp, Nd, Original, Rcm, ReorderAlgorithm};

/// A reordering algorithm plus its parameters, as a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoSpec {
    /// The identity baseline.
    Original,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// Approximate minimum degree.
    Amd,
    /// Nested dissection.
    Nd,
    /// Graph partitioning with the given part count.
    Gp { parts: usize },
    /// Hypergraph partitioning with the given part count.
    Hp { parts: usize },
    /// Gray code ordering.
    Gray,
}

impl AlgoSpec {
    /// The paper's display name ("RCM", "GP", ...), parameter-free.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoSpec::Original => "Original",
            AlgoSpec::Rcm => "RCM",
            AlgoSpec::Amd => "AMD",
            AlgoSpec::Nd => "ND",
            AlgoSpec::Gp { .. } => "GP",
            AlgoSpec::Hp { .. } => "HP",
            AlgoSpec::Gray => "Gray",
        }
    }

    /// A filesystem- and key-safe token that includes the parameters
    /// (`gp64`, `hp128`, `rcm`, ...). Two specs with equal tokens
    /// compute identical permutations.
    pub fn cache_token(&self) -> String {
        match self {
            AlgoSpec::Original => "original".to_string(),
            AlgoSpec::Rcm => "rcm".to_string(),
            AlgoSpec::Amd => "amd".to_string(),
            AlgoSpec::Nd => "nd".to_string(),
            AlgoSpec::Gp { parts } => format!("gp{parts}"),
            AlgoSpec::Hp { parts } => format!("hp{parts}"),
            AlgoSpec::Gray => "gray".to_string(),
        }
    }

    /// Build the executable algorithm for this spec.
    pub fn instantiate(&self) -> Box<dyn ReorderAlgorithm + Send + Sync> {
        match *self {
            AlgoSpec::Original => Box::new(Original),
            AlgoSpec::Rcm => Box::new(Rcm::default()),
            AlgoSpec::Amd => Box::new(Amd::default()),
            AlgoSpec::Nd => Box::new(Nd::default()),
            AlgoSpec::Gp { parts } => Box::new(Gp::new(parts)),
            AlgoSpec::Hp { parts } => Box::new(Hp::new(parts)),
            AlgoSpec::Gray => Box::new(Gray::default()),
        }
    }

    /// The study's six orderings in the paper's column order, matching
    /// `reorder::all_algorithms(gp_parts, hp_parts)`.
    pub fn study_suite(gp_parts: usize, hp_parts: usize) -> Vec<AlgoSpec> {
        vec![
            AlgoSpec::Rcm,
            AlgoSpec::Amd,
            AlgoSpec::Nd,
            AlgoSpec::Gp { parts: gp_parts },
            AlgoSpec::Hp { parts: hp_parts },
            AlgoSpec::Gray,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_reorder_crate_order() {
        let specs = AlgoSpec::study_suite(16, 128);
        let names: Vec<&str> = specs.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["RCM", "AMD", "ND", "GP", "HP", "Gray"]);
        let algs = reorder::all_algorithms(16, 128);
        for (spec, alg) in specs.iter().zip(algs.iter()) {
            assert_eq!(spec.name(), alg.name());
        }
    }

    #[test]
    fn tokens_encode_parameters() {
        assert_eq!(AlgoSpec::Gp { parts: 64 }.cache_token(), "gp64");
        assert_eq!(AlgoSpec::Hp { parts: 128 }.cache_token(), "hp128");
        assert_ne!(
            AlgoSpec::Gp { parts: 16 }.cache_token(),
            AlgoSpec::Gp { parts: 32 }.cache_token()
        );
        assert_eq!(AlgoSpec::Rcm.cache_token(), "rcm");
    }
}
