//! The engine facade: the batched session API over the cache and the
//! worker pool.

use crate::cache::{CacheStats, CachedOrdering, OrderingCache, OrderingKey};
use crate::plans::{PlanCache, PlanCacheStats, PlanKey};
use crate::pool::{spawn_pool, InFlight, Job, JobTrace, PoolMetrics, WorkerContext};
use crate::AlgoSpec;
use sparsemat::CsrMatrix;
use spmv::{Kernel, KernelKind};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use telemetry::trace::{FlightRecorder, TraceCtx, TraceSpan};
use telemetry::{Counter, Gauge, Histogram, Registry};

/// How many (request id → trace id) pairs the engine remembers for
/// [`Engine::trace_summary`]. Old sampled requests age out of the
/// index alongside their events aging out of the rings.
const TRACED_INDEX_CAP: usize = 128;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads computing reorderings.
    pub workers: usize,
    /// Lanes of the shared reordering [`ThreadTeam`](team::ThreadTeam):
    /// the parallel stages of each ordering (symmetrisation, level-set
    /// expansion, permutation application) dispatch on this team. `1`
    /// keeps every ordering inline on its worker thread (the
    /// sequential path; permutations are byte-identical either way).
    pub reorder_threads: usize,
    /// Bounded job-queue capacity; submissions past this block (back-
    /// pressure).
    pub queue_capacity: usize,
    /// Total in-memory cache capacity, in entries.
    pub cache_capacity: usize,
    /// Cache shard count (lock striping).
    pub cache_shards: usize,
    /// Capacity of the planned-kernel cache, in entries (one per
    /// distinct (matrix, kernel, thread count)).
    pub plan_cache_capacity: usize,
    /// Optional directory for cross-process permutation persistence
    /// (the paper's amortisation argument across artifact binaries).
    pub persist_dir: Option<PathBuf>,
    /// Telemetry registry the engine reports into (`engine.*`,
    /// `reorder.*` series). `None` means the process-wide
    /// [`Registry::global`]; tests that assert exact counts pass a
    /// private registry.
    pub registry: Option<Arc<Registry>>,
    /// Flight recorder for request-scoped tracing. `None` disables
    /// tracing entirely (the submit path pays nothing).
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Sample stride for tracing: request `n` is traced when
    /// `(n - 1) % trace_sample_every == 0`. `0` traces nothing (even
    /// with a recorder attached); `1` traces every request.
    pub trace_sample_every: u64,
    /// Labels stamped on every metric series this engine resolves
    /// (`engine.*`). Several engines sharing one registry — the serving
    /// tier runs one per shard — pass e.g. `[("shard", "2")]` so their
    /// queue-depth gauges and cache counters stay distinct series
    /// instead of colliding on the global names. Empty means unlabeled
    /// (the single-engine default).
    pub metric_labels: Vec<(String, String)>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8);
        EngineConfig {
            workers,
            reorder_threads: 1,
            queue_capacity: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            plan_cache_capacity: 256,
            persist_dir: None,
            registry: None,
            recorder: None,
            trace_sample_every: 0,
            metric_labels: Vec::new(),
        }
    }
}

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The underlying algorithm failed (e.g. non-square input).
    Compute { algo: AlgoSpec, message: String },
    /// The engine is shutting down and cannot accept work.
    ShuttingDown,
    /// The request's deadline passed before a worker picked it up; the
    /// ordering was never computed (see [`SubmitOptions::deadline`]).
    Expired,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Compute { algo, message } => {
                write!(f, "{} failed: {message}", algo.name())
            }
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::Expired => write!(f, "request deadline expired before compute started"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A matrix registered with the engine: the matrix plus its content
/// address, computed once at registration so repeated submissions do
/// not re-hash the nonzeros.
#[derive(Debug, Clone)]
pub struct MatrixHandle {
    matrix: Arc<CsrMatrix>,
    hash: u128,
}

impl MatrixHandle {
    /// Register a shared matrix (hashes it once, `O(nnz)`).
    pub fn new(matrix: Arc<CsrMatrix>) -> Self {
        let hash = matrix.content_hash();
        MatrixHandle { matrix, hash }
    }

    /// Register an owned matrix.
    pub fn from_matrix(matrix: CsrMatrix) -> Self {
        MatrixHandle::new(Arc::new(matrix))
    }

    /// The content address used for cache keys.
    pub fn content_hash(&self) -> u128 {
        self.hash
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Arc<CsrMatrix> {
        &self.matrix
    }
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Cache counters (hits, misses, evictions, disk hits).
    pub cache: CacheStats,
    /// Requests that coalesced onto an already in-flight computation.
    pub coalesced: u64,
    /// Jobs actually computed by the pool.
    pub jobs_executed: u64,
    /// Jobs whose computation failed.
    pub jobs_failed: u64,
    /// Jobs cancelled before compute because their deadline passed.
    pub expired: u64,
    /// Total wall-clock compute seconds across all executed jobs.
    pub compute_seconds: f64,
    /// Total requests submitted.
    pub submitted: u64,
    /// Planned-kernel cache counters.
    pub plans: PlanCacheStats,
    /// Jobs whose lineage probe found a cached ancestor ordering.
    pub delta_hits: u64,
    /// Jobs served by splicing dirty components instead of a full
    /// recompute.
    pub delta_splices: u64,
}

impl EngineStats {
    /// Fraction of submissions that needed no fresh computation
    /// (memory hit, disk hit, or coalesced onto in-flight work).
    pub fn amortised_fraction(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        let avoided = self.cache.hits + self.cache.disk_hits + self.coalesced;
        avoided as f64 / self.submitted as f64
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} submitted | {} hits + {} disk + {} coalesced / {} misses \
             ({:.1}% amortised) | {} computed in {:.3}s | {} expired | {} evicted",
            self.submitted,
            self.cache.hits,
            self.cache.disk_hits,
            self.coalesced,
            self.cache.misses,
            100.0 * self.amortised_fraction(),
            self.jobs_executed,
            self.compute_seconds,
            self.expired,
            self.cache.evictions,
        )
    }
}

/// Per-request submission options for [`Engine::submit_opts`].
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Absolute deadline. If it passes before a worker starts the
    /// ordering, the request is cancelled with [`EngineError::Expired`]
    /// instead of computing — the cancellation hook the serving tier's
    /// deadline enforcement rests on. Requests that coalesce onto the
    /// same in-flight computation extend its deadline to the latest
    /// one; `None` means unbounded.
    pub deadline: Option<Instant>,
    /// Parent trace context. When it is recording, the request's
    /// `engine.request` span opens under it (the caller owns sampling;
    /// the engine's own stride is bypassed for this request) and the
    /// request is registered in the trace index, so
    /// [`Engine::trace_summary`] resolves it as usual.
    pub trace: TraceCtx,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            deadline: None,
            trace: TraceCtx::disabled(),
        }
    }
}

/// A pending (or already satisfied) reordering request.
///
/// For sampled requests the ticket carries the request's root
/// `engine.request` span: it ends when the ticket is waited on (or
/// dropped), so the span covers the full submit-to-result interval.
pub struct Ticket {
    inner: TicketInner,
    request_id: u64,
    root: TraceSpan,
}

enum TicketInner {
    Ready(Result<Arc<CachedOrdering>, EngineError>),
    Pending(Arc<InFlight>),
}

impl Ticket {
    /// Block until the ordering is available.
    pub fn wait(self) -> Result<Arc<CachedOrdering>, EngineError> {
        let Ticket { inner, root, .. } = self;
        match inner {
            TicketInner::Ready(r) => r,
            TicketInner::Pending(slot) => {
                // The blocking interval, distinct from the queue/compute
                // spans the worker records into the same trace.
                let _wait = root.ctx().span("engine.wait");
                slot.wait()
            }
        }
    }

    /// True if the result was served without waiting (cache hit).
    pub fn is_ready(&self) -> bool {
        matches!(self.inner, TicketInner::Ready(_))
    }

    /// The engine-assigned request ID (1-based submission order); pass
    /// it to [`Engine::trace_summary`] / [`Engine::trace_chrome_json`].
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// A trace context parented at this request's root span (disabled
    /// unless the request was sampled). Stages that happen outside the
    /// engine — applying the ordering, measuring SpMV — record under
    /// the request with this handle.
    pub fn trace_ctx(&self) -> TraceCtx {
        self.root.ctx()
    }
}

/// The reordering-as-a-service engine: content-addressed cache in
/// front, deduplicating worker pool behind.
///
/// ```
/// use engine::{AlgoSpec, Engine, EngineConfig, MatrixHandle};
///
/// let engine = Engine::new(EngineConfig::default());
/// let m = MatrixHandle::from_matrix(corpus::mesh2d(12, 12));
/// let first = engine.get(&m, AlgoSpec::Rcm).unwrap();
/// let again = engine.get(&m, AlgoSpec::Rcm).unwrap(); // cache hit
/// assert_eq!(first.perm.order(), again.perm.order());
/// assert_eq!(engine.stats().jobs_executed, 1);
/// ```
pub struct Engine {
    cache: Arc<OrderingCache>,
    plans: PlanCache,
    inflight: Arc<Mutex<HashMap<OrderingKey, Arc<InFlight>>>>,
    registry: Arc<Registry>,
    reorder_team: Arc<team::ThreadTeam>,
    metrics: EngineMetrics,
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    recorder: Option<Arc<FlightRecorder>>,
    sample_every: u64,
    /// Monotonic request IDs (1-based).
    next_request: AtomicU64,
    /// Recent sampled requests: (request id, trace id), oldest first.
    traced: Mutex<VecDeque<(u64, u64)>>,
}

/// The facade's registry metrics, resolved once at construction.
#[derive(Debug)]
struct EngineMetrics {
    /// Total requests submitted.
    submitted: Arc<Counter>,
    /// Requests that coalesced onto an in-flight computation.
    coalesced: Arc<Counter>,
    /// Wall-clock of [`Engine::submit`] itself (nanoseconds) — the
    /// non-blocking front half every request pays.
    submit_span: Arc<Histogram>,
    /// Mirrors the pool's counters for [`Engine::stats`].
    jobs_executed: Arc<Counter>,
    jobs_failed: Arc<Counter>,
    compute_ns: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    expired: Arc<Counter>,
    delta_hits: Arc<Counter>,
    delta_splices: Arc<Counter>,
}

impl Engine {
    /// Start an engine: builds the cache and spawns the worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let registry = config.registry.unwrap_or_else(Registry::global);
        // `# HELP` descriptions for the engine's metric families
        // (idempotent; surfaces on the ops server's /metrics).
        registry.describe("engine.submitted", "Ordering requests submitted.");
        registry.describe(
            "engine.coalesced",
            "Ordering requests coalesced onto an identical in-flight job.",
        );
        registry.describe("engine.submit", "Submit-path latency, nanoseconds.");
        registry.describe("engine.cache.hits", "Ordering-cache hits.");
        registry.describe("engine.cache.misses", "Ordering-cache misses.");
        registry.describe(
            "engine.cache.resident",
            "Orderings currently resident in the cache.",
        );
        let labels: Vec<(&str, &str)> = config
            .metric_labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let mut cache = OrderingCache::new_labeled_in(
            &registry,
            config.cache_capacity,
            config.cache_shards,
            &labels,
        );
        if let Some(dir) = &config.persist_dir {
            cache = cache.with_persist_dir(dir);
        }
        let cache = Arc::new(cache);
        let plans = PlanCache::new_labeled_in(&registry, config.plan_cache_capacity, &labels);
        let inflight = Arc::new(Mutex::new(HashMap::new()));
        let pool_metrics = PoolMetrics::new_labeled(&registry, &labels);
        let metrics = EngineMetrics {
            submitted: registry.counter_labeled("engine.submitted", &labels),
            coalesced: registry.counter_labeled("engine.coalesced", &labels),
            submit_span: registry.histogram_labeled("engine.submit", &labels),
            jobs_executed: Arc::clone(&pool_metrics.jobs_executed),
            jobs_failed: Arc::clone(&pool_metrics.jobs_failed),
            compute_ns: Arc::clone(&pool_metrics.compute_ns),
            queue_depth: Arc::clone(&pool_metrics.queue_depth),
            expired: Arc::clone(&pool_metrics.expired),
            delta_hits: Arc::clone(&pool_metrics.delta_hits),
            delta_splices: Arc::clone(&pool_metrics.delta_splices),
        };
        let reorder_team = Arc::new(team::ThreadTeam::new_in(
            &registry,
            config.reorder_threads.max(1),
        ));
        let (tx, workers) = spawn_pool(
            config.workers,
            config.queue_capacity,
            WorkerContext {
                cache: Arc::clone(&cache),
                inflight: Arc::clone(&inflight),
                registry: Arc::clone(&registry),
                metrics: pool_metrics,
                reorder_team: Arc::clone(&reorder_team),
            },
        );
        Engine {
            cache,
            plans,
            inflight,
            registry,
            reorder_team,
            metrics,
            tx: Some(tx),
            workers,
            recorder: config.recorder,
            sample_every: config.trace_sample_every,
            next_request: AtomicU64::new(0),
            traced: Mutex::new(VecDeque::new()),
        }
    }

    /// The registry this engine reports into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The shared reordering team (sized by
    /// [`EngineConfig::reorder_threads`]). Serving paths reuse it to
    /// apply cached orderings in parallel
    /// ([`CachedOrdering::apply_on`]).
    pub fn reorder_team(&self) -> &Arc<team::ThreadTeam> {
        &self.reorder_team
    }

    /// Probe the ordering cache for `(matrix, algo)` **without**
    /// counting a hit or miss, starting work, or touching recency.
    /// The policy layer uses this to tell "the ordering is already
    /// paid for" (marginal reorder cost zero) apart from "choosing
    /// this algorithm starts a reorder".
    pub fn peek_cached(
        &self,
        matrix: &MatrixHandle,
        algo: AlgoSpec,
    ) -> Option<Arc<CachedOrdering>> {
        self.cache
            .peek(&OrderingKey::new(matrix.content_hash(), algo))
    }

    /// Submit one reordering request. Returns immediately with a
    /// [`Ticket`]; a cache hit makes the ticket ready, otherwise it
    /// joins (or starts) the in-flight computation for its key.
    pub fn submit(&self, matrix: &MatrixHandle, algo: AlgoSpec) -> Ticket {
        self.submit_opts(matrix, algo, SubmitOptions::default())
    }

    /// [`Engine::submit`] with per-request options: a deadline after
    /// which the computation is cancelled instead of started, and an
    /// optional parent trace context.
    pub fn submit_opts(
        &self,
        matrix: &MatrixHandle,
        algo: AlgoSpec,
        opts: SubmitOptions,
    ) -> Ticket {
        let _span = self
            .registry
            .span_on("engine.submit", &self.metrics.submit_span);
        self.metrics.submitted.inc();
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed) + 1;
        let root = if opts.trace.is_recording() {
            self.start_request_trace_under(request_id, algo, &opts.trace)
        } else {
            self.start_request_trace(request_id, algo)
        };
        let key = OrderingKey::new(matrix.content_hash(), algo);

        {
            let mut lookup = root.ctx().span("engine.cache.lookup");
            if let Some(v) = self.cache.get(&key) {
                lookup.arg("outcome", "hit");
                drop(lookup);
                return Ticket {
                    inner: TicketInner::Ready(Ok(v)),
                    request_id,
                    root,
                };
            }
            lookup.arg("outcome", "miss");
        }

        // Miss: coalesce onto in-flight work for the same key, or
        // become the request that enqueues it.
        let slot = {
            let mut inflight = self.inflight.lock().unwrap();
            if let Some(existing) = inflight.get(&key) {
                self.metrics.coalesced.inc();
                // The shared computation must survive until the latest
                // interested deadline.
                existing.extend_deadline(opts.deadline);
                root.ctx().instant("engine.coalesced");
                return Ticket {
                    inner: TicketInner::Pending(Arc::clone(existing)),
                    request_id,
                    root,
                };
            }
            // The computation may have completed between the cache
            // probe and taking this lock (workers remove the key only
            // *after* inserting into the cache), so re-probe while
            // holding the lock to avoid a needless recompute.
            if let Some(v) = self.cache.get_uncounted(&key) {
                return Ticket {
                    inner: TicketInner::Ready(Ok(v)),
                    request_id,
                    root,
                };
            }
            let slot = Arc::new(InFlight::with_deadline(opts.deadline));
            inflight.insert(key, Arc::clone(&slot));
            slot
        };

        // Enqueue outside the in-flight lock: the bounded queue can
        // block here, and workers need that lock to finish jobs.
        let job = Job {
            key,
            matrix: Arc::clone(matrix.matrix()),
            slot: Arc::clone(&slot),
            trace: root.is_recording().then(|| JobTrace {
                ctx: root.ctx(),
                enqueued: Instant::now(),
            }),
        };
        match &self.tx {
            Some(tx) => {
                // Count the job as queued before sending: a worker may
                // dequeue (and decrement) the instant send returns.
                self.metrics.queue_depth.inc();
                if tx.send(job).is_err() {
                    self.metrics.queue_depth.dec();
                    self.inflight.lock().unwrap().remove(&key);
                    slot.fulfil(Err(EngineError::ShuttingDown));
                }
            }
            None => {
                self.inflight.lock().unwrap().remove(&key);
                slot.fulfil(Err(EngineError::ShuttingDown));
            }
        }
        Ticket {
            inner: TicketInner::Pending(slot),
            request_id,
            root,
        }
    }

    /// Open the root `engine.request` span when `request_id` falls on
    /// the sample stride; a disabled span otherwise. Sampled requests
    /// are remembered in the bounded (request → trace) index that backs
    /// [`Engine::trace_summary`].
    fn start_request_trace(&self, request_id: u64, algo: AlgoSpec) -> TraceSpan {
        let Some(recorder) = &self.recorder else {
            return TraceSpan::disabled();
        };
        if self.sample_every == 0 || !(request_id - 1).is_multiple_of(self.sample_every) {
            return TraceSpan::disabled();
        }
        let ctx = recorder.start_trace();
        let Some(trace_id) = ctx.trace_id() else {
            return TraceSpan::disabled();
        };
        let mut root = ctx.span("engine.request");
        root.arg("request", request_id);
        root.arg("algo", algo.name());
        self.remember_trace(request_id, trace_id);
        root
    }

    /// Open the root `engine.request` span under a caller-supplied
    /// recording context (the serving tier samples upstream and hands
    /// the engine its request context). The request still lands in the
    /// trace index so summaries resolve by request ID.
    fn start_request_trace_under(
        &self,
        request_id: u64,
        algo: AlgoSpec,
        ctx: &TraceCtx,
    ) -> TraceSpan {
        let mut root = ctx.span("engine.request");
        root.arg("request", request_id);
        root.arg("algo", algo.name());
        if let Some(trace_id) = ctx.trace_id() {
            self.remember_trace(request_id, trace_id);
        }
        root
    }

    fn remember_trace(&self, request_id: u64, trace_id: u64) {
        let mut traced = self.traced.lock().unwrap();
        if traced.len() >= TRACED_INDEX_CAP {
            traced.pop_front();
        }
        traced.push_back((request_id, trace_id));
    }

    /// Submit a batch; tickets come back in request order.
    pub fn submit_batch<'a, I>(&self, requests: I) -> Vec<Ticket>
    where
        I: IntoIterator<Item = (&'a MatrixHandle, AlgoSpec)>,
    {
        requests
            .into_iter()
            .map(|(m, algo)| self.submit(m, algo))
            .collect()
    }

    /// Fetch (or build and cache) the planned SpMV kernel for a
    /// registered matrix. The plan is keyed by
    /// `(content hash, kernel, nthreads)` and holds the matrix by
    /// `Arc`, so repeated requests share both the plan and the payload.
    pub fn plan(
        &self,
        matrix: &MatrixHandle,
        kernel: KernelKind,
        nthreads: usize,
    ) -> Arc<dyn Kernel> {
        self.plan_traced(matrix, kernel, nthreads, &TraceCtx::disabled())
    }

    /// [`Engine::plan`] recording an `engine.plan` span (kernel kind +
    /// cache outcome) under `ctx` — pass a [`Ticket::trace_ctx`] to
    /// attach the plan stage to its request's trace.
    pub fn plan_traced(
        &self,
        matrix: &MatrixHandle,
        kernel: KernelKind,
        nthreads: usize,
        ctx: &TraceCtx,
    ) -> Arc<dyn Kernel> {
        let mut span = ctx.span("engine.plan");
        span.arg("kernel", kernel.name());
        let key = PlanKey::new(matrix.content_hash(), kernel, nthreads);
        let (planned, hit) = self.plans.get_or_plan_with_status(key, matrix.matrix());
        span.arg("outcome", if hit { "hit" } else { "miss" });
        planned
    }

    /// Submit and wait: the blocking convenience call.
    pub fn get(
        &self,
        matrix: &MatrixHandle,
        algo: AlgoSpec,
    ) -> Result<Arc<CachedOrdering>, EngineError> {
        self.submit(matrix, algo).wait()
    }

    /// The flight recorder tracing sampled requests, if configured.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The trace ID a sampled request recorded under, if it was
    /// sampled and is still in the bounded trace index.
    pub fn trace_id_for(&self, request_id: u64) -> Option<u64> {
        self.traced
            .lock()
            .unwrap()
            .iter()
            .find(|(r, _)| *r == request_id)
            .map(|(_, t)| *t)
    }

    /// Plain-text stage breakdown for a sampled request: per-stage
    /// counts and durations, worker compute imbalance, drop count.
    /// `None` if the request was not sampled (or its events aged out).
    pub fn trace_summary(&self, request_id: u64) -> Option<String> {
        self.request_trace(request_id).map(|snap| snap.summary())
    }

    /// Chrome-trace/Perfetto JSON for a sampled request. `None` if the
    /// request was not sampled (or its events aged out).
    pub fn trace_chrome_json(&self, request_id: u64) -> Option<String> {
        self.request_trace(request_id)
            .map(|snap| snap.to_chrome_json())
    }

    fn request_trace(&self, request_id: u64) -> Option<telemetry::TraceSnapshot> {
        let recorder = self.recorder.as_ref()?;
        let trace_id = self.trace_id_for(request_id)?;
        let snap = recorder.snapshot().filter_trace(trace_id);
        (!snap.is_empty()).then_some(snap)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache.stats(),
            coalesced: self.metrics.coalesced.get(),
            jobs_executed: self.metrics.jobs_executed.get(),
            jobs_failed: self.metrics.jobs_failed.get(),
            expired: self.metrics.expired.get(),
            compute_seconds: self.metrics.compute_ns.get() as f64 / 1e9,
            submitted: self.metrics.submitted.get(),
            plans: self.plans.stats(),
            delta_hits: self.metrics.delta_hits.get(),
            delta_splices: self.metrics.delta_splices.get(),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the channel stops the workers once the queue drains;
        // queued jobs still complete, so outstanding tickets resolve.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> Engine {
        Engine::new(EngineConfig {
            workers: 2,
            reorder_threads: 2,
            queue_capacity: 8,
            cache_capacity: 64,
            cache_shards: 2,
            plan_cache_capacity: 16,
            persist_dir: None,
            registry: Some(telemetry::Registry::new_arc()),
            recorder: None,
            trace_sample_every: 0,
            metric_labels: Vec::new(),
        })
    }

    fn traced_engine(sample_every: u64) -> Engine {
        Engine::new(EngineConfig {
            workers: 2,
            reorder_threads: 2,
            queue_capacity: 8,
            cache_capacity: 64,
            cache_shards: 2,
            plan_cache_capacity: 16,
            persist_dir: None,
            registry: Some(telemetry::Registry::new_arc()),
            recorder: Some(telemetry::FlightRecorder::new(8192)),
            trace_sample_every: sample_every,
            metric_labels: Vec::new(),
        })
    }

    fn mesh() -> MatrixHandle {
        MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(14, 14), 3))
    }

    #[test]
    fn get_computes_then_hits() {
        let engine = small_engine();
        let m = mesh();
        let a = engine.get(&m, AlgoSpec::Rcm).unwrap();
        let b = engine.get(&m, AlgoSpec::Rcm).unwrap();
        assert_eq!(a.perm.order(), b.perm.order());
        assert!(a.symmetric);
        let s = engine.stats();
        assert_eq!(s.jobs_executed, 1);
        assert_eq!(s.cache.hits, 1);
        assert_eq!(s.cache.misses, 1);
        assert_eq!(s.submitted, 2);
        assert!(s.compute_seconds >= 0.0);
    }

    #[test]
    fn distinct_algorithms_are_distinct_entries() {
        let engine = small_engine();
        let m = mesh();
        let _ = engine.get(&m, AlgoSpec::Rcm).unwrap();
        let _ = engine.get(&m, AlgoSpec::Amd).unwrap();
        let _ = engine.get(&m, AlgoSpec::Gp { parts: 4 }).unwrap();
        let _ = engine.get(&m, AlgoSpec::Gp { parts: 8 }).unwrap();
        assert_eq!(engine.stats().jobs_executed, 4);
    }

    #[test]
    fn batch_preserves_order_and_dedups() {
        let engine = small_engine();
        let m = mesh();
        let suite = AlgoSpec::study_suite(4, 8);
        let requests: Vec<_> = suite
            .iter()
            .chain(suite.iter()) // every algorithm twice
            .map(|&a| (&m, a))
            .collect();
        let tickets = engine.submit_batch(requests);
        assert_eq!(tickets.len(), 12);
        let results: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        for (i, &algo) in suite.iter().enumerate() {
            assert_eq!(
                results[i].perm.order(),
                results[i + 6].perm.order(),
                "duplicate of {} must share the result",
                algo.name()
            );
        }
        // Six unique keys -> exactly six computations.
        assert_eq!(engine.stats().jobs_executed, 6);
    }

    #[test]
    fn gray_is_row_only() {
        let engine = small_engine();
        let m = mesh();
        let gray = engine.get(&m, AlgoSpec::Gray).unwrap();
        assert!(!gray.symmetric);
        let b = gray.apply(m.matrix()).unwrap();
        assert_eq!(b.nnz(), m.matrix().nnz());
    }

    #[test]
    fn compute_error_is_reported_not_cached() {
        let engine = small_engine();
        // A rectangular matrix: every ordering requires square input.
        let mut coo = sparsemat::CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 2, 1.0);
        let m = MatrixHandle::from_matrix(sparsemat::CsrMatrix::from_coo(&coo));
        let err = engine.get(&m, AlgoSpec::Rcm).unwrap_err();
        match &err {
            EngineError::Compute { algo, .. } => assert_eq!(algo.name(), "RCM"),
            other => panic!("unexpected error {other:?}"),
        }
        let s = engine.stats();
        assert_eq!(s.jobs_failed, 1);
        // Failures are not cached: a retry fails afresh.
        let _ = engine.get(&m, AlgoSpec::Rcm).unwrap_err();
        assert_eq!(engine.stats().jobs_failed, 2);
    }

    #[test]
    fn plan_requests_share_cached_kernels() {
        let engine = small_engine();
        let m = mesh();
        let first = engine.plan(&m, KernelKind::Merge, 4);
        let second = engine.plan(&m, KernelKind::Merge, 4);
        assert!(Arc::ptr_eq(&first, &second));
        // The kernel shares the handle's payload instead of cloning it.
        assert!(Arc::ptr_eq(first.matrix(), m.matrix()));
        let other = engine.plan(&m, KernelKind::OneD, 4);
        assert_eq!(other.kind(), KernelKind::OneD);
        let s = engine.stats().plans;
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn traced_request_records_every_pipeline_stage() {
        use telemetry::trace::EventKind;
        let engine = traced_engine(1);
        let m = mesh();
        let ticket = engine.submit(&m, AlgoSpec::Rcm);
        let request_id = ticket.request_id();
        assert_eq!(request_id, 1);
        let plan_ctx = ticket.trace_ctx();
        ticket.wait().unwrap();
        let _planned = engine.plan_traced(&m, KernelKind::OneD, 2, &plan_ctx);
        let trace_id = engine.trace_id_for(request_id).expect("request sampled");
        let snap = engine.recorder().unwrap().snapshot().filter_trace(trace_id);
        let names: Vec<&str> = snap
            .events()
            .filter(|e| e.kind == EventKind::Begin || e.kind == EventKind::Instant)
            .map(|e| e.name)
            .collect();
        for stage in [
            "engine.request",
            "engine.cache.lookup",
            "engine.wait",
            "engine.queue.wait",
            "engine.reorder",
            "engine.plan",
        ] {
            assert!(names.contains(&stage), "missing {stage} in {names:?}");
        }
        // Worker-side stages attach under this trace, not as orphans.
        let root_id = snap
            .events()
            .find(|e| e.name == "engine.request")
            .unwrap()
            .span_id;
        let reorder = snap
            .events()
            .find(|e| e.name == "engine.reorder" && e.kind == EventKind::Begin)
            .unwrap();
        assert_eq!(reorder.parent_id, root_id);
        assert_eq!(reorder.trace_id, trace_id);
        // And the human-readable summary resolves by request ID.
        let summary = engine.trace_summary(request_id).unwrap();
        assert!(summary.contains("engine.reorder"), "{summary}");
        let json = engine.trace_chrome_json(request_id).unwrap();
        assert!(json.contains("\"engine.queue.wait\""), "{json}");
    }

    #[test]
    fn sample_stride_traces_only_matching_requests() {
        let engine = traced_engine(2);
        let m = mesh();
        // Requests 1..=4 over distinct algorithms (no cache hits):
        // stride 2 samples requests 1 and 3.
        for algo in [
            AlgoSpec::Rcm,
            AlgoSpec::Amd,
            AlgoSpec::Gray,
            AlgoSpec::Original,
        ] {
            engine.get(&m, algo).unwrap();
        }
        assert!(engine.trace_id_for(1).is_some());
        assert!(engine.trace_id_for(2).is_none());
        assert!(engine.trace_id_for(3).is_some());
        assert!(engine.trace_id_for(4).is_none());
        assert!(engine.trace_summary(2).is_none());
    }

    #[test]
    fn cache_hit_trace_has_lookup_but_no_queue_span() {
        let engine = traced_engine(1);
        let m = mesh();
        engine.get(&m, AlgoSpec::Rcm).unwrap(); // request 1: miss
        engine.get(&m, AlgoSpec::Rcm).unwrap(); // request 2: hit
        let trace_id = engine.trace_id_for(2).unwrap();
        let snap = engine.recorder().unwrap().snapshot().filter_trace(trace_id);
        let names: Vec<&str> = snap.events().map(|e| e.name).collect();
        assert!(names.contains(&"engine.cache.lookup"));
        assert!(
            !names.contains(&"engine.queue.wait"),
            "a cache hit never touches the queue: {names:?}"
        );
        let lookup_end = snap
            .events()
            .find(|e| e.name == "engine.cache.lookup" && e.kind == telemetry::trace::EventKind::End)
            .unwrap();
        assert!(lookup_end
            .args
            .iter()
            .any(|(k, v)| *k == "outcome" && matches!(v, telemetry::ArgValue::Str("hit"))));
    }

    #[test]
    fn untraced_engine_records_nothing_and_has_no_summaries() {
        let engine = small_engine();
        let m = mesh();
        let ticket = engine.submit(&m, AlgoSpec::Rcm);
        assert!(!ticket.trace_ctx().is_recording());
        let id = ticket.request_id();
        ticket.wait().unwrap();
        assert!(engine.recorder().is_none());
        assert!(engine.trace_summary(id).is_none());
        assert!(engine.trace_chrome_json(id).is_none());
    }

    #[test]
    fn expired_request_never_reaches_reorder() {
        use telemetry::trace::EventKind;
        let engine = traced_engine(1);
        let m = mesh();
        // A deadline already in the past: the worker must cancel the
        // job at dequeue, before any reorder work.
        let ticket = engine.submit_opts(
            &m,
            AlgoSpec::Rcm,
            SubmitOptions {
                deadline: Some(Instant::now()),
                trace: telemetry::TraceCtx::disabled(),
            },
        );
        let request_id = ticket.request_id();
        assert!(matches!(ticket.wait(), Err(EngineError::Expired)));
        let s = engine.stats();
        assert_eq!(s.expired, 1);
        assert_eq!(s.jobs_executed, 0, "no ordering may be computed");
        assert_eq!(s.jobs_failed, 0, "expiry is not a compute failure");
        // The flight recorder confirms it: the trace has the expiry
        // marker and no reorder span at all.
        let trace_id = engine.trace_id_for(request_id).expect("request sampled");
        let snap = engine.recorder().unwrap().snapshot().filter_trace(trace_id);
        let names: Vec<&str> = snap.events().map(|e| e.name).collect();
        assert!(
            !names.contains(&"engine.reorder"),
            "expired request reached reorder: {names:?}"
        );
        assert!(snap
            .events()
            .any(|e| e.name == "engine.expired" && e.kind == EventKind::Instant));
        // Nothing was cached, so a fresh request (no deadline) computes.
        let again = engine.get(&m, AlgoSpec::Rcm).unwrap();
        assert_eq!(again.perm.len(), m.matrix().nrows());
        assert_eq!(engine.stats().jobs_executed, 1);
    }

    #[test]
    fn external_trace_context_parents_the_request() {
        use telemetry::trace::EventKind;
        let engine = traced_engine(0); // engine's own sampling off
        let recorder = telemetry::FlightRecorder::new(4096);
        let ctx = recorder.start_trace();
        let outer = ctx.span("tier.execute");
        let m = mesh();
        let ticket = engine.submit_opts(
            &m,
            AlgoSpec::Rcm,
            SubmitOptions {
                deadline: None,
                trace: outer.ctx(),
            },
        );
        let request_id = ticket.request_id();
        ticket.wait().unwrap();
        drop(outer);
        let trace_id = ctx.trace_id().unwrap();
        assert_eq!(engine.trace_id_for(request_id), Some(trace_id));
        let snap = recorder.snapshot().filter_trace(trace_id);
        let outer_id = snap
            .events()
            .find(|e| e.name == "tier.execute")
            .unwrap()
            .span_id;
        let request = snap
            .events()
            .find(|e| e.name == "engine.request" && e.kind == EventKind::Begin)
            .expect("engine.request recorded under the caller's trace");
        assert_eq!(request.parent_id, outer_id);
    }

    #[test]
    fn labeled_engines_keep_distinct_series() {
        let registry = telemetry::Registry::new_arc();
        let engine_for = |shard: &str| {
            Engine::new(EngineConfig {
                workers: 1,
                reorder_threads: 1,
                queue_capacity: 8,
                cache_capacity: 64,
                cache_shards: 2,
                plan_cache_capacity: 16,
                persist_dir: None,
                registry: Some(Arc::clone(&registry)),
                recorder: None,
                trace_sample_every: 0,
                metric_labels: vec![("shard".to_string(), shard.to_string())],
            })
        };
        let e0 = engine_for("0");
        let e1 = engine_for("1");
        let m = mesh();
        e0.get(&m, AlgoSpec::Rcm).unwrap();
        e1.get(&m, AlgoSpec::Rcm).unwrap();
        e1.get(&m, AlgoSpec::Amd).unwrap();
        // Each engine's stats see only its own work...
        assert_eq!(e0.stats().submitted, 1);
        assert_eq!(e1.stats().submitted, 2);
        assert_eq!(e0.stats().cache.misses, 1);
        assert_eq!(e1.stats().cache.misses, 2);
        // ...because the shared registry holds one series per shard.
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_labeled("engine.submitted", &[("shard", "0")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_labeled("engine.submitted", &[("shard", "1")]),
            Some(2)
        );
        assert_eq!(snap.counter("engine.submitted"), None);
    }

    /// Tentpole requirement: a matrix mutated via `apply_delta` is
    /// served by splicing the cached parent ordering — byte-identical
    /// to a fresh compute — with the `engine.delta.*` counters and the
    /// `reorder.splice` trace stage recording it.
    #[test]
    fn delta_descendant_splices_from_cached_parent() {
        use telemetry::trace::EventKind;
        let engine = traced_engine(1);
        // Three disjoint paths: components {0..4}, {5..9}, {10..14}.
        let mut coo = sparsemat::CooMatrix::new(15, 15);
        for i in 0..15 {
            coo.push(i, i, 2.0);
        }
        for block in 0..3 {
            for i in (block * 5)..(block * 5 + 4) {
                coo.push_symmetric(i, i + 1, -1.0);
            }
        }
        let base = sparsemat::CsrMatrix::from_coo(&coo);
        let parent = MatrixHandle::from_matrix(base.clone());
        engine.get(&parent, AlgoSpec::Rcm).unwrap();

        // Mutate inside the middle component only.
        let mut mutated = base.clone();
        mutated
            .apply_delta(&[
                sparsemat::EdgeOp::Remove { row: 7, col: 8 },
                sparsemat::EdgeOp::Remove { row: 8, col: 7 },
            ])
            .unwrap();
        let child = MatrixHandle::from_matrix(mutated.clone());
        let spliced = engine.get(&child, AlgoSpec::Rcm).unwrap();

        // Byte-identical to a from-scratch compute on the mutated matrix.
        let fresh = reorder::ReorderAlgorithm::compute(&reorder::Rcm::default(), &mutated).unwrap();
        assert_eq!(spliced.perm.order(), fresh.perm.order());
        assert!(
            spliced.ranges.is_some(),
            "spliced entries keep their ranges"
        );

        let s = engine.stats();
        assert_eq!(s.jobs_executed, 2);
        assert_eq!(s.delta_hits, 1);
        assert_eq!(s.delta_splices, 1);
        let snap = engine.registry().snapshot();
        let dirty = snap
            .gauge("engine.delta.dirty_frac")
            .expect("dirty fraction recorded");
        assert!(
            (0..10_000).contains(&dirty),
            "only part of the matrix may be re-ordered, got {dirty} bp"
        );

        // The splice stage lands in the request's trace, under
        // engine.reorder.
        let trace_id = engine.trace_id_for(2).expect("request sampled");
        let snap = engine.recorder().unwrap().snapshot().filter_trace(trace_id);
        assert!(
            snap.events()
                .any(|e| e.name == "reorder.splice" && e.kind == EventKind::Begin),
            "reorder.splice missing from delta request trace"
        );

        // A third request for the same child is a plain cache hit: no
        // further splices.
        engine.get(&child, AlgoSpec::Rcm).unwrap();
        assert_eq!(engine.stats().delta_splices, 1);
    }

    /// Global algorithms never take the splice path, even with lineage.
    #[test]
    fn delta_path_skips_non_component_algorithms() {
        let engine = small_engine();
        let m = mesh();
        engine.get(&m, AlgoSpec::Gray).unwrap();
        let mut mutated = (**m.matrix()).clone();
        mutated
            .apply_delta(&[sparsemat::EdgeOp::Add {
                row: 0,
                col: 7,
                value: 1.0,
            }])
            .unwrap();
        let child = MatrixHandle::from_matrix(mutated);
        engine.get(&child, AlgoSpec::Gray).unwrap();
        let s = engine.stats();
        assert_eq!(s.jobs_executed, 2);
        assert_eq!(s.delta_hits, 0);
        assert_eq!(s.delta_splices, 0);
    }

    #[test]
    fn stats_display_is_informative() {
        let engine = small_engine();
        let m = mesh();
        let _ = engine.get(&m, AlgoSpec::Rcm).unwrap();
        let _ = engine.get(&m, AlgoSpec::Rcm).unwrap();
        let line = engine.stats().to_string();
        assert!(line.contains("1 hits"), "got: {line}");
        assert!(line.contains("1 computed"), "got: {line}");
    }
}
