//! The engine facade: the batched session API over the cache and the
//! worker pool.

use crate::cache::{CacheStats, CachedOrdering, OrderingCache, OrderingKey};
use crate::plans::{PlanCache, PlanCacheStats, PlanKey};
use crate::pool::{spawn_pool, InFlight, Job, PoolMetrics, WorkerContext};
use crate::AlgoSpec;
use sparsemat::CsrMatrix;
use spmv::{Kernel, KernelKind};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use telemetry::{Counter, Gauge, Histogram, Registry};

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads computing reorderings.
    pub workers: usize,
    /// Bounded job-queue capacity; submissions past this block (back-
    /// pressure).
    pub queue_capacity: usize,
    /// Total in-memory cache capacity, in entries.
    pub cache_capacity: usize,
    /// Cache shard count (lock striping).
    pub cache_shards: usize,
    /// Capacity of the planned-kernel cache, in entries (one per
    /// distinct (matrix, kernel, thread count)).
    pub plan_cache_capacity: usize,
    /// Optional directory for cross-process permutation persistence
    /// (the paper's amortisation argument across artifact binaries).
    pub persist_dir: Option<PathBuf>,
    /// Telemetry registry the engine reports into (`engine.*`,
    /// `reorder.*` series). `None` means the process-wide
    /// [`Registry::global`]; tests that assert exact counts pass a
    /// private registry.
    pub registry: Option<Arc<Registry>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8);
        EngineConfig {
            workers,
            queue_capacity: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            plan_cache_capacity: 256,
            persist_dir: None,
            registry: None,
        }
    }
}

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The underlying algorithm failed (e.g. non-square input).
    Compute { algo: AlgoSpec, message: String },
    /// The engine is shutting down and cannot accept work.
    ShuttingDown,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Compute { algo, message } => {
                write!(f, "{} failed: {message}", algo.name())
            }
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A matrix registered with the engine: the matrix plus its content
/// address, computed once at registration so repeated submissions do
/// not re-hash the nonzeros.
#[derive(Debug, Clone)]
pub struct MatrixHandle {
    matrix: Arc<CsrMatrix>,
    hash: u128,
}

impl MatrixHandle {
    /// Register a shared matrix (hashes it once, `O(nnz)`).
    pub fn new(matrix: Arc<CsrMatrix>) -> Self {
        let hash = matrix.content_hash();
        MatrixHandle { matrix, hash }
    }

    /// Register an owned matrix.
    pub fn from_matrix(matrix: CsrMatrix) -> Self {
        MatrixHandle::new(Arc::new(matrix))
    }

    /// The content address used for cache keys.
    pub fn content_hash(&self) -> u128 {
        self.hash
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Arc<CsrMatrix> {
        &self.matrix
    }
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Cache counters (hits, misses, evictions, disk hits).
    pub cache: CacheStats,
    /// Requests that coalesced onto an already in-flight computation.
    pub coalesced: u64,
    /// Jobs actually computed by the pool.
    pub jobs_executed: u64,
    /// Jobs whose computation failed.
    pub jobs_failed: u64,
    /// Total wall-clock compute seconds across all executed jobs.
    pub compute_seconds: f64,
    /// Total requests submitted.
    pub submitted: u64,
    /// Planned-kernel cache counters.
    pub plans: PlanCacheStats,
}

impl EngineStats {
    /// Fraction of submissions that needed no fresh computation
    /// (memory hit, disk hit, or coalesced onto in-flight work).
    pub fn amortised_fraction(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        let avoided = self.cache.hits + self.cache.disk_hits + self.coalesced;
        avoided as f64 / self.submitted as f64
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} submitted | {} hits + {} disk + {} coalesced / {} misses \
             ({:.1}% amortised) | {} computed in {:.3}s | {} evicted",
            self.submitted,
            self.cache.hits,
            self.cache.disk_hits,
            self.coalesced,
            self.cache.misses,
            100.0 * self.amortised_fraction(),
            self.jobs_executed,
            self.compute_seconds,
            self.cache.evictions,
        )
    }
}

/// A pending (or already satisfied) reordering request.
pub struct Ticket {
    inner: TicketInner,
}

enum TicketInner {
    Ready(Result<Arc<CachedOrdering>, EngineError>),
    Pending(Arc<InFlight>),
}

impl Ticket {
    /// Block until the ordering is available.
    pub fn wait(self) -> Result<Arc<CachedOrdering>, EngineError> {
        match self.inner {
            TicketInner::Ready(r) => r,
            TicketInner::Pending(slot) => slot.wait(),
        }
    }

    /// True if the result was served without waiting (cache hit).
    pub fn is_ready(&self) -> bool {
        matches!(self.inner, TicketInner::Ready(_))
    }
}

/// The reordering-as-a-service engine: content-addressed cache in
/// front, deduplicating worker pool behind.
///
/// ```
/// use engine::{AlgoSpec, Engine, EngineConfig, MatrixHandle};
///
/// let engine = Engine::new(EngineConfig::default());
/// let m = MatrixHandle::from_matrix(corpus::mesh2d(12, 12));
/// let first = engine.get(&m, AlgoSpec::Rcm).unwrap();
/// let again = engine.get(&m, AlgoSpec::Rcm).unwrap(); // cache hit
/// assert_eq!(first.perm.order(), again.perm.order());
/// assert_eq!(engine.stats().jobs_executed, 1);
/// ```
pub struct Engine {
    cache: Arc<OrderingCache>,
    plans: PlanCache,
    inflight: Arc<Mutex<HashMap<OrderingKey, Arc<InFlight>>>>,
    registry: Arc<Registry>,
    metrics: EngineMetrics,
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

/// The facade's registry metrics, resolved once at construction.
#[derive(Debug)]
struct EngineMetrics {
    /// Total requests submitted.
    submitted: Arc<Counter>,
    /// Requests that coalesced onto an in-flight computation.
    coalesced: Arc<Counter>,
    /// Wall-clock of [`Engine::submit`] itself (nanoseconds) — the
    /// non-blocking front half every request pays.
    submit_span: Arc<Histogram>,
    /// Mirrors the pool's counters for [`Engine::stats`].
    jobs_executed: Arc<Counter>,
    jobs_failed: Arc<Counter>,
    compute_ns: Arc<Counter>,
    queue_depth: Arc<Gauge>,
}

impl Engine {
    /// Start an engine: builds the cache and spawns the worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let registry = config.registry.unwrap_or_else(Registry::global);
        let mut cache =
            OrderingCache::new_in(&registry, config.cache_capacity, config.cache_shards);
        if let Some(dir) = &config.persist_dir {
            cache = cache.with_persist_dir(dir);
        }
        let cache = Arc::new(cache);
        let plans = PlanCache::new_in(&registry, config.plan_cache_capacity);
        let inflight = Arc::new(Mutex::new(HashMap::new()));
        let pool_metrics = PoolMetrics::new(&registry);
        let metrics = EngineMetrics {
            submitted: registry.counter("engine.submitted"),
            coalesced: registry.counter("engine.coalesced"),
            submit_span: registry.histogram("engine.submit"),
            jobs_executed: Arc::clone(&pool_metrics.jobs_executed),
            jobs_failed: Arc::clone(&pool_metrics.jobs_failed),
            compute_ns: Arc::clone(&pool_metrics.compute_ns),
            queue_depth: Arc::clone(&pool_metrics.queue_depth),
        };
        let (tx, workers) = spawn_pool(
            config.workers,
            config.queue_capacity,
            WorkerContext {
                cache: Arc::clone(&cache),
                inflight: Arc::clone(&inflight),
                registry: Arc::clone(&registry),
                metrics: pool_metrics,
            },
        );
        Engine {
            cache,
            plans,
            inflight,
            registry,
            metrics,
            tx: Some(tx),
            workers,
        }
    }

    /// The registry this engine reports into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Submit one reordering request. Returns immediately with a
    /// [`Ticket`]; a cache hit makes the ticket ready, otherwise it
    /// joins (or starts) the in-flight computation for its key.
    pub fn submit(&self, matrix: &MatrixHandle, algo: AlgoSpec) -> Ticket {
        let _span = self
            .registry
            .span_on("engine.submit", &self.metrics.submit_span);
        self.metrics.submitted.inc();
        let key = OrderingKey::new(matrix.content_hash(), algo);

        if let Some(v) = self.cache.get(&key) {
            return Ticket {
                inner: TicketInner::Ready(Ok(v)),
            };
        }

        // Miss: coalesce onto in-flight work for the same key, or
        // become the request that enqueues it.
        let slot = {
            let mut inflight = self.inflight.lock().unwrap();
            if let Some(existing) = inflight.get(&key) {
                self.metrics.coalesced.inc();
                return Ticket {
                    inner: TicketInner::Pending(Arc::clone(existing)),
                };
            }
            // The computation may have completed between the cache
            // probe and taking this lock (workers remove the key only
            // *after* inserting into the cache), so re-probe while
            // holding the lock to avoid a needless recompute.
            if let Some(v) = self.cache.get_uncounted(&key) {
                return Ticket {
                    inner: TicketInner::Ready(Ok(v)),
                };
            }
            let slot = Arc::new(InFlight::new());
            inflight.insert(key, Arc::clone(&slot));
            slot
        };

        // Enqueue outside the in-flight lock: the bounded queue can
        // block here, and workers need that lock to finish jobs.
        let job = Job {
            key,
            matrix: Arc::clone(matrix.matrix()),
            slot: Arc::clone(&slot),
        };
        match &self.tx {
            Some(tx) => {
                // Count the job as queued before sending: a worker may
                // dequeue (and decrement) the instant send returns.
                self.metrics.queue_depth.inc();
                if tx.send(job).is_err() {
                    self.metrics.queue_depth.dec();
                    self.inflight.lock().unwrap().remove(&key);
                    slot.fulfil(Err(EngineError::ShuttingDown));
                }
            }
            None => {
                self.inflight.lock().unwrap().remove(&key);
                slot.fulfil(Err(EngineError::ShuttingDown));
            }
        }
        Ticket {
            inner: TicketInner::Pending(slot),
        }
    }

    /// Submit a batch; tickets come back in request order.
    pub fn submit_batch<'a, I>(&self, requests: I) -> Vec<Ticket>
    where
        I: IntoIterator<Item = (&'a MatrixHandle, AlgoSpec)>,
    {
        requests
            .into_iter()
            .map(|(m, algo)| self.submit(m, algo))
            .collect()
    }

    /// Fetch (or build and cache) the planned SpMV kernel for a
    /// registered matrix. The plan is keyed by
    /// `(content hash, kernel, nthreads)` and holds the matrix by
    /// `Arc`, so repeated requests share both the plan and the payload.
    pub fn plan(
        &self,
        matrix: &MatrixHandle,
        kernel: KernelKind,
        nthreads: usize,
    ) -> Arc<dyn Kernel> {
        let key = PlanKey::new(matrix.content_hash(), kernel, nthreads);
        self.plans.get_or_plan(key, matrix.matrix())
    }

    /// Submit and wait: the blocking convenience call.
    pub fn get(
        &self,
        matrix: &MatrixHandle,
        algo: AlgoSpec,
    ) -> Result<Arc<CachedOrdering>, EngineError> {
        self.submit(matrix, algo).wait()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache.stats(),
            coalesced: self.metrics.coalesced.get(),
            jobs_executed: self.metrics.jobs_executed.get(),
            jobs_failed: self.metrics.jobs_failed.get(),
            compute_seconds: self.metrics.compute_ns.get() as f64 / 1e9,
            submitted: self.metrics.submitted.get(),
            plans: self.plans.stats(),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the channel stops the workers once the queue drains;
        // queued jobs still complete, so outstanding tickets resolve.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> Engine {
        Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 64,
            cache_shards: 2,
            plan_cache_capacity: 16,
            persist_dir: None,
            registry: Some(telemetry::Registry::new_arc()),
        })
    }

    fn mesh() -> MatrixHandle {
        MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(14, 14), 3))
    }

    #[test]
    fn get_computes_then_hits() {
        let engine = small_engine();
        let m = mesh();
        let a = engine.get(&m, AlgoSpec::Rcm).unwrap();
        let b = engine.get(&m, AlgoSpec::Rcm).unwrap();
        assert_eq!(a.perm.order(), b.perm.order());
        assert!(a.symmetric);
        let s = engine.stats();
        assert_eq!(s.jobs_executed, 1);
        assert_eq!(s.cache.hits, 1);
        assert_eq!(s.cache.misses, 1);
        assert_eq!(s.submitted, 2);
        assert!(s.compute_seconds >= 0.0);
    }

    #[test]
    fn distinct_algorithms_are_distinct_entries() {
        let engine = small_engine();
        let m = mesh();
        let _ = engine.get(&m, AlgoSpec::Rcm).unwrap();
        let _ = engine.get(&m, AlgoSpec::Amd).unwrap();
        let _ = engine.get(&m, AlgoSpec::Gp { parts: 4 }).unwrap();
        let _ = engine.get(&m, AlgoSpec::Gp { parts: 8 }).unwrap();
        assert_eq!(engine.stats().jobs_executed, 4);
    }

    #[test]
    fn batch_preserves_order_and_dedups() {
        let engine = small_engine();
        let m = mesh();
        let suite = AlgoSpec::study_suite(4, 8);
        let requests: Vec<_> = suite
            .iter()
            .chain(suite.iter()) // every algorithm twice
            .map(|&a| (&m, a))
            .collect();
        let tickets = engine.submit_batch(requests);
        assert_eq!(tickets.len(), 12);
        let results: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        for (i, &algo) in suite.iter().enumerate() {
            assert_eq!(
                results[i].perm.order(),
                results[i + 6].perm.order(),
                "duplicate of {} must share the result",
                algo.name()
            );
        }
        // Six unique keys -> exactly six computations.
        assert_eq!(engine.stats().jobs_executed, 6);
    }

    #[test]
    fn gray_is_row_only() {
        let engine = small_engine();
        let m = mesh();
        let gray = engine.get(&m, AlgoSpec::Gray).unwrap();
        assert!(!gray.symmetric);
        let b = gray.apply(m.matrix()).unwrap();
        assert_eq!(b.nnz(), m.matrix().nnz());
    }

    #[test]
    fn compute_error_is_reported_not_cached() {
        let engine = small_engine();
        // A rectangular matrix: every ordering requires square input.
        let mut coo = sparsemat::CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 2, 1.0);
        let m = MatrixHandle::from_matrix(sparsemat::CsrMatrix::from_coo(&coo));
        let err = engine.get(&m, AlgoSpec::Rcm).unwrap_err();
        match &err {
            EngineError::Compute { algo, .. } => assert_eq!(algo.name(), "RCM"),
            other => panic!("unexpected error {other:?}"),
        }
        let s = engine.stats();
        assert_eq!(s.jobs_failed, 1);
        // Failures are not cached: a retry fails afresh.
        let _ = engine.get(&m, AlgoSpec::Rcm).unwrap_err();
        assert_eq!(engine.stats().jobs_failed, 2);
    }

    #[test]
    fn plan_requests_share_cached_kernels() {
        let engine = small_engine();
        let m = mesh();
        let first = engine.plan(&m, KernelKind::Merge, 4);
        let second = engine.plan(&m, KernelKind::Merge, 4);
        assert!(Arc::ptr_eq(&first, &second));
        // The kernel shares the handle's payload instead of cloning it.
        assert!(Arc::ptr_eq(first.matrix(), m.matrix()));
        let other = engine.plan(&m, KernelKind::OneD, 4);
        assert_eq!(other.kind(), KernelKind::OneD);
        let s = engine.stats().plans;
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn stats_display_is_informative() {
        let engine = small_engine();
        let m = mesh();
        let _ = engine.get(&m, AlgoSpec::Rcm).unwrap();
        let _ = engine.get(&m, AlgoSpec::Rcm).unwrap();
        let line = engine.stats().to_string();
        assert!(line.contains("1 hits"), "got: {line}");
        assert!(line.contains("1 computed"), "got: {line}");
    }
}
