//! # engine — reordering as a service
//!
//! The paper's cost argument (§4.7, Table 5) is that a reordering only
//! pays off when its one-time cost is amortised over many SpMV
//! iterations. In a serving setting that means: compute each
//! (matrix, algorithm) ordering **once**, cache it, and hand the same
//! permutation to every subsequent request. This crate turns the
//! workspace's one-shot pipeline into that serving subsystem, in three
//! layers:
//!
//! 1. **Content-addressed cache** ([`OrderingCache`]): keys are
//!    `CsrMatrix::content_hash()` (a stable 128-bit content address
//!    over the canonical CSR form) plus the parameterised algorithm
//!    ([`AlgoSpec`]); values are permutations. Sharded in-memory LRU
//!    with hit/miss/eviction counters and optional disk persistence,
//!    so separate experiment processes share one computation.
//! 2. **Worker pool** (`pool`): a fixed set of `std::thread` workers
//!    consuming a bounded job queue, with request deduplication —
//!    concurrent requests for the same key coalesce onto one in-flight
//!    computation and all receive the shared result — and per-job
//!    wall-clock accounting.
//! 3. **Batched session API** ([`Engine`]): [`Engine::submit`],
//!    [`Engine::submit_batch`], [`Engine::get`] and [`Engine::stats`].
//!    The `experiments` crate's sweep obtains all orderings through
//!    this API, and `experiments --bin serve` replays a Zipf request
//!    trace against it.
//!
//! With a flight recorder attached ([`EngineConfig::recorder`] +
//! [`EngineConfig::trace_sample_every`]), sampled requests record a
//! request-scoped trace across all three layers — cache lookup, queue
//! wait, reorder compute, plan build — retrievable as a plain-text
//! stage breakdown ([`Engine::trace_summary`]) or Chrome-trace JSON
//! ([`Engine::trace_chrome_json`]), and extendable past the engine via
//! [`Ticket::trace_ctx`].
//!
//! ```
//! use engine::{AlgoSpec, Engine, EngineConfig, MatrixHandle};
//!
//! let engine = Engine::new(EngineConfig::default());
//! let m = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(16, 16), 1));
//!
//! // A batch with duplicates: six unique orderings, twelve requests.
//! let suite = AlgoSpec::study_suite(8, 16);
//! let requests: Vec<_> = suite.iter().chain(suite.iter()).map(|&a| (&m, a)).collect();
//! let results: Vec<_> = engine
//!     .submit_batch(requests)
//!     .into_iter()
//!     .map(|t| t.wait().unwrap())
//!     .collect();
//!
//! assert_eq!(results.len(), 12);
//! let stats = engine.stats();
//! assert_eq!(stats.jobs_executed, 6); // duplicates were amortised
//! ```

mod algo;
mod cache;
mod engine;
mod plans;
mod pool;

pub use algo::AlgoSpec;
pub use cache::{CacheStats, CachedOrdering, OrderingCache, OrderingKey};
pub use engine::{
    Engine, EngineConfig, EngineError, EngineStats, MatrixHandle, SubmitOptions, Ticket,
};
pub use plans::{PlanCache, PlanCacheStats, PlanKey};
pub use pool::InFlight;
