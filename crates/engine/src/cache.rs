//! The content-addressed ordering cache.
//!
//! Keys are (matrix content hash, algorithm spec); values are computed
//! permutations. The cache is sharded to keep lock contention low under
//! the worker pool, each shard running an exact LRU (hash map plus a
//! recency index). Optionally, permutations are persisted to disk so
//! separate processes — each figure/table binary is its own process —
//! amortise one computation across the whole artifact run, which is the
//! paper's §4.7 cost argument operationalised.

use crate::AlgoSpec;
use sparsemat::Permutation;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use telemetry::{Counter, Gauge, Registry};

/// Cache key: the matrix content address plus the parameterised
/// algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderingKey {
    /// `CsrMatrix::content_hash()` of the input matrix.
    pub matrix_hash: u128,
    /// Algorithm and parameters.
    pub algo: AlgoSpec,
}

impl OrderingKey {
    pub fn new(matrix_hash: u128, algo: AlgoSpec) -> Self {
        OrderingKey { matrix_hash, algo }
    }

    /// Filename stem for disk persistence: hash plus algorithm token.
    fn file_stem(&self) -> String {
        format!("{:032x}-{}", self.matrix_hash, self.algo.cache_token())
    }
}

/// A cached reordering: the permutation, whether it applies
/// symmetrically, and the one-time cost that computing it incurred.
#[derive(Debug, Clone)]
pub struct CachedOrdering {
    /// `order[new] = old`, as everywhere in the workspace.
    pub perm: Permutation,
    /// True if rows *and* columns are permuted (everything but Gray).
    pub symmetric: bool,
    /// Wall-clock seconds the original computation took (zero when the
    /// entry was loaded from disk; the cost was paid by some earlier
    /// process).
    pub compute_seconds: f64,
    /// Component→range map for component-structured algorithms (RCM,
    /// AMD), enabling the delta splice path on descendants of this
    /// matrix. `None` for global algorithms and for entries loaded
    /// from the disk tier (the `perm-cache-v1` format does not carry
    /// ranges; such entries serve exact hits but not splices).
    pub ranges: Option<Vec<reorder::ComponentRange>>,
}

impl CachedOrdering {
    /// View as the `reorder` crate's result type.
    pub fn to_reorder_result(&self) -> reorder::ReorderResult {
        reorder::ReorderResult {
            perm: self.perm.clone(),
            symmetric: self.symmetric,
        }
    }

    /// Apply to a matrix (symmetric or row-only as recorded).
    pub fn apply(
        &self,
        a: &sparsemat::CsrMatrix,
    ) -> Result<sparsemat::CsrMatrix, sparsemat::SparseError> {
        self.to_reorder_result().apply(a)
    }

    /// [`CachedOrdering::apply`] on an executor: the row copy runs in
    /// parallel after a prefix sum (byte-identical output — see
    /// [`reorder::ReorderResult::apply_on`]).
    pub fn apply_on(
        &self,
        a: &sparsemat::CsrMatrix,
        exec: team::Exec<'_>,
    ) -> Result<sparsemat::CsrMatrix, sparsemat::SparseError> {
        self.to_reorder_result().apply_on(a, exec)
    }
}

/// The cache's registry metrics (`engine.cache.*`), resolved once at
/// construction so the hot path only touches atomics.
///
/// When several caches share one registry (e.g. the global one), the
/// series are process-wide totals across those caches — exactly what a
/// scrape wants. Tests needing per-instance exactness pass a private
/// registry to [`OrderingCache::new_in`].
#[derive(Debug)]
struct CacheMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    insertions: Arc<Counter>,
    evictions: Arc<Counter>,
    disk_hits: Arc<Counter>,
    /// Entries currently resident in memory.
    resident: Arc<Gauge>,
    /// Approximate bytes held by resident permutations.
    resident_bytes: Arc<Gauge>,
}

impl CacheMetrics {
    fn new(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        CacheMetrics {
            hits: registry.counter_labeled("engine.cache.hits", labels),
            misses: registry.counter_labeled("engine.cache.misses", labels),
            insertions: registry.counter_labeled("engine.cache.insertions", labels),
            evictions: registry.counter_labeled("engine.cache.evictions", labels),
            disk_hits: registry.counter_labeled("engine.cache.disk_hits", labels),
            resident: registry.gauge_labeled("engine.cache.resident", labels),
            resident_bytes: registry.gauge_labeled("engine.cache.resident_bytes", labels),
        }
    }
}

/// Approximate in-memory footprint of one cached ordering.
fn entry_bytes(value: &CachedOrdering) -> i64 {
    let ranges = value.ranges.as_ref().map_or(0, |r| {
        r.len() * std::mem::size_of::<reorder::ComponentRange>()
    });
    (std::mem::size_of::<CachedOrdering>() + value.perm.len() * std::mem::size_of::<u32>() + ranges)
        as i64
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that found nothing (neither memory nor disk).
    pub misses: u64,
    /// Entries inserted (computations completed).
    pub insertions: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Lookups served from the disk store (counted separately from
    /// `hits`; they also repopulate memory).
    pub disk_hits: u64,
    /// Entries currently resident in memory.
    pub resident: u64,
    /// Approximate bytes held by resident permutations.
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups that avoided a computation.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.disk_hits;
        let total = served + self.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

/// One shard: an exact LRU over `capacity` entries.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<OrderingKey, (Arc<CachedOrdering>, u64)>,
    /// Recency index: tick -> key, oldest first.
    recency: BTreeMap<u64, OrderingKey>,
    tick: u64,
}

/// What one shard-level insert did, so the cache can keep its
/// occupancy metrics exact.
struct InsertOutcome {
    /// Entries evicted by the LRU policy.
    evicted: u64,
    /// True if the key was not previously resident.
    fresh: bool,
    /// Net change in approximate resident bytes.
    bytes_delta: i64,
}

impl Shard {
    fn touch(&mut self, key: OrderingKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old_tick)) = self.entries.get_mut(&key) {
            self.recency.remove(old_tick);
            *old_tick = tick;
            self.recency.insert(tick, key);
        }
        debug_assert_eq!(self.entries.len(), self.recency.len());
    }

    fn get(&mut self, key: &OrderingKey) -> Option<Arc<CachedOrdering>> {
        let value = self.entries.get(key).map(|(v, _)| Arc::clone(v))?;
        self.touch(*key);
        Some(value)
    }

    fn insert(
        &mut self,
        key: OrderingKey,
        value: Arc<CachedOrdering>,
        capacity: usize,
    ) -> InsertOutcome {
        self.tick += 1;
        let tick = self.tick;
        let mut bytes_delta = entry_bytes(&value);
        if let Some((old_value, old_tick)) = self.entries.insert(key, (value, tick)) {
            // Refresh of an existing entry: no eviction needed.
            bytes_delta -= entry_bytes(&old_value);
            self.recency.remove(&old_tick);
            self.recency.insert(tick, key);
            debug_assert_eq!(self.entries.len(), self.recency.len());
            return InsertOutcome {
                evicted: 0,
                fresh: false,
                bytes_delta,
            };
        }
        self.recency.insert(tick, key);
        let mut evicted = 0;
        while self.entries.len() > capacity {
            let (&oldest_tick, &victim) = self
                .recency
                .iter()
                .next()
                .expect("recency index tracks every entry");
            self.recency.remove(&oldest_tick);
            let (victim_value, _) = self
                .entries
                .remove(&victim)
                .expect("recency index entries exist in the map");
            bytes_delta -= entry_bytes(&victim_value);
            evicted += 1;
        }
        debug_assert_eq!(self.entries.len(), self.recency.len());
        InsertOutcome {
            evicted,
            fresh: true,
            bytes_delta,
        }
    }
}

/// The sharded, content-addressed LRU cache of reorderings.
#[derive(Debug)]
pub struct OrderingCache {
    shards: Vec<Mutex<Shard>>,
    /// Maximum entries per shard (total capacity / shard count, at
    /// least 1).
    per_shard_capacity: usize,
    metrics: CacheMetrics,
    persist_dir: Option<PathBuf>,
}

impl OrderingCache {
    /// An in-memory cache with `capacity` total entries across
    /// `shards` shards, reporting into the global telemetry registry.
    pub fn new(capacity: usize, shards: usize) -> Self {
        OrderingCache::new_in(&Registry::global(), capacity, shards)
    }

    /// Like [`OrderingCache::new`], but reporting into `registry`
    /// (tests use a private registry so counter assertions are exact).
    pub fn new_in(registry: &Registry, capacity: usize, shards: usize) -> Self {
        OrderingCache::new_labeled_in(registry, capacity, shards, &[])
    }

    /// Like [`OrderingCache::new_in`] with `labels` on every
    /// `engine.cache.*` series, so several caches sharing one registry
    /// (one per serving-tier shard) report distinct totals.
    pub fn new_labeled_in(
        registry: &Registry,
        capacity: usize,
        shards: usize,
        labels: &[(&str, &str)],
    ) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        OrderingCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            metrics: CacheMetrics::new(registry, labels),
            persist_dir: None,
        }
    }

    /// Enable disk persistence under `dir` (created on first write).
    pub fn with_persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Current entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, key: &OrderingKey) -> &Mutex<Shard> {
        // The matrix hash is already uniform; fold in the algorithm so
        // the same matrix's orderings spread across shards.
        let mut h = key.matrix_hash as u64 ^ (key.matrix_hash >> 64) as u64;
        h ^= {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            key.algo.hash(&mut hasher);
            hasher.finish()
        };
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Look up a key, consulting memory first and then the disk store.
    pub fn get(&self, key: &OrderingKey) -> Option<Arc<CachedOrdering>> {
        self.lookup(key, true)
    }

    /// Like [`OrderingCache::get`], but a negative result is not
    /// counted as a miss. Used for the engine's second probe under the
    /// in-flight lock, which would otherwise double-count every miss.
    pub fn get_uncounted(&self, key: &OrderingKey) -> Option<Arc<CachedOrdering>> {
        self.lookup(key, false)
    }

    /// Look up without counting a hit or a miss, touching recency, or
    /// consulting the disk tier — the policy layer's "is this already
    /// a sunk cost?" probe, which must not perturb cache statistics or
    /// eviction order.
    pub fn peek(&self, key: &OrderingKey) -> Option<Arc<CachedOrdering>> {
        self.shard_for(key)
            .lock()
            .unwrap()
            .entries
            .get(key)
            .map(|(v, _)| Arc::clone(v))
    }

    fn lookup(&self, key: &OrderingKey, count_miss: bool) -> Option<Arc<CachedOrdering>> {
        if let Some(v) = self.shard_for(key).lock().unwrap().get(key) {
            self.metrics.hits.inc();
            return Some(v);
        }
        if let Some(v) = self.load_from_disk(key) {
            self.metrics.disk_hits.inc();
            let v = Arc::new(v);
            // Repopulate memory without re-counting as an insertion —
            // the computation was done by whoever wrote the file.
            let outcome = self.shard_for(key).lock().unwrap().insert(
                *key,
                Arc::clone(&v),
                self.per_shard_capacity,
            );
            self.apply_occupancy(&outcome);
            return Some(v);
        }
        if count_miss {
            self.metrics.misses.inc();
        }
        None
    }

    /// Fold one shard insert's occupancy changes into the metrics.
    fn apply_occupancy(&self, outcome: &InsertOutcome) {
        self.metrics.evictions.add(outcome.evicted);
        let net = i64::from(outcome.fresh) - outcome.evicted as i64;
        if net != 0 {
            self.metrics.resident.add(net);
        }
        if outcome.bytes_delta != 0 {
            self.metrics.resident_bytes.add(outcome.bytes_delta);
        }
    }

    /// Insert a freshly computed ordering and persist it if configured.
    pub fn insert(&self, key: OrderingKey, value: Arc<CachedOrdering>) {
        self.metrics.insertions.inc();
        let outcome = self.shard_for(&key).lock().unwrap().insert(
            key,
            Arc::clone(&value),
            self.per_shard_capacity,
        );
        self.apply_occupancy(&outcome);
        if let Err(e) = self.store_to_disk(&key, &value) {
            eprintln!("engine cache: failed to persist {}: {e}", key.file_stem());
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            insertions: self.metrics.insertions.get(),
            evictions: self.metrics.evictions.get(),
            disk_hits: self.metrics.disk_hits.get(),
            resident: self.metrics.resident.get().max(0) as u64,
            resident_bytes: self.metrics.resident_bytes.get().max(0) as u64,
        }
    }

    /// Check that the metric totals agree with the true per-shard
    /// state: the recency index mirrors the entry map exactly, no
    /// shard exceeds its capacity, and the resident counters equal the
    /// summed shard occupancy. Only meaningful when this cache does not
    /// share its registry with another cache (tests pass a private
    /// registry); panics on any drift.
    pub fn assert_consistent(&self) {
        let mut total_entries = 0usize;
        let mut total_bytes = 0i64;
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().unwrap();
            assert_eq!(
                shard.entries.len(),
                shard.recency.len(),
                "shard {i}: recency index out of sync with entries"
            );
            assert!(
                shard.entries.len() <= self.per_shard_capacity,
                "shard {i}: {} entries exceed capacity {}",
                shard.entries.len(),
                self.per_shard_capacity
            );
            for (key, (value, tick)) in shard.entries.iter() {
                assert_eq!(
                    shard.recency.get(tick),
                    Some(key),
                    "shard {i}: entry tick {tick} missing from recency index"
                );
                total_bytes += entry_bytes(value);
            }
            total_entries += shard.entries.len();
        }
        let stats = self.stats();
        assert_eq!(
            stats.resident, total_entries as u64,
            "resident gauge drifted from true occupancy"
        );
        assert_eq!(
            stats.resident_bytes, total_bytes as u64,
            "resident-bytes gauge drifted from true footprint"
        );
    }

    fn disk_path(&self, key: &OrderingKey) -> Option<PathBuf> {
        self.persist_dir
            .as_ref()
            .map(|d| d.join(format!("{}.perm", key.file_stem())))
    }

    /// On-disk format, one value per line: a header
    /// `perm-cache-v1 <len> <symmetric 0|1>` followed by the
    /// `order[new] = old` indices.
    fn store_to_disk(&self, key: &OrderingKey, value: &CachedOrdering) -> std::io::Result<()> {
        let Some(path) = self.disk_path(key) else {
            return Ok(());
        };
        if path.exists() {
            return Ok(());
        }
        std::fs::create_dir_all(path.parent().expect("cache files live in a directory"))?;
        // Write to a temp file and rename so concurrent readers never
        // see a torn entry.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            writeln!(
                f,
                "perm-cache-v1 {} {}",
                value.perm.len(),
                u8::from(value.symmetric)
            )?;
            for &old in value.perm.order() {
                writeln!(f, "{old}")?;
            }
            f.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn load_from_disk(&self, key: &OrderingKey) -> Option<CachedOrdering> {
        let path = self.disk_path(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        parse_perm_file(&text).or_else(|| {
            eprintln!("engine cache: ignoring malformed file {}", path.display());
            None
        })
    }
}

fn parse_perm_file(text: &str) -> Option<CachedOrdering> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut parts = header.split_whitespace();
    if parts.next()? != "perm-cache-v1" {
        return None;
    }
    let len: usize = parts.next()?.parse().ok()?;
    let symmetric = match parts.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let order: Vec<u32> = lines
        .map(|l| l.trim().parse().ok())
        .collect::<Option<_>>()?;
    if order.len() != len {
        return None;
    }
    let perm = Permutation::from_new_to_old(order).ok()?;
    Some(CachedOrdering {
        perm,
        symmetric,
        compute_seconds: 0.0,
        ranges: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cache on a private registry so counter assertions are exact
    /// even with other tests running in parallel.
    fn test_cache(capacity: usize, shards: usize) -> OrderingCache {
        OrderingCache::new_in(&Registry::new(), capacity, shards)
    }

    fn key(i: u128) -> OrderingKey {
        OrderingKey::new(i, AlgoSpec::Rcm)
    }

    fn entry(n: usize) -> Arc<CachedOrdering> {
        Arc::new(CachedOrdering {
            perm: Permutation::identity(n),
            symmetric: true,
            compute_seconds: 0.01,
            ranges: None,
        })
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        // Single shard so eviction order is fully deterministic.
        let cache = test_cache(3, 1);
        cache.insert(key(1), entry(1));
        cache.insert(key(2), entry(2));
        cache.insert(key(3), entry(3));
        // Touch key 1 so key 2 becomes the oldest.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(4), entry(4));
        assert!(cache.get(&key(2)).is_none(), "oldest entry must be evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert!(cache.get(&key(4)).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 4);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 4);
    }

    #[test]
    fn eviction_cascade_past_capacity() {
        let cache = test_cache(2, 1);
        for i in 0..6 {
            cache.insert(key(i), entry(1));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 4);
        // The two most recent survive.
        assert!(cache.get(&key(4)).is_some());
        assert!(cache.get(&key(5)).is_some());
        for i in 0..4 {
            assert!(cache.get(&key(i)).is_none());
        }
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let cache = test_cache(2, 1);
        cache.insert(key(1), entry(1));
        cache.insert(key(2), entry(2));
        // Refreshing key 1 must not evict anything...
        cache.insert(key(1), entry(1));
        assert_eq!(cache.stats().evictions, 0);
        // ...and must make key 2 the LRU victim.
        cache.insert(key(3), entry(3));
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
    }

    #[test]
    fn sharded_capacity_and_spread() {
        let cache = test_cache(8, 4);
        assert_eq!(cache.capacity(), 8);
        for i in 0..8 {
            cache.insert(key(i), entry(1));
        }
        // No shard can exceed its per-shard capacity, so at most 8
        // entries remain; with a uniform key hash most should survive.
        assert!(cache.len() >= 4, "len {} unexpectedly small", cache.len());
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "engine-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = test_cache(4, 1).with_persist_dir(&dir);
        let perm = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        writer.insert(
            OrderingKey::new(42, AlgoSpec::Gray),
            Arc::new(CachedOrdering {
                perm: perm.clone(),
                symmetric: false,
                compute_seconds: 1.5,
                ranges: None,
            }),
        );

        // A fresh cache (cold memory) finds the entry on disk.
        let reader = test_cache(4, 1).with_persist_dir(&dir);
        let got = reader
            .get(&OrderingKey::new(42, AlgoSpec::Gray))
            .expect("disk hit");
        assert_eq!(got.perm.order(), perm.order());
        assert!(!got.symmetric);
        let s = reader.stats();
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.misses, 0);
        // Second read is a memory hit.
        assert!(reader.get(&OrderingKey::new(42, AlgoSpec::Gray)).is_some());
        assert_eq!(reader.stats().hits, 1);
        // Different algorithm on the same matrix is still a miss.
        assert!(reader.get(&OrderingKey::new(42, AlgoSpec::Rcm)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_disk_entry_is_ignored() {
        assert!(parse_perm_file("not-a-header\n0\n").is_none());
        assert!(parse_perm_file("perm-cache-v1 3 1\n0\n1\n").is_none()); // short
        assert!(parse_perm_file("perm-cache-v1 2 1\n0\n0\n").is_none()); // not a permutation
        assert!(parse_perm_file("perm-cache-v1 2 1\n1\n0\n").is_some());
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            insertions: 1,
            evictions: 0,
            disk_hits: 1,
            resident: 1,
            resident_bytes: 64,
        };
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    /// Satellite requirement: after a randomized workload, the metric
    /// totals must equal the summed per-shard state — occupancy
    /// counters cannot silently drift.
    #[test]
    fn randomized_workload_keeps_stats_consistent() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cache = test_cache(13, 4); // deliberately uneven: ceil(13/4)*4 = 16
        let mut lookups = 0u64;
        for step in 0..4000 {
            let k = key((next() % 40) as u128);
            match next() % 3 {
                0 => {
                    lookups += 1;
                    let _ = cache.get(&k);
                }
                // Entries of varying size exercise the byte gauge.
                _ => cache.insert(k, entry((next() % 50) as usize + 1)),
            }
            if step % 500 == 0 {
                cache.assert_consistent();
            }
        }
        cache.assert_consistent();
        let s = cache.stats();
        assert_eq!(s.hits + s.misses + s.disk_hits, lookups);
        assert_eq!(s.resident as usize, cache.len());
        assert!(s.evictions > 0, "workload must overflow the cache: {s:?}");
    }
}
