//! The content-addressed ordering cache.
//!
//! Keys are (matrix content hash, algorithm spec); values are computed
//! permutations. The cache is sharded to keep lock contention low under
//! the worker pool, each shard running an exact LRU (hash map plus a
//! recency index). Optionally, permutations are persisted to disk so
//! separate processes — each figure/table binary is its own process —
//! amortise one computation across the whole artifact run, which is the
//! paper's §4.7 cost argument operationalised.

use crate::AlgoSpec;
use sparsemat::Permutation;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: the matrix content address plus the parameterised
/// algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderingKey {
    /// `CsrMatrix::content_hash()` of the input matrix.
    pub matrix_hash: u128,
    /// Algorithm and parameters.
    pub algo: AlgoSpec,
}

impl OrderingKey {
    pub fn new(matrix_hash: u128, algo: AlgoSpec) -> Self {
        OrderingKey { matrix_hash, algo }
    }

    /// Filename stem for disk persistence: hash plus algorithm token.
    fn file_stem(&self) -> String {
        format!("{:032x}-{}", self.matrix_hash, self.algo.cache_token())
    }
}

/// A cached reordering: the permutation, whether it applies
/// symmetrically, and the one-time cost that computing it incurred.
#[derive(Debug, Clone)]
pub struct CachedOrdering {
    /// `order[new] = old`, as everywhere in the workspace.
    pub perm: Permutation,
    /// True if rows *and* columns are permuted (everything but Gray).
    pub symmetric: bool,
    /// Wall-clock seconds the original computation took (zero when the
    /// entry was loaded from disk; the cost was paid by some earlier
    /// process).
    pub compute_seconds: f64,
}

impl CachedOrdering {
    /// View as the `reorder` crate's result type.
    pub fn to_reorder_result(&self) -> reorder::ReorderResult {
        reorder::ReorderResult {
            perm: self.perm.clone(),
            symmetric: self.symmetric,
        }
    }

    /// Apply to a matrix (symmetric or row-only as recorded).
    pub fn apply(
        &self,
        a: &sparsemat::CsrMatrix,
    ) -> Result<sparsemat::CsrMatrix, sparsemat::SparseError> {
        self.to_reorder_result().apply(a)
    }
}

/// Monotonic counters, shared by all shards.
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    disk_hits: AtomicU64,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that found nothing (neither memory nor disk).
    pub misses: u64,
    /// Entries inserted (computations completed).
    pub insertions: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Lookups served from the disk store (counted separately from
    /// `hits`; they also repopulate memory).
    pub disk_hits: u64,
}

impl CacheStats {
    /// Fraction of lookups that avoided a computation.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.disk_hits;
        let total = served + self.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

/// One shard: an exact LRU over `capacity` entries.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<OrderingKey, (Arc<CachedOrdering>, u64)>,
    /// Recency index: tick -> key, oldest first.
    recency: BTreeMap<u64, OrderingKey>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: OrderingKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old_tick)) = self.entries.get_mut(&key) {
            self.recency.remove(old_tick);
            *old_tick = tick;
            self.recency.insert(tick, key);
        }
    }

    fn get(&mut self, key: &OrderingKey) -> Option<Arc<CachedOrdering>> {
        let value = self.entries.get(key).map(|(v, _)| Arc::clone(v))?;
        self.touch(*key);
        Some(value)
    }

    /// Insert, returning the number of evictions performed.
    fn insert(&mut self, key: OrderingKey, value: Arc<CachedOrdering>, capacity: usize) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        if let Some((old_value, old_tick)) = self.entries.insert(key, (value, tick)) {
            // Refresh of an existing entry: no eviction needed.
            let _ = old_value;
            self.recency.remove(&old_tick);
            self.recency.insert(tick, key);
            return 0;
        }
        self.recency.insert(tick, key);
        let mut evicted = 0;
        while self.entries.len() > capacity {
            let (&oldest_tick, &victim) = self
                .recency
                .iter()
                .next()
                .expect("recency index tracks every entry");
            self.recency.remove(&oldest_tick);
            self.entries.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// The sharded, content-addressed LRU cache of reorderings.
#[derive(Debug)]
pub struct OrderingCache {
    shards: Vec<Mutex<Shard>>,
    /// Maximum entries per shard (total capacity / shard count, at
    /// least 1).
    per_shard_capacity: usize,
    counters: Counters,
    persist_dir: Option<PathBuf>,
}

impl OrderingCache {
    /// An in-memory cache with `capacity` total entries across
    /// `shards` shards.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        OrderingCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            counters: Counters::default(),
            persist_dir: None,
        }
    }

    /// Enable disk persistence under `dir` (created on first write).
    pub fn with_persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Current entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, key: &OrderingKey) -> &Mutex<Shard> {
        // The matrix hash is already uniform; fold in the algorithm so
        // the same matrix's orderings spread across shards.
        let mut h = key.matrix_hash as u64 ^ (key.matrix_hash >> 64) as u64;
        h ^= {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            key.algo.hash(&mut hasher);
            hasher.finish()
        };
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Look up a key, consulting memory first and then the disk store.
    pub fn get(&self, key: &OrderingKey) -> Option<Arc<CachedOrdering>> {
        self.lookup(key, true)
    }

    /// Like [`OrderingCache::get`], but a negative result is not
    /// counted as a miss. Used for the engine's second probe under the
    /// in-flight lock, which would otherwise double-count every miss.
    pub fn get_uncounted(&self, key: &OrderingKey) -> Option<Arc<CachedOrdering>> {
        self.lookup(key, false)
    }

    fn lookup(&self, key: &OrderingKey, count_miss: bool) -> Option<Arc<CachedOrdering>> {
        if let Some(v) = self.shard_for(key).lock().unwrap().get(key) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        if let Some(v) = self.load_from_disk(key) {
            self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
            let v = Arc::new(v);
            // Repopulate memory without re-counting as an insertion —
            // the computation was done by whoever wrote the file.
            let evicted = self.shard_for(key).lock().unwrap().insert(
                *key,
                Arc::clone(&v),
                self.per_shard_capacity,
            );
            self.counters
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
            return Some(v);
        }
        if count_miss {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Insert a freshly computed ordering and persist it if configured.
    pub fn insert(&self, key: OrderingKey, value: Arc<CachedOrdering>) {
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        let evicted = self.shard_for(&key).lock().unwrap().insert(
            key,
            Arc::clone(&value),
            self.per_shard_capacity,
        );
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
        if let Err(e) = self.store_to_disk(&key, &value) {
            eprintln!("engine cache: failed to persist {}: {e}", key.file_stem());
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
        }
    }

    fn disk_path(&self, key: &OrderingKey) -> Option<PathBuf> {
        self.persist_dir
            .as_ref()
            .map(|d| d.join(format!("{}.perm", key.file_stem())))
    }

    /// On-disk format, one value per line: a header
    /// `perm-cache-v1 <len> <symmetric 0|1>` followed by the
    /// `order[new] = old` indices.
    fn store_to_disk(&self, key: &OrderingKey, value: &CachedOrdering) -> std::io::Result<()> {
        let Some(path) = self.disk_path(key) else {
            return Ok(());
        };
        if path.exists() {
            return Ok(());
        }
        std::fs::create_dir_all(path.parent().expect("cache files live in a directory"))?;
        // Write to a temp file and rename so concurrent readers never
        // see a torn entry.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            writeln!(
                f,
                "perm-cache-v1 {} {}",
                value.perm.len(),
                u8::from(value.symmetric)
            )?;
            for &old in value.perm.order() {
                writeln!(f, "{old}")?;
            }
            f.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn load_from_disk(&self, key: &OrderingKey) -> Option<CachedOrdering> {
        let path = self.disk_path(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        parse_perm_file(&text).or_else(|| {
            eprintln!("engine cache: ignoring malformed file {}", path.display());
            None
        })
    }
}

fn parse_perm_file(text: &str) -> Option<CachedOrdering> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut parts = header.split_whitespace();
    if parts.next()? != "perm-cache-v1" {
        return None;
    }
    let len: usize = parts.next()?.parse().ok()?;
    let symmetric = match parts.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let order: Vec<u32> = lines
        .map(|l| l.trim().parse().ok())
        .collect::<Option<_>>()?;
    if order.len() != len {
        return None;
    }
    let perm = Permutation::from_new_to_old(order).ok()?;
    Some(CachedOrdering {
        perm,
        symmetric,
        compute_seconds: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u128) -> OrderingKey {
        OrderingKey::new(i, AlgoSpec::Rcm)
    }

    fn entry(n: usize) -> Arc<CachedOrdering> {
        Arc::new(CachedOrdering {
            perm: Permutation::identity(n),
            symmetric: true,
            compute_seconds: 0.01,
        })
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        // Single shard so eviction order is fully deterministic.
        let cache = OrderingCache::new(3, 1);
        cache.insert(key(1), entry(1));
        cache.insert(key(2), entry(2));
        cache.insert(key(3), entry(3));
        // Touch key 1 so key 2 becomes the oldest.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(4), entry(4));
        assert!(cache.get(&key(2)).is_none(), "oldest entry must be evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert!(cache.get(&key(4)).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 4);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 4);
    }

    #[test]
    fn eviction_cascade_past_capacity() {
        let cache = OrderingCache::new(2, 1);
        for i in 0..6 {
            cache.insert(key(i), entry(1));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 4);
        // The two most recent survive.
        assert!(cache.get(&key(4)).is_some());
        assert!(cache.get(&key(5)).is_some());
        for i in 0..4 {
            assert!(cache.get(&key(i)).is_none());
        }
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let cache = OrderingCache::new(2, 1);
        cache.insert(key(1), entry(1));
        cache.insert(key(2), entry(2));
        // Refreshing key 1 must not evict anything...
        cache.insert(key(1), entry(1));
        assert_eq!(cache.stats().evictions, 0);
        // ...and must make key 2 the LRU victim.
        cache.insert(key(3), entry(3));
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
    }

    #[test]
    fn sharded_capacity_and_spread() {
        let cache = OrderingCache::new(8, 4);
        assert_eq!(cache.capacity(), 8);
        for i in 0..8 {
            cache.insert(key(i), entry(1));
        }
        // No shard can exceed its per-shard capacity, so at most 8
        // entries remain; with a uniform key hash most should survive.
        assert!(cache.len() >= 4, "len {} unexpectedly small", cache.len());
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "engine-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = OrderingCache::new(4, 1).with_persist_dir(&dir);
        let perm = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        writer.insert(
            OrderingKey::new(42, AlgoSpec::Gray),
            Arc::new(CachedOrdering {
                perm: perm.clone(),
                symmetric: false,
                compute_seconds: 1.5,
            }),
        );

        // A fresh cache (cold memory) finds the entry on disk.
        let reader = OrderingCache::new(4, 1).with_persist_dir(&dir);
        let got = reader
            .get(&OrderingKey::new(42, AlgoSpec::Gray))
            .expect("disk hit");
        assert_eq!(got.perm.order(), perm.order());
        assert!(!got.symmetric);
        let s = reader.stats();
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.misses, 0);
        // Second read is a memory hit.
        assert!(reader.get(&OrderingKey::new(42, AlgoSpec::Gray)).is_some());
        assert_eq!(reader.stats().hits, 1);
        // Different algorithm on the same matrix is still a miss.
        assert!(reader.get(&OrderingKey::new(42, AlgoSpec::Rcm)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_disk_entry_is_ignored() {
        assert!(parse_perm_file("not-a-header\n0\n").is_none());
        assert!(parse_perm_file("perm-cache-v1 3 1\n0\n1\n").is_none()); // short
        assert!(parse_perm_file("perm-cache-v1 2 1\n0\n0\n").is_none()); // not a permutation
        assert!(parse_perm_file("perm-cache-v1 2 1\n1\n0\n").is_some());
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            insertions: 1,
            evictions: 0,
            disk_hits: 1,
        };
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
