//! The batched worker pool: a fixed set of `std::thread` workers
//! consuming a bounded job queue.
//!
//! Each job computes one reordering and publishes it through the
//! shared cache plus an [`InFlight`] slot that every coalesced waiter
//! blocks on. The queue is bounded (`std::sync::mpsc::sync_channel`),
//! so a flood of submissions applies back-pressure to callers instead
//! of ballooning memory.
//!
//! The pool reports through the telemetry registry (`engine.pool.*`):
//! a queue-depth gauge (incremented by the submitter, decremented at
//! dequeue), a per-job wall-clock histogram, and executed/failed
//! counters. The reordering itself runs under
//! [`reorder::timed_permutation_on`] with the engine's shared reorder
//! team, so per-algorithm compute histograms (`reorder.rcm`, ...) and
//! throughput gauges (`reorder.rcm.nnz_per_s`) accumulate in the same
//! registry, and sampled jobs record `reorder.symmetrize` /
//! `reorder.levels` sub-stage spans under their `engine.reorder` span.

use crate::cache::{CachedOrdering, OrderingKey};
use crate::EngineError;
use sparsemat::CsrMatrix;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use telemetry::trace::{TraceCtx, TraceSpan};
use telemetry::{Counter, Gauge, Histogram, Registry};

/// Trace propagation for a sampled request's job: the request's
/// context plus the enqueue instant, so the worker can backdate the
/// `engine.queue.wait` span to cover the time the job sat in the
/// channel.
pub(crate) struct JobTrace {
    pub ctx: TraceCtx,
    pub enqueued: Instant,
}

/// One queued reordering computation.
pub(crate) struct Job {
    pub key: OrderingKey,
    pub matrix: Arc<CsrMatrix>,
    pub slot: Arc<InFlight>,
    /// Present only for sampled (traced) requests.
    pub trace: Option<JobTrace>,
}

/// The rendezvous for one in-flight computation: the first requester
/// enqueues the job; every later requester for the same key blocks on
/// the same slot and receives the shared result.
#[derive(Debug)]
pub struct InFlight {
    state: Mutex<Option<Result<Arc<CachedOrdering>, EngineError>>>,
    cv: Condvar,
    /// Effective deadline for the computation: the latest deadline over
    /// every coalesced waiter, `None` meaning unbounded. A worker that
    /// dequeues the job after this instant cancels it without ever
    /// touching `reorder`.
    deadline: Mutex<Option<Instant>>,
}

impl InFlight {
    pub(crate) fn with_deadline(deadline: Option<Instant>) -> Self {
        InFlight {
            state: Mutex::new(None),
            cv: Condvar::new(),
            deadline: Mutex::new(deadline),
        }
    }

    /// Extend the shared deadline to cover a newly coalesced waiter:
    /// the computation must stay alive until the *latest* interested
    /// deadline, and any unbounded waiter makes it unbounded.
    pub(crate) fn extend_deadline(&self, other: Option<Instant>) {
        let mut d = self.deadline.lock().unwrap();
        *d = match (*d, other) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
    }

    /// The current effective deadline (`None` = unbounded).
    pub(crate) fn deadline(&self) -> Option<Instant> {
        *self.deadline.lock().unwrap()
    }

    /// Block until the computation completes.
    pub fn wait(&self) -> Result<Arc<CachedOrdering>, EngineError> {
        let mut guard = self.state.lock().unwrap();
        while guard.is_none() {
            guard = self.cv.wait(guard).unwrap();
        }
        guard.as_ref().expect("checked above").clone()
    }

    pub(crate) fn fulfil(&self, result: Result<Arc<CachedOrdering>, EngineError>) {
        let mut guard = self.state.lock().unwrap();
        *guard = Some(result);
        self.cv.notify_all();
    }
}

/// The pool's registry metrics (`engine.pool.*`), resolved once.
#[derive(Debug)]
pub(crate) struct PoolMetrics {
    /// Jobs computed to completion.
    pub jobs_executed: Arc<Counter>,
    /// Jobs whose computation failed.
    pub jobs_failed: Arc<Counter>,
    /// Total successful compute wall-clock, nanoseconds.
    pub compute_ns: Arc<Counter>,
    /// Wall-clock per job (success or failure), nanoseconds.
    pub job_duration: Arc<Histogram>,
    /// Jobs enqueued but not yet picked up by a worker.
    pub queue_depth: Arc<Gauge>,
    /// Jobs cancelled at dequeue because their deadline had passed.
    pub expired: Arc<Counter>,
    /// Jobs whose lineage probe found a cached ancestor ordering.
    pub delta_hits: Arc<Counter>,
    /// Jobs served by splicing instead of a full recompute.
    pub delta_splices: Arc<Counter>,
    /// Dirty fraction of the most recent splice, in basis points
    /// (10000 = the whole matrix was re-ordered).
    pub delta_dirty_frac: Arc<Gauge>,
}

impl PoolMetrics {
    /// Resolve the pool series with `labels` on every one, so several
    /// engines sharing one registry (the serving tier's shards) keep
    /// distinct gauges and counters instead of colliding on the global
    /// names. Empty labels give the plain single-engine series.
    pub(crate) fn new_labeled(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        PoolMetrics {
            jobs_executed: registry.counter_labeled("engine.pool.jobs_executed", labels),
            jobs_failed: registry.counter_labeled("engine.pool.jobs_failed", labels),
            compute_ns: registry.counter_labeled("engine.pool.compute_ns", labels),
            job_duration: registry.histogram_labeled("engine.pool.job", labels),
            queue_depth: registry.gauge_labeled("engine.pool.queue_depth", labels),
            expired: registry.counter_labeled("engine.expired", labels),
            delta_hits: registry.counter_labeled("engine.delta.hits", labels),
            delta_splices: registry.counter_labeled("engine.delta.splices", labels),
            delta_dirty_frac: registry.gauge_labeled("engine.delta.dirty_frac", labels),
        }
    }
}

/// Everything a worker needs to process jobs.
pub(crate) struct WorkerContext {
    pub cache: Arc<crate::cache::OrderingCache>,
    pub inflight: Arc<Mutex<std::collections::HashMap<OrderingKey, Arc<InFlight>>>>,
    pub registry: Arc<Registry>,
    pub metrics: PoolMetrics,
    /// Shared team the parallel ordering stages dispatch on (size 1
    /// keeps every stage inline on the worker thread). The team's
    /// dispatch mutex serialises regions, so concurrent workers simply
    /// take turns using it.
    pub reorder_team: Arc<team::ThreadTeam>,
}

/// Spawn `workers` threads consuming from a bounded channel of
/// capacity `queue_capacity`. Returns the sender and the join handles;
/// dropping the sender drains and stops the pool.
pub(crate) fn spawn_pool(
    workers: usize,
    queue_capacity: usize,
    ctx: WorkerContext,
) -> (SyncSender<Job>, Vec<JoinHandle<()>>) {
    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(queue_capacity.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let ctx = Arc::new(ctx);
    let handles = (0..workers.max(1))
        .map(|i| {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name(format!("engine-worker-{i}"))
                .spawn(move || worker_loop(&rx, &ctx))
                .expect("spawning an engine worker thread")
        })
        .collect();
    (tx, handles)
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, ctx: &WorkerContext) {
    loop {
        // Hold the receiver lock only for the dequeue, never during
        // compute, so workers pull jobs concurrently.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: pool shutdown
        };
        ctx.metrics.queue_depth.dec();
        process(job, ctx);
    }
}

fn process(job: Job, ctx: &WorkerContext) {
    let start = Instant::now();
    // The queue wait ends where the compute begins: backdated to the
    // enqueue instant so the trace shows the gap, not just the work.
    if let Some(t) = &job.trace {
        t.ctx
            .complete("engine.queue.wait", t.enqueued, start, Vec::new());
    }
    // Cancellation point: a request whose deadline passed while queued
    // is fulfilled with `Expired` here, before any reorder work starts,
    // so expensive orderings are never computed for dead requests.
    if let Some(deadline) = job.slot.deadline() {
        if start >= deadline {
            ctx.metrics.expired.inc();
            if let Some(t) = &job.trace {
                t.ctx.instant("engine.expired");
            }
            ctx.inflight.lock().unwrap().remove(&job.key);
            job.slot.fulfil(Err(EngineError::Expired));
            return;
        }
    }
    let mut reorder_span = match &job.trace {
        Some(t) => {
            let mut s = t.ctx.span("engine.reorder");
            s.arg("algo", job.key.algo.name());
            s
        }
        None => TraceSpan::disabled(),
    };
    let rexec = reorder::ReorderExec::on_team(&ctx.reorder_team).with_trace(reorder_span.ctx());
    let algo = job.key.algo.instantiate();
    let computed = match try_splice(&job, ctx, algo.as_ref(), &rexec) {
        Some(t) => Ok(t),
        None => reorder::timed_components_on(&ctx.registry, algo.as_ref(), &job.matrix, &rexec),
    };
    reorder_span.arg("ok", if computed.is_ok() { "true" } else { "false" });
    drop(reorder_span);
    let elapsed = start.elapsed();
    ctx.metrics.job_duration.record_duration(elapsed);

    let result = match computed {
        Ok(t) => {
            let cached = Arc::new(CachedOrdering {
                perm: t.result.perm,
                symmetric: t.result.symmetric,
                compute_seconds: t.elapsed.as_secs_f64(),
                ranges: t.ranges,
            });
            ctx.cache.insert(job.key, Arc::clone(&cached));
            ctx.metrics.jobs_executed.inc();
            ctx.metrics
                .compute_ns
                .add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            Ok(cached)
        }
        Err(e) => {
            ctx.metrics.jobs_failed.inc();
            Err(EngineError::Compute {
                algo: job.key.algo,
                message: e.to_string(),
            })
        }
    };

    // Publish order matters: the cache already has the entry, so once
    // the key leaves the in-flight map any new request finds it there.
    ctx.inflight.lock().unwrap().remove(&job.key);
    job.slot.fulfil(result);
}

/// The delta-update path: walk the matrix's lineage newest→oldest,
/// accumulating the touched-row union, and probe the cache for each
/// ancestor's ordering under the same algorithm. On a hit with a
/// component→range map, re-order only the dirty components and splice
/// the cached sub-permutations back (byte-identical to a full
/// recompute — see [`reorder::splice_ordering_on`]). Returns `None`
/// when no ancestor is cached, the algorithm is not
/// component-structured, or the splice declines — the caller falls
/// back to the full compute path.
fn try_splice(
    job: &Job,
    ctx: &WorkerContext,
    algo: &dyn reorder::ReorderAlgorithm,
    rexec: &reorder::ReorderExec<'_>,
) -> Option<reorder::TimedComponentReordering> {
    if !algo.supports_components() || job.matrix.lineage().is_empty() {
        return None;
    }
    // Nearest cached ancestor wins: it has the smallest touched set.
    let mut touched: Vec<u32> = Vec::new();
    let mut found: Option<Arc<CachedOrdering>> = None;
    for hop in job.matrix.lineage().iter().rev() {
        touched.extend_from_slice(&hop.touched);
        let key = OrderingKey::new(hop.parent, job.key.algo);
        if let Some(entry) = ctx.cache.peek(&key) {
            if entry.ranges.is_some() {
                found = Some(entry);
                break;
            }
        }
    }
    let entry = found?;
    ctx.metrics.delta_hits.inc();
    touched.sort_unstable();
    touched.dedup();

    let mut span = rexec.trace().span("reorder.splice");
    span.arg("algo", job.key.algo.name());
    let start = Instant::now();
    let spliced = reorder::splice_ordering_on(
        algo,
        &job.matrix,
        entry.perm.order(),
        entry.ranges.as_ref().expect("probe required ranges"),
        &touched,
        rexec,
    )
    .ok()
    .flatten();
    let elapsed = start.elapsed();
    let (co, report) = match spliced {
        Some(s) => s,
        None => {
            span.arg("ok", "false");
            return None;
        }
    };
    span.arg("ok", "true");
    span.arg("recomputed", report.recomputed);
    span.arg("components", report.components);
    ctx.metrics.delta_splices.inc();
    ctx.metrics
        .delta_dirty_frac
        .set((report.dirty_frac(job.matrix.nrows()) * 10_000.0) as i64);
    ctx.registry
        .histogram("reorder.splice")
        .record_duration(elapsed);
    let (result, ranges) = co.into_parts().ok()?;
    Some(reorder::TimedComponentReordering {
        result,
        ranges: Some(ranges),
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn coalesced_deadlines_extend_to_the_latest() {
        let now = Instant::now();
        let slot = InFlight::with_deadline(Some(now + Duration::from_millis(10)));
        // A later waiter pushes the deadline out...
        slot.extend_deadline(Some(now + Duration::from_millis(50)));
        assert_eq!(slot.deadline(), Some(now + Duration::from_millis(50)));
        // ...an earlier one never pulls it back in...
        slot.extend_deadline(Some(now + Duration::from_millis(5)));
        assert_eq!(slot.deadline(), Some(now + Duration::from_millis(50)));
        // ...and an unbounded waiter makes the computation unbounded.
        slot.extend_deadline(None);
        assert_eq!(slot.deadline(), None);
        slot.extend_deadline(Some(now));
        assert_eq!(slot.deadline(), None, "unbounded stays unbounded");
    }
}
