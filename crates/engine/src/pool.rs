//! The batched worker pool: a fixed set of `std::thread` workers
//! consuming a bounded job queue.
//!
//! Each job computes one reordering and publishes it through the
//! shared cache plus an [`InFlight`] slot that every coalesced waiter
//! blocks on. The queue is bounded (`std::sync::mpsc::sync_channel`),
//! so a flood of submissions applies back-pressure to callers instead
//! of ballooning memory.

use crate::cache::{CachedOrdering, OrderingKey};
use crate::EngineError;
use sparsemat::CsrMatrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued reordering computation.
pub(crate) struct Job {
    pub key: OrderingKey,
    pub matrix: Arc<CsrMatrix>,
    pub slot: Arc<InFlight>,
}

/// The rendezvous for one in-flight computation: the first requester
/// enqueues the job; every later requester for the same key blocks on
/// the same slot and receives the shared result.
#[derive(Debug)]
pub struct InFlight {
    state: Mutex<Option<Result<Arc<CachedOrdering>, EngineError>>>,
    cv: Condvar,
}

impl InFlight {
    pub(crate) fn new() -> Self {
        InFlight {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Block until the computation completes.
    pub fn wait(&self) -> Result<Arc<CachedOrdering>, EngineError> {
        let mut guard = self.state.lock().unwrap();
        while guard.is_none() {
            guard = self.cv.wait(guard).unwrap();
        }
        guard.as_ref().expect("checked above").clone()
    }

    pub(crate) fn fulfil(&self, result: Result<Arc<CachedOrdering>, EngineError>) {
        let mut guard = self.state.lock().unwrap();
        *guard = Some(result);
        self.cv.notify_all();
    }
}

/// Work accounting shared between the pool and the engine facade.
#[derive(Debug, Default)]
pub(crate) struct PoolCounters {
    pub jobs_executed: AtomicU64,
    pub jobs_failed: AtomicU64,
    /// Total wall-clock compute time, in microseconds (atomic so the
    /// hot path never takes a lock for accounting).
    pub compute_micros: AtomicU64,
}

/// Everything a worker needs to process jobs.
pub(crate) struct WorkerContext {
    pub cache: Arc<crate::cache::OrderingCache>,
    pub inflight: Arc<Mutex<std::collections::HashMap<OrderingKey, Arc<InFlight>>>>,
    pub counters: Arc<PoolCounters>,
}

/// Spawn `workers` threads consuming from a bounded channel of
/// capacity `queue_capacity`. Returns the sender and the join handles;
/// dropping the sender drains and stops the pool.
pub(crate) fn spawn_pool(
    workers: usize,
    queue_capacity: usize,
    ctx: WorkerContext,
) -> (SyncSender<Job>, Vec<JoinHandle<()>>) {
    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(queue_capacity.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let ctx = Arc::new(ctx);
    let handles = (0..workers.max(1))
        .map(|i| {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name(format!("engine-worker-{i}"))
                .spawn(move || worker_loop(&rx, &ctx))
                .expect("spawning an engine worker thread")
        })
        .collect();
    (tx, handles)
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, ctx: &WorkerContext) {
    loop {
        // Hold the receiver lock only for the dequeue, never during
        // compute, so workers pull jobs concurrently.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: pool shutdown
        };
        process(job, ctx);
    }
}

fn process(job: Job, ctx: &WorkerContext) {
    let start = Instant::now();
    let computed = job.key.algo.instantiate().compute(&job.matrix);
    let elapsed = start.elapsed();

    let result = match computed {
        Ok(r) => {
            let cached = Arc::new(CachedOrdering {
                perm: r.perm,
                symmetric: r.symmetric,
                compute_seconds: elapsed.as_secs_f64(),
            });
            ctx.cache.insert(job.key, Arc::clone(&cached));
            ctx.counters.jobs_executed.fetch_add(1, Ordering::Relaxed);
            ctx.counters
                .compute_micros
                .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
            Ok(cached)
        }
        Err(e) => {
            ctx.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
            Err(EngineError::Compute {
                algo: job.key.algo,
                message: e.to_string(),
            })
        }
    };

    // Publish order matters: the cache already has the entry, so once
    // the key leaves the in-flight map any new request finds it there.
    ctx.inflight.lock().unwrap().remove(&job.key);
    job.slot.fulfil(result);
}
