//! The persistent thread-team executor.
//!
//! Every SpMV kernel used to spawn and join fresh OS threads per call
//! via scoped spawns, so the paper's 100-repetition measurement
//! protocol (§4.1) paid spawn/join overhead on every iteration — tens
//! of microseconds that systematically inflate small-matrix timings
//! and distort reordering-speedup ratios. A [`ThreadTeam`] is created
//! once and reused across iterations: a pool of long-lived workers
//! dispatched through a spin-then-park barrier, the "reusable thread
//! team with lightweight barriers" that Bergmans et al. identify as a
//! precondition for meaningful shared-memory SpMV measurement.
//!
//! The executor lives in its own crate so both sides of the pipeline
//! can share one threading story: `spmv` kernels and the
//! `sparsemat`/`sparsegraph`/`reorder` ordering stack all depend on
//! `team` without a cycle. Metric and trace-event names keep their
//! historical `spmv.team.*` prefix — dashboards and the tracecheck CI
//! gate predate the move.
//!
//! # Execution model
//!
//! A team of size `n` owns `n - 1` worker threads; the caller of
//! [`ThreadTeam::run`] acts as lane 0 (leader participation, as in
//! OpenMP), so a team of size 1 runs entirely inline with zero
//! dispatch cost. Each `run(f)` invokes `f(lane)` exactly once per
//! lane `0..n` and returns only when every lane has finished — a
//! fork-join region without the fork.
//!
//! On top of the lane-indexed `run`, [`ThreadTeam::parallel_for`] and
//! [`ThreadTeam::map_chunks`] provide chunked data-parallel loops over
//! an index space. Chunk boundaries depend only on `(n, grain)` —
//! never on the team size or on scheduling — and [`Exec`] lets callers
//! write one loop body that runs either inline or on a team over the
//! *same* chunk decomposition. Any computation whose output is a pure
//! function of its chunk is therefore byte-identical across team
//! sizes, the property the reordering pipeline's determinism tests
//! pin down.
//!
//! # Barrier protocol
//!
//! Dispatch is epoch-based. The leader writes the job pointer into a
//! shared slot, resets the completion counter, publishes a new epoch
//! with a release store, and unparks every worker. Workers spin
//! briefly on the epoch (cheap when a dispatch is imminent), then
//! park; `unpark`'s token semantics make the wakeup race-free even if
//! the leader unparks before the worker parks. After running its
//! lane, each worker increments the completion counter; the last one
//! unparks the leader, which spins-then-parks symmetrically. Worker
//! panics are caught, flagged, and re-raised on the leader so a
//! poisoned iteration cannot deadlock the barrier.
//!
//! # Observability
//!
//! Two registry histograms make the team's overhead visible:
//! `spmv.team.dispatch_wait` records how long each worker lane waited
//! between job publication and pickup (the dispatch latency the team
//! exists to minimise), and `spmv.team.compute` records per-lane
//! kernel time. Comparing the two shows exactly how much of a
//! parallel region is coordination versus work.
//!
//! On top of the aggregate histograms, a team can record into the
//! flight recorder: [`ThreadTeam::trace_scope`] attaches a
//! [`TraceCtx`], and every epoch dispatched while the scope is live
//! emits per-lane `spmv.team.park` / `spmv.team.dispatch` /
//! `spmv.team.compute` segments — one Perfetto timeline lane per
//! worker, making load imbalance visible per call rather than only as
//! a histogram. With no context attached, `run` pays a single relaxed
//! atomic load.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, Thread};
use std::time::Instant;
use telemetry::trace::{ArgValue, TraceCtx};
use telemetry::{Histogram, Registry};

/// Spins on the epoch before parking. Small: on an oversubscribed
/// host (more lanes than cores) spinning only steals cycles from the
/// workers that hold the actual work.
const SPIN_BUDGET: u32 = 128;

/// The current dispatch: a type-erased pointer to the region closure,
/// the instant it was published, the epoch number, and the trace
/// context (if the epoch is being recorded).
struct JobMsg {
    ptr: *const (dyn Fn(usize) + Sync),
    published: Instant,
    epoch_no: u64,
    trace: Option<TraceCtx>,
}

/// The job slot the leader hands to workers.
type JobSlot = Option<JobMsg>;

/// State shared between the leader and the workers.
struct Shared {
    /// Bumped (release) to publish a new job; workers acquire-load it.
    epoch: AtomicU64,
    /// Written by the leader strictly before the epoch bump, read by
    /// workers strictly after observing the bump.
    job: UnsafeCell<JobSlot>,
    /// Lanes finished in the current epoch (workers only; the leader
    /// runs lane 0 itself).
    done: AtomicUsize,
    /// Set when any lane panicked during the current epoch.
    panicked: AtomicBool,
    /// Set (then epoch-bumped) to retire the team.
    shutdown: AtomicBool,
    /// The leader's handle while it may be parked in [`ThreadTeam::run`];
    /// the last worker to finish unparks it.
    leader: Mutex<Option<Thread>>,
    /// Worker count (`team size - 1`).
    nworkers: usize,
}

// SAFETY: `job` is written only by the leader while every worker is
// quiescent (before the release epoch bump that hands the slot over)
// and read by workers only after the acquire load that observes the
// bump, so all accesses are ordered. The pointer it carries is only
// dereferenced between publication and the completion barrier, during
// which `run` keeps the referent alive (see `run`).
unsafe impl Sync for Shared {}
// SAFETY: same argument as `Sync` — the raw pointer in the job slot is
// only touched under the epoch protocol, so moving the Arc'd `Shared`
// to a worker thread is sound.
unsafe impl Send for Shared {}

/// A persistent team of worker threads executing fork-join parallel
/// regions without per-call thread spawns. See the module docs for
/// the protocol.
pub struct ThreadTeam {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serialises dispatches: `run` takes `&self` so plans can hold
    /// teams behind shared references, but the job slot supports one
    /// region at a time.
    dispatch: Mutex<()>,
    size: usize,
    dispatches: Arc<telemetry::Counter>,
    /// Fast gate for the tracing path: `run` reads this once (relaxed)
    /// and only touches `trace_ctx` when it is set.
    trace_on: AtomicBool,
    /// The context epochs record under while a trace scope is live.
    trace_ctx: Mutex<TraceCtx>,
}

impl std::fmt::Debug for ThreadTeam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadTeam")
            .field("size", &self.size)
            .finish()
    }
}

impl ThreadTeam {
    /// A team with `size` lanes (clamped to ≥ 1), reporting into the
    /// global telemetry registry. Spawns `size - 1` named OS threads
    /// that live until the team is dropped.
    pub fn new(size: usize) -> ThreadTeam {
        ThreadTeam::new_in(&Registry::global(), size)
    }

    /// Like [`ThreadTeam::new`] but reporting into `registry` (tests
    /// that assert exact histogram counts pass a private registry).
    pub fn new_in(registry: &Arc<Registry>, size: usize) -> ThreadTeam {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            job: UnsafeCell::new(None),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            leader: Mutex::new(None),
            nworkers: size - 1,
        });
        let dispatch_wait = registry.histogram("spmv.team.dispatch_wait");
        let compute = registry.histogram("spmv.team.compute");
        let workers = (1..size)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                let dispatch_wait = Arc::clone(&dispatch_wait);
                let compute = Arc::clone(&compute);
                std::thread::Builder::new()
                    .name(format!("spmv-team-{lane}"))
                    .spawn(move || worker_loop(&shared, lane, &dispatch_wait, &compute))
                    .expect("spawning a team worker")
            })
            .collect();
        ThreadTeam {
            shared,
            workers,
            dispatch: Mutex::new(()),
            size,
            dispatches: registry.counter("spmv.team.dispatches"),
            trace_on: AtomicBool::new(false),
            trace_ctx: Mutex::new(TraceCtx::disabled()),
        }
    }

    /// Number of lanes (the caller's lane plus the worker threads).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Attach a trace context: every epoch dispatched until
    /// [`ThreadTeam::clear_trace`] records per-lane park/dispatch/
    /// compute segments under `ctx`'s parent span. A disabled context
    /// leaves tracing off. Prefer [`ThreadTeam::trace_scope`], which
    /// detaches automatically.
    pub fn set_trace(&self, ctx: &TraceCtx) {
        *self.trace_ctx.lock().unwrap() = ctx.clone();
        self.trace_on.store(ctx.is_recording(), Ordering::Relaxed);
    }

    /// Detach the trace context; subsequent epochs record nothing.
    pub fn clear_trace(&self) {
        self.trace_on.store(false, Ordering::Relaxed);
        *self.trace_ctx.lock().unwrap() = TraceCtx::disabled();
    }

    /// RAII form of [`ThreadTeam::set_trace`]: tracing stays attached
    /// while the guard lives and detaches on drop.
    pub fn trace_scope<'a>(&'a self, ctx: &TraceCtx) -> TeamTraceGuard<'a> {
        self.set_trace(ctx);
        TeamTraceGuard { team: self }
    }

    /// Execute one parallel region: `f(lane)` runs exactly once per
    /// lane in `0..size`, lane 0 on the calling thread, and `run`
    /// returns only after every lane finished. Concurrent calls from
    /// different threads are serialised.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any lane (after the barrier completes,
    /// so the team stays usable).
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        // One relaxed load when tracing is off — the whole cost of the
        // instrumentation on the untraced path.
        let trace = if self.trace_on.load(Ordering::Relaxed) {
            let ctx = self.trace_ctx.lock().unwrap().clone();
            ctx.is_recording().then_some(ctx)
        } else {
            None
        };
        if self.size == 1 {
            // Degenerate team: no workers, no dispatch, no barrier.
            if let Some(ctx) = &trace {
                let t0 = Instant::now();
                f(0);
                ctx.complete(
                    "spmv.team.compute",
                    t0,
                    Instant::now(),
                    vec![("lane", ArgValue::U64(0))],
                );
            } else {
                f(0);
            }
            return;
        }
        // A propagated lane panic unwinds `run` with this guard held,
        // poisoning the mutex; the team itself stays consistent (the
        // barrier completed), so recover the lock instead of failing.
        let _region = self
            .dispatch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        self.dispatches.inc();
        let shared = &self.shared;
        *shared.leader.lock().unwrap() = Some(std::thread::current());
        shared.done.store(0, Ordering::Relaxed);
        shared.panicked.store(false, Ordering::Relaxed);
        // Publish the job. The lifetime of `f` is erased; the
        // completion barrier below re-establishes it before `run`
        // returns, so no worker can observe a dangling pointer.
        let ptr: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let epoch_no = shared.epoch.load(Ordering::Relaxed) + 1;
        unsafe {
            *shared.job.get() = Some(JobMsg {
                ptr,
                published: Instant::now(),
                epoch_no,
                trace: trace.clone(),
            })
        };
        shared.epoch.fetch_add(1, Ordering::Release);
        for w in &self.workers {
            w.thread().unpark();
        }

        // Lane 0 runs on the caller. Catch a leader panic so the
        // barrier still completes (workers hold the erased borrow).
        let leader_t0 = trace.as_ref().map(|_| Instant::now());
        let leader_result = catch_unwind(AssertUnwindSafe(|| f(0)));
        if let (Some(ctx), Some(t0)) = (&trace, leader_t0) {
            ctx.complete(
                "spmv.team.compute",
                t0,
                Instant::now(),
                vec![
                    ("lane", ArgValue::U64(0)),
                    ("epoch", ArgValue::U64(epoch_no)),
                ],
            );
        }

        // Completion barrier: spin, then park until the last worker's
        // unpark token arrives.
        let mut spins = 0u32;
        while shared.done.load(Ordering::Acquire) != shared.nworkers {
            spins += 1;
            if spins < SPIN_BUDGET {
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        }
        *shared.leader.lock().unwrap() = None;
        unsafe { *shared.job.get() = None };

        if let Err(payload) = leader_result {
            std::panic::resume_unwind(payload);
        }
        assert!(
            !shared.panicked.load(Ordering::Acquire),
            "SpMV team worker panicked"
        );
    }

    /// Chunked data-parallel loop: split `0..n` into grain-sized
    /// chunks and invoke `body(range)` once per chunk, with chunks
    /// claimed dynamically by the team's lanes.
    ///
    /// Chunk boundaries are a pure function of `(n, grain)` — chunk
    /// `c` is `c*grain .. min((c+1)*grain, n)` — so a computation
    /// whose writes are confined to its own chunk (for example a
    /// prefix-sum fill through a [`SliceWriter`]) produces identical
    /// output for every team size, including the inline
    /// [`Exec::Sequential`] path, which walks the *same* chunks in
    /// order.
    ///
    /// A team of size 1, or an index space that fits in one chunk,
    /// runs entirely inline with no dispatch.
    pub fn parallel_for<F>(&self, n: usize, grain: usize, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let grain = grain.max(1);
        let nchunks = n.div_ceil(grain);
        if self.size == 1 || nchunks <= 1 {
            for c in 0..nchunks {
                body(chunk_range(c, grain, n));
            }
            return;
        }
        let next = AtomicUsize::new(0);
        self.run(&|_lane| loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= nchunks {
                break;
            }
            body(chunk_range(c, grain, n));
        });
    }

    /// Like [`ThreadTeam::parallel_for`], but each chunk produces a
    /// value: `f(chunk_index, range)` fills a deterministic per-chunk
    /// output slot, and the slots are returned in chunk order — so the
    /// concatenation of the results is independent of which lane ran
    /// which chunk.
    pub fn map_chunks<T, F>(&self, n: usize, grain: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        let grain = grain.max(1);
        let nchunks = n.div_ceil(grain);
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(nchunks).collect();
        if self.size == 1 || nchunks <= 1 {
            for (c, slot) in slots.iter_mut().enumerate() {
                *slot = Some(f(c, chunk_range(c, grain, n)));
            }
        } else {
            let writer = SliceWriter::new(&mut slots);
            let next = AtomicUsize::new(0);
            self.run(&|_lane| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= nchunks {
                    break;
                }
                let value = f(c, chunk_range(c, grain, n));
                // SAFETY: the fetch_add hands chunk `c` to exactly one
                // lane, so slot `c` is written exactly once and the
                // written ranges are disjoint across lanes.
                let slot = unsafe { writer.slice_mut(c..c + 1) };
                slot[0] = Some(value);
            });
        }
        slots
            .into_iter()
            .map(|s| s.expect("every chunk produced a value"))
            .collect()
    }
}

/// The half-open index range of chunk `c` in a `(n, grain)`
/// decomposition.
fn chunk_range(c: usize, grain: usize, n: usize) -> Range<usize> {
    let start = c * grain;
    start..((start + grain).min(n))
}

/// Where a chunked loop runs: inline on the calling thread, or on a
/// [`ThreadTeam`].
///
/// Both variants walk the **same** `(n, grain)` chunk decomposition
/// (see [`ThreadTeam::parallel_for`]), so code written against `Exec`
/// is deterministic by construction: switching between `Sequential`
/// and `Team` — or between team sizes — cannot change any output that
/// is a pure function of its chunk.
#[derive(Clone, Copy, Debug, Default)]
pub enum Exec<'a> {
    /// Run every chunk inline, in chunk order, on the calling thread.
    #[default]
    Sequential,
    /// Dispatch chunks onto the team's lanes.
    Team(&'a ThreadTeam),
}

impl Exec<'_> {
    /// Number of lanes available to this executor (1 for
    /// [`Exec::Sequential`]).
    pub fn lanes(&self) -> usize {
        match self {
            Exec::Sequential => 1,
            Exec::Team(t) => t.size(),
        }
    }

    /// Chunked loop over `0..n`; see [`ThreadTeam::parallel_for`].
    pub fn parallel_for<F>(&self, n: usize, grain: usize, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        match self {
            Exec::Sequential => {
                let grain = grain.max(1);
                for c in 0..n.div_ceil(grain) {
                    body(chunk_range(c, grain, n));
                }
            }
            Exec::Team(t) => t.parallel_for(n, grain, body),
        }
    }

    /// Chunked map over `0..n` with results in chunk order; see
    /// [`ThreadTeam::map_chunks`].
    pub fn map_chunks<T, F>(&self, n: usize, grain: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        match self {
            Exec::Sequential => {
                let grain = grain.max(1);
                (0..n.div_ceil(grain))
                    .map(|c| f(c, chunk_range(c, grain, n)))
                    .collect()
            }
            Exec::Team(t) => t.map_chunks(n, grain, f),
        }
    }
}

/// Shared-write window over a slice for disjoint parallel fills.
///
/// The prefix-sum fill pattern — compute per-row output offsets, then
/// let every lane write its own rows' segments — needs `&mut` access
/// to disjoint subslices from multiple threads, which the borrow
/// checker cannot express directly. `SliceWriter` erases the borrow
/// into a raw pointer; callers re-assert disjointness at each
/// [`SliceWriter::slice_mut`] call.
pub struct SliceWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a SliceWriter only hands out disjoint `&mut` windows (the
// caller contract on `slice_mut`), and `T: Send` means those windows
// may be written from any thread.
unsafe impl<T: Send> Sync for SliceWriter<'_, T> {}
// SAFETY: same argument; the writer is just a pointer + length.
unsafe impl<T: Send> Send for SliceWriter<'_, T> {}

impl<'a, T> SliceWriter<'a, T> {
    /// Wrap `slice` for disjoint parallel writing. The writer borrows
    /// the slice mutably for its whole lifetime, so no other access
    /// can alias the window it hands out.
    pub fn new(slice: &'a mut [T]) -> SliceWriter<'a, T> {
        SliceWriter {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the wrapped slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A mutable window over `range`.
    ///
    /// # Safety
    ///
    /// Concurrent calls must use pairwise-disjoint ranges, and no
    /// window may outlive the parallel region that created it: the
    /// caller is asserting that this window is the only live access
    /// to those elements.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }

    /// A shared reference to element `i`.
    ///
    /// Disjoint-commit phases often need read access to state *other*
    /// lanes own (a degree, a supervariable weight) alongside mutable
    /// access to their own elements. Going through
    /// [`SliceWriter::slice_mut`] for a read would assert uniqueness
    /// the caller cannot guarantee; this accessor asserts only
    /// immutability.
    ///
    /// # Safety
    ///
    /// For the lifetime of the returned reference, no
    /// [`SliceWriter::slice_mut`] window covering `i` may be live on
    /// any thread: element `i` must be read-only across the whole
    /// parallel region (or written exclusively by the calling lane).
    pub unsafe fn get_ref(&self, i: usize) -> &T {
        debug_assert!(i < self.len);
        &*self.ptr.add(i)
    }
}

/// Detaches a team's trace context on drop (see
/// [`ThreadTeam::trace_scope`]).
#[must_use = "dropping the guard immediately detaches tracing"]
pub struct TeamTraceGuard<'a> {
    team: &'a ThreadTeam,
}

impl Drop for TeamTraceGuard<'_> {
    fn drop(&mut self) {
        self.team.clear_trace();
    }
}

impl Drop for ThreadTeam {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for w in &self.workers {
            w.thread().unpark();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, lane: usize, dispatch_wait: &Histogram, compute: &Histogram) {
    let mut seen = 0u64;
    // When the previous epoch finished on this lane, and under which
    // trace — the park segment between two epochs of the *same* trace
    // is idle time worth showing; gaps across unrelated requests are
    // not.
    let mut last_done: Option<(Instant, Option<u64>)> = None;
    loop {
        // Wait for a new epoch: spin briefly, then park. A stale
        // unpark token at worst costs one extra loop iteration.
        let mut spins = 0u32;
        loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            spins += 1;
            if spins < SPIN_BUDGET {
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: the epoch acquire above pairs with the leader's
        // release bump, which happens-after the job write; the leader
        // cannot reclaim the slot before this lane increments `done`.
        let (ptr, published, epoch_no, trace) = unsafe {
            let msg = (*shared.job.get())
                .as_ref()
                .expect("epoch bump implies a job");
            (msg.ptr, msg.published, msg.epoch_no, msg.trace.clone())
        };
        let pickup = Instant::now();
        dispatch_wait.record_duration(pickup.saturating_duration_since(published));
        if let Some(ctx) = &trace {
            if let Some((prev_end, prev_trace)) = last_done {
                if prev_trace.is_some() && prev_trace == ctx.trace_id() {
                    ctx.complete(
                        "spmv.team.park",
                        prev_end,
                        published,
                        vec![("lane", ArgValue::U64(lane as u64))],
                    );
                }
            }
            ctx.complete(
                "spmv.team.dispatch",
                published,
                pickup,
                vec![
                    ("lane", ArgValue::U64(lane as u64)),
                    ("epoch", ArgValue::U64(epoch_no)),
                ],
            );
        }
        let t0 = Instant::now();
        // SAFETY: see `Shared::job` — the referent outlives the
        // barrier this lane is part of.
        let job = unsafe { &*ptr };
        if catch_unwind(AssertUnwindSafe(|| job(lane))).is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        let done_t = Instant::now();
        compute.record_duration(done_t.saturating_duration_since(t0));
        if let Some(ctx) = &trace {
            ctx.complete(
                "spmv.team.compute",
                t0,
                done_t,
                vec![
                    ("lane", ArgValue::U64(lane as u64)),
                    ("epoch", ArgValue::U64(epoch_no)),
                ],
            );
        }
        last_done = Some((done_t, trace.as_ref().and_then(|c| c.trace_id())));
        // Last lane out wakes the (possibly parked) leader.
        if shared.done.fetch_add(1, Ordering::AcqRel) + 1 == shared.nworkers {
            if let Some(leader) = shared.leader.lock().unwrap().as_ref() {
                leader.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_lane_runs_exactly_once() {
        let team = ThreadTeam::new_in(&Registry::new_arc(), 4);
        let counts: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        for _ in 0..100 {
            team.run(&|lane| {
                counts[lane].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (lane, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 100, "lane {lane}");
        }
    }

    #[test]
    fn size_one_runs_inline() {
        let team = ThreadTeam::new_in(&Registry::new_arc(), 1);
        assert_eq!(team.size(), 1);
        let tid = std::thread::current().id();
        let mut observed = None;
        let cell = Mutex::new(&mut observed);
        team.run(&|lane| {
            assert_eq!(lane, 0);
            **cell.lock().unwrap() = Some(std::thread::current().id());
        });
        assert_eq!(observed, Some(tid), "lane 0 must be the caller");
    }

    #[test]
    fn zero_size_is_clamped() {
        let team = ThreadTeam::new_in(&Registry::new_arc(), 0);
        assert_eq!(team.size(), 1);
        team.run(&|_| {});
    }

    #[test]
    fn sequential_regions_see_previous_writes() {
        // The barrier is a synchronisation point: region k+1 must see
        // every write of region k without extra fencing.
        let team = ThreadTeam::new_in(&Registry::new_arc(), 3);
        let data: Vec<Mutex<u64>> = (0..3).map(|_| Mutex::new(0)).collect();
        for round in 1..=50u64 {
            team.run(&|lane| {
                *data[lane].lock().unwrap() += round;
            });
            let expect: u64 = (1..=round).sum();
            for d in &data {
                assert_eq!(*d.lock().unwrap(), expect);
            }
        }
    }

    #[test]
    fn worker_panic_propagates_and_team_survives() {
        let team = ThreadTeam::new_in(&Registry::new_arc(), 2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            team.run(&|lane| {
                if lane == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must surface on the leader");
        // The barrier completed, so the team remains usable.
        let ran = AtomicU32::new(0);
        team.run(&|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn team_records_dispatch_and_compute_histograms() {
        let registry = Registry::new_arc();
        let team = ThreadTeam::new_in(&registry, 3);
        for _ in 0..10 {
            team.run(&|_| std::hint::black_box(()));
        }
        let snap = registry.snapshot();
        // Two worker lanes, ten dispatches each.
        assert_eq!(snap.histogram("spmv.team.dispatch_wait").unwrap().count, 20);
        assert_eq!(snap.histogram("spmv.team.compute").unwrap().count, 20);
        assert_eq!(snap.counter("spmv.team.dispatches"), Some(10));
    }

    #[test]
    fn traced_epochs_record_per_lane_segments() {
        use telemetry::trace::{EventKind, FlightRecorder};
        const EPOCHS: usize = 5;
        let team = ThreadTeam::new_in(&Registry::new_arc(), 3);
        let rec = FlightRecorder::new(4096);
        let ctx = rec.start_trace();
        {
            let _scope = team.trace_scope(&ctx);
            for _ in 0..EPOCHS {
                team.run(&|_| std::hint::black_box(()));
            }
        }
        // After the scope drops, epochs record nothing.
        team.run(&|_| std::hint::black_box(()));
        let snap = rec.snapshot();
        let count = |name: &str| {
            snap.events()
                .filter(|e| e.name == name && e.kind == EventKind::Begin)
                .count()
        };
        // 3 lanes × EPOCHS compute segments; dispatch only on the 2
        // worker lanes; park between consecutive same-trace epochs
        // (EPOCHS - 1 gaps × 2 worker lanes).
        assert_eq!(count("spmv.team.compute"), 3 * EPOCHS);
        assert_eq!(count("spmv.team.dispatch"), 2 * EPOCHS);
        assert_eq!(count("spmv.team.park"), 2 * (EPOCHS - 1));
        // One timeline lane per participating thread: leader + 2
        // workers all carry compute segments.
        let lanes_with_compute = snap
            .threads
            .iter()
            .filter(|t| t.events.iter().any(|e| e.name == "spmv.team.compute"))
            .count();
        assert_eq!(lanes_with_compute, 3);
    }

    #[test]
    fn untraced_team_records_no_events_and_size_one_traces_inline() {
        use telemetry::trace::FlightRecorder;
        let rec = FlightRecorder::new(256);
        let team = ThreadTeam::new_in(&Registry::new_arc(), 2);
        team.run(&|_| {});
        assert!(
            rec.snapshot().is_empty(),
            "a team with no trace scope must record nothing"
        );
        // The size-1 inline fast path still records its compute span.
        let solo = ThreadTeam::new_in(&Registry::new_arc(), 1);
        let ctx = rec.start_trace();
        let _scope = solo.trace_scope(&ctx);
        solo.run(&|_| {});
        let snap = rec.snapshot();
        assert_eq!(snap.total_events(), 2);
        assert!(snap.events().all(|e| e.name == "spmv.team.compute"));
    }

    #[test]
    fn oversubscribed_team_completes() {
        // Far more lanes than this host has cores: the park path, not
        // the spin path, carries the barrier.
        let team = ThreadTeam::new_in(&Registry::new_arc(), 16);
        let total = AtomicU32::new(0);
        for _ in 0..20 {
            team.run(&|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 16 * 20);
    }

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        for size in [1usize, 2, 4, 8] {
            let team = ThreadTeam::new_in(&Registry::new_arc(), size);
            for (n, grain) in [(0usize, 16usize), (1, 16), (100, 7), (1000, 64), (64, 64)] {
                let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
                team.parallel_for(n, grain, |range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "size {size} n {n} index {i}");
                }
            }
        }
    }

    #[test]
    fn map_chunks_returns_results_in_chunk_order() {
        let expected: Vec<Range<usize>> = vec![0..7, 7..14, 14..21, 21..25];
        for size in [1usize, 3, 8] {
            let team = ThreadTeam::new_in(&Registry::new_arc(), size);
            let got = team.map_chunks(25, 7, |c, range| (c, range));
            let ranges: Vec<Range<usize>> = got.iter().map(|(_, r)| r.clone()).collect();
            assert_eq!(ranges, expected, "size {size}");
            for (i, (c, _)) in got.iter().enumerate() {
                assert_eq!(*c, i);
            }
        }
    }

    #[test]
    fn exec_sequential_matches_team_decomposition() {
        let team = ThreadTeam::new_in(&Registry::new_arc(), 4);
        let seq = Exec::Sequential.map_chunks(1003, 17, |c, r| (c, r.start, r.end));
        let par = Exec::Team(&team).map_chunks(1003, 17, |c, r| (c, r.start, r.end));
        assert_eq!(seq, par);
        assert_eq!(Exec::Sequential.lanes(), 1);
        assert_eq!(Exec::Team(&team).lanes(), 4);
    }

    #[test]
    fn slice_writer_fills_disjoint_ranges() {
        let mut data = vec![0u32; 100];
        {
            let writer = SliceWriter::new(&mut data);
            let team = ThreadTeam::new_in(&Registry::new_arc(), 4);
            team.parallel_for(100, 9, |range| {
                // SAFETY: parallel_for chunks are pairwise disjoint.
                let out = unsafe { writer.slice_mut(range.clone()) };
                for (slot, i) in out.iter_mut().zip(range) {
                    *slot = i as u32;
                }
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }
}
