//! Merge-based CSR SpMV (Merrill & Garland \[20\]) — the kernel the
//! paper's 2D algorithm is a simplified version of (§3.1).
//!
//! The merge formulation views SpMV as a 2D merge of the row-pointer
//! sequence and the nonzero index sequence: a balanced diagonal of the
//! merge grid is assigned to each thread, splitting *rows + nonzeros*
//! evenly instead of nonzeros alone. This bounds each thread's work
//! even for matrices with huge numbers of empty rows, where the plain
//! 2D split can still be skewed in row-pointer traffic.
//!
//! Implemented here as a third kernel for baseline comparisons; its
//! results are bit-identical to the other kernels' (same sums, same
//! order of additions within each row). Like the other kernels it
//! executes on the persistent [`ThreadTeam`], with spans assigned to
//! lanes round-robin.

use crate::exec::SendPtr;
use crate::plan::imbalance_factor;
use crate::team::ThreadTeam;
use sparsemat::CsrMatrix;

/// Per-span output of the merge kernel: rows finished in this span and
/// carried partial sums for rows that continue into later spans.
type SpanOutput = (Vec<(usize, f64)>, Vec<(usize, f64)>);

/// One thread's merge-path coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeSpan {
    /// First row this thread touches.
    pub row_start: usize,
    /// First nonzero this thread consumes.
    pub nnz_start: usize,
    /// One-past-last row.
    pub row_end: usize,
    /// One-past-last nonzero.
    pub nnz_end: usize,
}

/// Precomputed merge-based execution plan.
#[derive(Debug, Clone)]
pub struct PlanMerge {
    /// Per-thread merge spans.
    pub spans: Vec<MergeSpan>,
}

/// Find the merge-path split point for diagonal `d`: the number of
/// rows `i` such that `i + rowptr-consumed` equals `d`, by binary
/// search over the row pointers.
fn merge_path_search(rowptr: &[usize], nrows: usize, d: usize) -> (usize, usize) {
    // Count the rows fully consumed at diagonal `d`: after finishing
    // row `i` the merge has consumed (i + 1) row-ends plus
    // rowptr[i + 1] nonzeros, i.e. it sits at diagonal
    // (i + 1) + rowptr[i + 1]. Binary search for the largest count of
    // completed rows whose diagonal does not exceed `d`.
    let mut lo = d.saturating_sub(rowptr[nrows]);
    let mut hi = d.min(nrows);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if (mid + 1) + rowptr[mid + 1] <= d {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let i = lo; // rows fully consumed
    let j = d - i; // nonzeros consumed
    (i, j)
}

impl PlanMerge {
    /// Build a merge plan for `nthreads` threads.
    ///
    /// The thread count is clamped to the merge-grid diagonal length
    /// `nrows + nnz` (each span must consume at least one merge item),
    /// so a plan never carries empty trailing spans.
    pub fn new(a: &CsrMatrix, nthreads: usize) -> PlanMerge {
        let nrows = a.nrows();
        let total = nrows + a.nnz(); // merge-grid diagonal length
        let t = nthreads.max(1).min(total.max(1));
        let rowptr = a.rowptr();
        let mut spans = Vec::with_capacity(t);
        let mut prev = merge_path_search(rowptr, nrows, 0);
        for k in 1..=t {
            let d = total * k / t;
            let cur = merge_path_search(rowptr, nrows, d);
            spans.push(MergeSpan {
                row_start: prev.0,
                nnz_start: prev.1,
                row_end: cur.0,
                nnz_end: cur.1,
            });
            prev = cur;
        }
        PlanMerge { spans }
    }

    /// Number of spans (= effective threads) in the plan.
    pub fn num_threads(&self) -> usize {
        self.spans.len()
    }

    /// Merge items (rows + nonzeros) per thread; the quantity the merge
    /// split equalises.
    pub fn items_per_thread(&self) -> Vec<usize> {
        self.spans
            .iter()
            .map(|s| (s.row_end - s.row_start) + (s.nnz_end - s.nnz_start))
            .collect()
    }

    /// Nonzeros consumed per thread — the cross-kernel balance metric
    /// shared with [`Plan1d`](crate::Plan1d) and
    /// [`Plan2d`](crate::Plan2d).
    pub fn nnz_per_thread(&self) -> Vec<usize> {
        self.spans.iter().map(|s| s.nnz_end - s.nnz_start).collect()
    }

    /// Imbalance of merge items across threads (≈1 by construction).
    pub fn imbalance(&self) -> f64 {
        imbalance_factor(&self.items_per_thread())
    }
}

/// Merge-based parallel SpMV: `y = A x`, executed on `team`.
pub fn spmv_merge(a: &CsrMatrix, plan: &PlanMerge, team: &ThreadTeam, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "x length mismatch");
    assert_eq!(y.len(), a.nrows(), "y length mismatch");
    let rowptr = a.rowptr();
    let colidx = a.colidx();
    let values = a.values();
    let lanes = team.size();

    // Each span produces (finished rows, carried partial row) into its
    // exclusively-owned output slot; slots are reduced sequentially
    // afterwards.
    let mut results: Vec<SpanOutput> = vec![(Vec::new(), Vec::new()); plan.spans.len()];
    let results_ptr = SendPtr(results.as_mut_ptr());

    team.run(&|lane| {
        for (idx, span) in plan
            .spans
            .iter()
            .enumerate()
            .skip(lane)
            .step_by(lanes.max(1))
        {
            let mut finished: Vec<(usize, f64)> = Vec::new();
            let mut carry: Vec<(usize, f64)> = Vec::new();
            let mut k = span.nnz_start;
            // Consume rows [row_start, row_end): each such row END
            // belongs to this span, so the row's remaining nonzeros
            // complete here.
            for r in span.row_start..span.row_end {
                let hi = rowptr[r + 1];
                let mut sum = 0.0;
                while k < hi {
                    sum += values[k] * x[colidx[k] as usize];
                    k += 1;
                }
                finished.push((r, sum));
            }
            // Trailing partial row (its end belongs to a later span).
            if k < span.nnz_end {
                let r = span.row_end;
                let mut sum = 0.0;
                while k < span.nnz_end {
                    sum += values[k] * x[colidx[k] as usize];
                    k += 1;
                }
                carry.push((r, sum));
            }
            // SAFETY: slot `idx` belongs exclusively to the lane
            // processing span `idx` (see `SendPtr`).
            unsafe { *results_ptr.get().add(idx) = (finished, carry) };
        }
    });

    // Sequential reduction: finished rows overwrite, carries accumulate.
    y.fill(0.0);
    for (finished, _) in &results {
        for &(r, v) in finished {
            y[r] += v;
        }
    }
    for (_, carry) in &results {
        for &(r, v) in carry {
            y[r] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn check(a: &CsrMatrix, threads: &[usize]) {
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 7 + 1) as f64).cos()).collect();
        let want = a.spmv_dense(&x);
        for &t in threads {
            let team = ThreadTeam::new(t);
            let plan = PlanMerge::new(a, t);
            let mut y = vec![f64::NAN; a.nrows()];
            spmv_merge(a, &plan, &team, &x, &mut y);
            for i in 0..a.nrows() {
                assert!(
                    (y[i] - want[i]).abs() < 1e-9 * (1.0 + want[i].abs()),
                    "t={t} row {i}: {} vs {}",
                    y[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn merge_path_search_endpoints() {
        // 3 rows with 2, 0, 3 nonzeros.
        let rowptr = [0usize, 2, 2, 5];
        assert_eq!(merge_path_search(&rowptr, 3, 0), (0, 0));
        // Full consumption: diagonal 8 = 3 rows + 5 nnz.
        assert_eq!(merge_path_search(&rowptr, 3, 8), (3, 5));
        // After consuming row 0 (2 nnz + 1 row-end = diagonal 3).
        assert_eq!(merge_path_search(&rowptr, 3, 3), (1, 2));
    }

    #[test]
    fn matches_reference_on_random_matrix() {
        let mut coo = CooMatrix::new(150, 150);
        let mut state = 5u64;
        for i in 0..150 {
            for _ in 0..4 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                coo.push(i, (state >> 33) as usize % 150, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        check(&a, &[1, 2, 3, 5, 8]);
    }

    #[test]
    fn handles_many_empty_rows() {
        // Merge-based SpMV's signature case: mostly empty rows.
        let mut coo = CooMatrix::new(1000, 1000);
        for i in (0..1000).step_by(100) {
            for j in 0..30 {
                coo.push(i, (i + j) % 1000, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        check(&a, &[1, 4, 7]);
        // Items per thread stay balanced even with empty rows.
        let plan = PlanMerge::new(&a, 8);
        assert!(
            plan.imbalance() < 1.05,
            "merge imbalance {}",
            plan.imbalance()
        );
    }

    #[test]
    fn handles_single_giant_row() {
        let mut coo = CooMatrix::new(4, 400);
        for j in 0..400 {
            coo.push(1, j, (j as f64) * 0.25);
        }
        let a = CsrMatrix::from_coo(&coo);
        check(&a, &[1, 3, 6]);
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::from_coo(&CooMatrix::new(5, 5));
        check(&a, &[1, 4]);
    }

    #[test]
    fn clamps_threads_to_merge_items() {
        // 2x2 with 1 nnz: diagonal length 3, so at most 3 spans.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let plan = PlanMerge::new(&a, 64);
        assert!(plan.num_threads() <= 3, "spans: {:?}", plan.spans);
        assert!(plan.items_per_thread().iter().all(|&n| n > 0));
        check(&a, &[64]);
    }

    #[test]
    fn nnz_per_thread_sums_to_total() {
        let mut coo = CooMatrix::new(40, 40);
        for i in 0..40 {
            coo.push(i, (i * 3) % 40, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let plan = PlanMerge::new(&a, 6);
        assert_eq!(plan.nnz_per_thread().iter().sum::<usize>(), a.nnz());
    }
}
