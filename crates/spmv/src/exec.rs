//! The 1D and 2D parallel SpMV kernels, executing on a persistent
//! [`ThreadTeam`] (§3.1).
//!
//! Each kernel distributes its plan's spans over the team's lanes
//! round-robin, so a plan built for `p` threads runs correctly on a
//! team of any size (a lane simply processes every `team.size()`-th
//! span). Matching the plan's thread count to the team size gives the
//! measurement-faithful one-span-per-lane execution.

use crate::plan::{Plan1d, Plan2d};
use crate::team::ThreadTeam;
use sparsemat::CsrMatrix;

/// Raw pointer wrapper allowing team lanes to write disjoint,
/// pre-validated parts of shared output storage.
///
/// SAFETY invariant (the disjoint-write invariant the kernel trait's
/// implementations rely on): every lane writes only the elements it
/// exclusively owns — contiguous row ranges for the 1D kernel
/// (`Plan1d` ranges partition the rows), fully-owned rows for the 2D
/// kernel (`own_row_start..own_row_end` are disjoint across spans, an
/// invariant established by `Plan2d::new` and checked by its tests),
/// and per-span output slots indexed by span id for the partial-sum
/// buffers. Boundary rows are only written after the parallel region.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer. Accessing it through a method (rather than
    /// the field) makes closures capture the whole `SendPtr` — whose
    /// `Sync` impl carries the disjoint-write invariant — instead of
    /// precise-capturing the bare raw pointer, which is not `Sync`.
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}
// SAFETY: see the struct docs — all concurrent writes through the
// pointer target disjoint elements.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// 1D parallel SpMV: `y = A x` with rows statically split into equal
/// contiguous blocks, one per plan span (§3.1), executed on `team`.
///
/// `y` is fully overwritten. Spans write disjoint row slices, so the
/// kernel is race-free by construction.
pub fn spmv_1d(a: &CsrMatrix, plan: &Plan1d, team: &ThreadTeam, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "x length mismatch");
    assert_eq!(y.len(), a.nrows(), "y length mismatch");
    let rowptr = a.rowptr();
    let colidx = a.colidx();
    let values = a.values();
    let ranges = &plan.row_ranges;
    let y_ptr = SendPtr(y.as_mut_ptr());
    let lanes = team.size();

    team.run(&|lane| {
        for &(start, end) in ranges.iter().skip(lane).step_by(lanes) {
            for r in start..end {
                let lo = rowptr[r];
                let hi = rowptr[r + 1];
                let mut sum = 0.0;
                for k in lo..hi {
                    sum += values[k] * x[colidx[k] as usize];
                }
                // SAFETY: row ranges partition `0..nrows` disjointly
                // (see `SendPtr`).
                unsafe { *y_ptr.get().add(r) = sum };
            }
        }
    });
}

/// 2D parallel SpMV: `y = A x` with nonzeros statically split into
/// equal blocks (§3.1), executed on `team`.
///
/// Rows fully inside a span's nonzero range are written directly; rows
/// straddling a range boundary are accumulated as partial sums and
/// combined sequentially after the parallel region, avoiding races on
/// `y` exactly as the paper describes.
pub fn spmv_2d(a: &CsrMatrix, plan: &Plan2d, team: &ThreadTeam, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "x length mismatch");
    assert_eq!(y.len(), a.nrows(), "y length mismatch");
    let rowptr = a.rowptr();
    let colidx = a.colidx();
    let values = a.values();
    let y_ptr = SendPtr(y.as_mut_ptr());
    let lanes = team.size();

    // Partial sums for boundary rows: (row, value) pairs per span,
    // each slot written only by the lane owning that span.
    let mut partials: Vec<Vec<(usize, f64)>> = vec![Vec::new(); plan.spans.len()];
    let partials_ptr = SendPtr(partials.as_mut_ptr());

    team.run(&|lane| {
        for (idx, span) in plan
            .spans
            .iter()
            .enumerate()
            .skip(lane)
            .step_by(lanes.max(1))
        {
            if span.is_empty() {
                continue;
            }
            let mut local: Vec<(usize, f64)> = Vec::with_capacity(2);
            for r in span.row_start..=span.row_end {
                let lo = rowptr[r].max(span.nnz_start);
                let hi = rowptr[r + 1].min(span.nnz_end);
                if lo >= hi {
                    continue;
                }
                let mut sum = 0.0;
                for k in lo..hi {
                    sum += values[k] * x[colidx[k] as usize];
                }
                if r >= span.own_row_start && r < span.own_row_end {
                    // Fully owned: direct write. SAFETY: see `SendPtr`.
                    unsafe { *y_ptr.get().add(r) = sum };
                } else {
                    local.push((r, sum));
                }
            }
            if !local.is_empty() {
                // SAFETY: slot `idx` belongs exclusively to the lane
                // processing span `idx` (see `SendPtr`).
                unsafe { *partials_ptr.get().add(idx) = local };
            }
        }
    });

    // Sequential fixup: boundary rows get the sum of their partials.
    for &r in &plan.boundary_rows {
        y[r] = 0.0;
    }
    for span_partials in &partials {
        for &(r, v) in span_partials {
            y[r] += v;
        }
    }
    // Rows with no nonzeros are skipped by every span (their nnz
    // ranges are empty); clear them so y is fully defined.
    for r in 0..a.nrows() {
        if a.row_nnz(r) == 0 {
            y[r] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn random_matrix(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        let mut state = seed | 1;
        for i in 0..n {
            // Deterministic pseudo-random columns; duplicates are summed.
            for _ in 0..nnz_per_row {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % n;
                let v = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                coo.push(i, j, v);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn skewed_matrix(n: usize) -> CsrMatrix {
        // First row is dense; the rest are diagonal.
        let mut coo = CooMatrix::new(n, n);
        for j in 0..n {
            coo.push(0, j, 1.0 + j as f64);
        }
        for i in 1..n {
            coo.push(i, i, 2.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    fn check_against_reference(a: &CsrMatrix, threads: &[usize]) {
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 7 + 1) as f64).sin()).collect();
        let want = a.spmv_dense(&x);
        for &t in threads {
            let team = ThreadTeam::new(t);
            let p1 = Plan1d::new(a, t);
            let mut y1 = vec![f64::NAN; a.nrows()];
            spmv_1d(a, &p1, &team, &x, &mut y1);
            for (i, (&got, &exp)) in y1.iter().zip(want.iter()).enumerate() {
                assert!(
                    (got - exp).abs() < 1e-9 * (1.0 + exp.abs()),
                    "1D t={t}: y[{i}] = {got}, want {exp}"
                );
            }
            let p2 = Plan2d::new(a, t);
            let mut y2 = vec![f64::NAN; a.nrows()];
            spmv_2d(a, &p2, &team, &x, &mut y2);
            for (i, (&got, &exp)) in y2.iter().zip(want.iter()).enumerate() {
                assert!(
                    (got - exp).abs() < 1e-9 * (1.0 + exp.abs()),
                    "2D t={t}: y[{i}] = {got}, want {exp}"
                );
            }
        }
    }

    #[test]
    fn kernels_match_reference_on_random_matrix() {
        let a = random_matrix(200, 6, 42);
        check_against_reference(&a, &[1, 2, 3, 4, 7, 16]);
    }

    #[test]
    fn kernels_match_reference_on_skewed_matrix() {
        // The dense first row straddles several 2D thread ranges.
        let a = skewed_matrix(64);
        check_against_reference(&a, &[1, 2, 4, 8]);
    }

    #[test]
    fn kernels_handle_empty_rows() {
        let mut coo = CooMatrix::new(10, 10);
        coo.push(2, 3, 1.0);
        coo.push(7, 1, -2.0);
        let a = CsrMatrix::from_coo(&coo);
        check_against_reference(&a, &[1, 2, 4]);
    }

    #[test]
    fn kernels_handle_single_row_matrix() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 3.0);
        let a = CsrMatrix::from_coo(&coo);
        check_against_reference(&a, &[1, 4]);
    }

    #[test]
    fn kernels_handle_more_threads_than_nnz() {
        let a = random_matrix(5, 1, 9);
        check_against_reference(&a, &[16]);
    }

    #[test]
    fn empty_matrix_yields_zero() {
        let a = CsrMatrix::from_coo(&CooMatrix::new(6, 6));
        let x = vec![1.0; 6];
        let team = ThreadTeam::new(2);
        let mut y = vec![f64::NAN; 6];
        spmv_1d(&a, &Plan1d::new(&a, 2), &team, &x, &mut y);
        assert!(y.iter().all(|&v| v == 0.0));
        let mut y2 = vec![f64::NAN; 6];
        spmv_2d(&a, &Plan2d::new(&a, 2), &team, &x, &mut y2);
        assert!(y2.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn plan_and_team_sizes_may_differ() {
        // Round-robin span assignment: an 8-span plan on a 3-lane team
        // and a 2-span plan on an 8-lane team both stay correct.
        let a = random_matrix(120, 5, 7);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).cos()).collect();
        let want = a.spmv_dense(&x);
        for (plan_t, team_t) in [(8, 3), (2, 8), (5, 1), (1, 4)] {
            let team = ThreadTeam::new(team_t);
            let p1 = Plan1d::new(&a, plan_t);
            let mut y = vec![f64::NAN; a.nrows()];
            spmv_1d(&a, &p1, &team, &x, &mut y);
            let p2 = Plan2d::new(&a, plan_t);
            let mut y2 = vec![f64::NAN; a.nrows()];
            spmv_2d(&a, &p2, &team, &x, &mut y2);
            for i in 0..a.nrows() {
                assert!(
                    (y[i] - want[i]).abs() < 1e-9 * (1.0 + want[i].abs()),
                    "1D plan={plan_t} team={team_t} row {i}"
                );
                assert!(
                    (y2[i] - want[i]).abs() < 1e-9 * (1.0 + want[i].abs()),
                    "2D plan={plan_t} team={team_t} row {i}"
                );
            }
        }
    }
}
