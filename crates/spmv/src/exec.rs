use crate::plan::{Plan1d, Plan2d};
use sparsemat::CsrMatrix;

/// 1D parallel SpMV: `y = A x` with rows statically split into equal
/// contiguous blocks, one per thread (§3.1).
///
/// `y` is fully overwritten. Threads write disjoint row slices, so the
/// kernel is race-free by construction.
pub fn spmv_1d(a: &CsrMatrix, plan: &Plan1d, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "x length mismatch");
    assert_eq!(y.len(), a.nrows(), "y length mismatch");
    let rowptr = a.rowptr();
    let colidx = a.colidx();
    let values = a.values();

    std::thread::scope(|scope| {
        let mut rest: &mut [f64] = y;
        let mut offset = 0usize;
        for &(start, end) in &plan.row_ranges {
            debug_assert_eq!(start, offset);
            let (chunk, tail) = rest.split_at_mut(end - start);
            rest = tail;
            offset = end;
            scope.spawn(move || {
                for (yi, r) in chunk.iter_mut().zip(start..end) {
                    let lo = rowptr[r];
                    let hi = rowptr[r + 1];
                    let mut sum = 0.0;
                    for k in lo..hi {
                        sum += values[k] * x[colidx[k] as usize];
                    }
                    *yi = sum;
                }
            });
        }
    });
}

/// Raw pointer wrapper allowing scoped threads to write disjoint,
/// pre-validated row sets of the output vector.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
// SAFETY: every thread writes only rows it exclusively owns
// (`own_row_start..own_row_end` are disjoint across spans, an invariant
// established by `Plan2d::new` and checked by its tests); boundary rows
// are only written after the parallel region.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// 2D parallel SpMV: `y = A x` with nonzeros statically split into
/// equal blocks (§3.1).
///
/// Rows fully inside a thread's nonzero range are written directly;
/// rows straddling a range boundary are accumulated as partial sums and
/// combined sequentially after the parallel region, avoiding races on
/// `y` exactly as the paper describes.
pub fn spmv_2d(a: &CsrMatrix, plan: &Plan2d, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "x length mismatch");
    assert_eq!(y.len(), a.nrows(), "y length mismatch");
    let rowptr = a.rowptr();
    let colidx = a.colidx();
    let values = a.values();
    let y_ptr = SendPtr(y.as_mut_ptr());

    // Partial sums for boundary rows: (row, value) pairs per thread.
    let mut partials: Vec<Vec<(usize, f64)>> = Vec::with_capacity(plan.spans.len());

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(plan.spans.len());
        for span in &plan.spans {
            let span = *span;
            let yp = y_ptr;
            handles.push(scope.spawn(move || {
                // Capture the wrapper itself, not its raw-pointer field
                // (disjoint closure capture would otherwise move the
                // non-Send `*mut f64` directly).
                let yp = yp;
                let mut local: Vec<(usize, f64)> = Vec::with_capacity(2);
                if span.is_empty() {
                    return local;
                }
                for r in span.row_start..=span.row_end {
                    let lo = rowptr[r].max(span.nnz_start);
                    let hi = rowptr[r + 1].min(span.nnz_end);
                    if lo >= hi {
                        continue;
                    }
                    let mut sum = 0.0;
                    for k in lo..hi {
                        sum += values[k] * x[colidx[k] as usize];
                    }
                    if r >= span.own_row_start && r < span.own_row_end {
                        // Fully owned: direct write.
                        // SAFETY: see `SendPtr`.
                        unsafe { *yp.0.add(r) = sum };
                    } else {
                        local.push((r, sum));
                    }
                }
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("SpMV worker panicked"));
        }
    });

    // Sequential fixup: boundary rows get the sum of their partials.
    for &r in &plan.boundary_rows {
        y[r] = 0.0;
    }
    for thread_partials in &partials {
        for &(r, v) in thread_partials {
            y[r] += v;
        }
    }
    // Rows with no nonzeros are skipped by every thread (their nnz
    // ranges are empty); clear them so y is fully defined.
    for r in 0..a.nrows() {
        if a.row_nnz(r) == 0 {
            y[r] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn random_matrix(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        let mut state = seed | 1;
        for i in 0..n {
            // Deterministic pseudo-random columns; duplicates are summed.
            for _ in 0..nnz_per_row {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % n;
                let v = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                coo.push(i, j, v);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn skewed_matrix(n: usize) -> CsrMatrix {
        // First row is dense; the rest are diagonal.
        let mut coo = CooMatrix::new(n, n);
        for j in 0..n {
            coo.push(0, j, 1.0 + j as f64);
        }
        for i in 1..n {
            coo.push(i, i, 2.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    fn check_against_reference(a: &CsrMatrix, threads: &[usize]) {
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 7 + 1) as f64).sin()).collect();
        let want = a.spmv_dense(&x);
        for &t in threads {
            let p1 = Plan1d::new(a, t);
            let mut y1 = vec![f64::NAN; a.nrows()];
            spmv_1d(a, &p1, &x, &mut y1);
            for (i, (&got, &exp)) in y1.iter().zip(want.iter()).enumerate() {
                assert!(
                    (got - exp).abs() < 1e-9 * (1.0 + exp.abs()),
                    "1D t={t}: y[{i}] = {got}, want {exp}"
                );
            }
            let p2 = Plan2d::new(a, t);
            let mut y2 = vec![f64::NAN; a.nrows()];
            spmv_2d(a, &p2, &x, &mut y2);
            for (i, (&got, &exp)) in y2.iter().zip(want.iter()).enumerate() {
                assert!(
                    (got - exp).abs() < 1e-9 * (1.0 + exp.abs()),
                    "2D t={t}: y[{i}] = {got}, want {exp}"
                );
            }
        }
    }

    #[test]
    fn kernels_match_reference_on_random_matrix() {
        let a = random_matrix(200, 6, 42);
        check_against_reference(&a, &[1, 2, 3, 4, 7, 16]);
    }

    #[test]
    fn kernels_match_reference_on_skewed_matrix() {
        // The dense first row straddles several 2D thread ranges.
        let a = skewed_matrix(64);
        check_against_reference(&a, &[1, 2, 4, 8]);
    }

    #[test]
    fn kernels_handle_empty_rows() {
        let mut coo = CooMatrix::new(10, 10);
        coo.push(2, 3, 1.0);
        coo.push(7, 1, -2.0);
        let a = CsrMatrix::from_coo(&coo);
        check_against_reference(&a, &[1, 2, 4]);
    }

    #[test]
    fn kernels_handle_single_row_matrix() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 3.0);
        let a = CsrMatrix::from_coo(&coo);
        check_against_reference(&a, &[1, 4]);
    }

    #[test]
    fn kernels_handle_more_threads_than_nnz() {
        let a = random_matrix(5, 1, 9);
        check_against_reference(&a, &[16]);
    }

    #[test]
    fn empty_matrix_yields_zero() {
        let a = CsrMatrix::from_coo(&CooMatrix::new(6, 6));
        let x = vec![1.0; 6];
        let mut y = vec![f64::NAN; 6];
        spmv_1d(&a, &Plan1d::new(&a, 2), &x, &mut y);
        assert!(y.iter().all(|&v| v == 0.0));
        let mut y2 = vec![f64::NAN; 6];
        spmv_2d(&a, &Plan2d::new(&a, 2), &x, &mut y2);
        assert!(y2.iter().all(|&v| v == 0.0));
    }
}
