use crate::kernel::KernelKind;
use crate::plan::imbalance_factor;
use crate::team::ThreadTeam;
use sparsemat::CsrMatrix;
use std::sync::Arc;
use std::time::Instant;
use telemetry::trace::TraceCtx;
use telemetry::{Histogram, Registry};

/// Threads available on this host (≥ 1). The canonical lookup shared by
/// [`MeasureConfig::default`] and the Criterion benches.
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1)
}

/// Measurement configuration, defaulting to the paper's protocol
/// (§4.1): 100 repetitions, peak = minimum time, mean over the last
/// repetitions after discarding the first 3 warm-up iterations.
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Number of SpMV repetitions.
    pub repetitions: usize,
    /// Warm-up iterations excluded from the mean (the artifact
    /// description discards the first 3).
    pub warmup: usize,
    /// Number of threads.
    pub nthreads: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            repetitions: 100,
            warmup: 3,
            nthreads: host_threads(),
        }
    }
}

/// The per-(matrix, kernel) record of the paper's artifact: per-thread
/// nonzero statistics, imbalance factor, best time and Gflop/s figures.
#[derive(Debug, Clone)]
pub struct SpmvMeasurement {
    /// Minimum nonzeros processed by any thread.
    pub nnz_min: usize,
    /// Maximum nonzeros processed by any thread.
    pub nnz_max: usize,
    /// Mean nonzeros per thread.
    pub nnz_mean: f64,
    /// Imbalance factor (max / mean).
    pub imbalance: f64,
    /// Best (minimum) time for one SpMV iteration, in seconds.
    pub min_time: f64,
    /// Median time per iteration over all repetitions, in seconds
    /// (bucket-resolution, ≤ 6.25% relative error).
    pub p50_time: f64,
    /// 99th-percentile time per iteration, in seconds (bucket
    /// resolution) — the tail the min/mean protocol hides.
    pub p99_time: f64,
    /// Peak performance in Gflop/s: `2 * nnz / min_time / 1e9`.
    pub max_gflops: f64,
    /// Mean performance over the non-warm-up iterations, in Gflop/s.
    pub mean_gflops: f64,
}

/// Fold per-repetition timing histograms into the paper's summary
/// statistics. One code path produces min, mean, and quantiles: the
/// warm-up and steady repetitions live in two histogram shards so the
/// steady-state mean excludes warm-up while min/quantiles see every
/// repetition (the paper's protocol, §4.1).
fn summarize(
    nnz_counts: &[usize],
    nnz_total: usize,
    warm: &Histogram,
    steady: &Histogram,
) -> SpmvMeasurement {
    let nnz_min = nnz_counts.iter().copied().min().unwrap_or(0);
    let nnz_max = nnz_counts.iter().copied().max().unwrap_or(0);
    let nnz_mean = if nnz_counts.is_empty() {
        0.0
    } else {
        nnz_counts.iter().sum::<usize>() as f64 / nnz_counts.len() as f64
    };
    // Min and quantiles over *all* repetitions: merge the shards.
    let all = Histogram::new();
    all.merge_from(warm);
    all.merge_from(steady);
    let min_time = if all.count() > 0 {
        all.min() as f64 / 1e9
    } else {
        f64::INFINITY
    };
    let mean_time = steady.mean() / 1e9;
    let flops = 2.0 * nnz_total as f64;
    SpmvMeasurement {
        nnz_min,
        nnz_max,
        nnz_mean,
        imbalance: imbalance_factor(nnz_counts),
        min_time,
        p50_time: all.quantile(0.50) as f64 / 1e9,
        p99_time: all.quantile(0.99) as f64 / 1e9,
        max_gflops: if min_time > 0.0 {
            flops / min_time / 1e9
        } else {
            0.0
        },
        mean_gflops: if mean_time > 0.0 {
            flops / mean_time / 1e9
        } else {
            0.0
        },
    }
}

/// Measure a kernel on a matrix following the paper's protocol: run
/// `repetitions` iterations with a deterministic non-constant `x`, take
/// the minimum time (peak performance) and the mean over the steady
/// iterations. Reports into the global telemetry registry; see
/// [`measure_spmv_in`].
pub fn measure_spmv(
    a: &Arc<CsrMatrix>,
    kernel: KernelKind,
    cfg: &MeasureConfig,
) -> SpmvMeasurement {
    measure_spmv_in(&Registry::global(), a, kernel, cfg)
}

/// [`measure_spmv`] reporting into an explicit registry: every
/// repetition's wall-clock lands in the `spmv.measure.rep` histogram
/// (nanoseconds), and the whole measurement runs under a
/// `spmv.measure` span, so the summary statistics and the exported
/// quantiles come from the same recorded samples.
///
/// The plan is built once and every repetition executes on one
/// persistent [`ThreadTeam`], so the timings contain zero per-iteration
/// thread-spawn overhead — the substrate the measurement protocol
/// assumes (§4.1).
pub fn measure_spmv_in(
    registry: &Arc<Registry>,
    a: &Arc<CsrMatrix>,
    kernel: KernelKind,
    cfg: &MeasureConfig,
) -> SpmvMeasurement {
    measure_spmv_traced(registry, &TraceCtx::disabled(), a, kernel, cfg)
}

/// [`measure_spmv_in`] recording into a flight-recorder trace: the
/// measurement runs under a `spmv.measure` trace span (kernel, reps,
/// threads, nnz and post-hoc imbalance/min-time args), and the
/// [`ThreadTeam`] records per-lane dispatch/compute/park segments for
/// every repetition under that span — one Perfetto timeline lane per
/// worker. A disabled `ctx` makes this identical to
/// [`measure_spmv_in`].
pub fn measure_spmv_traced(
    registry: &Arc<Registry>,
    ctx: &TraceCtx,
    a: &Arc<CsrMatrix>,
    kernel: KernelKind,
    cfg: &MeasureConfig,
) -> SpmvMeasurement {
    let _span = registry.span("spmv.measure");
    let mut tspan = ctx.span("spmv.measure");
    tspan.arg("kernel", kernel.name());
    tspan.arg("reps", cfg.repetitions.max(1));
    tspan.arg("threads", cfg.nthreads);
    tspan.arg("nnz", a.nnz());
    let x: Vec<f64> = (0..a.ncols())
        .map(|i| 1.0 + (i % 17) as f64 / 16.0)
        .collect();
    let mut y = vec![0.0f64; a.nrows()];
    let reps = cfg.repetitions.max(1);
    // Always keep at least one steady repetition, even when warmup
    // covers the whole run (short-run safety, matching the old slice
    // clamp).
    let steady_start = cfg.warmup.min(reps - 1);
    let warm = Histogram::new();
    let steady = Histogram::new();
    let planned = kernel.plan(a, cfg.nthreads);
    let team = ThreadTeam::new_in(registry, cfg.nthreads);
    {
        let _team_trace = team.trace_scope(&tspan.ctx());
        for rep in 0..reps {
            let t0 = Instant::now();
            planned.execute(&team, &x, &mut y);
            let shard = if rep < steady_start { &warm } else { &steady };
            shard.record_duration(t0.elapsed());
        }
    }
    let result = summarize(&planned.nnz_per_thread(), a.nnz(), &warm, &steady);
    tspan.arg("imbalance", result.imbalance);
    tspan.arg("min_time_ns", (result.min_time * 1e9) as u64);
    // Publish the per-repetition samples: shard histograms merge into
    // the registry's cumulative series.
    let rep_hist = registry.histogram("spmv.measure.rep");
    rep_hist.merge_from(&warm);
    rep_hist.merge_from(&steady);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn banded(n: usize, half_bw: usize) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(half_bw)..(i + half_bw + 1).min(n) {
                coo.push(i, j, 1.0);
            }
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn measurement_reports_consistent_statistics() {
        let a = banded(500, 2);
        let cfg = MeasureConfig {
            repetitions: 10,
            warmup: 2,
            nthreads: 2,
        };
        for kernel in KernelKind::all() {
            let m = measure_spmv(&a, kernel, &cfg);
            assert!(m.min_time > 0.0);
            assert!(m.max_gflops > 0.0);
            assert!(m.mean_gflops > 0.0);
            assert!(m.max_gflops >= m.mean_gflops * 0.5);
            assert!(m.nnz_min <= m.nnz_max);
            assert!(m.imbalance >= 1.0);
        }
    }

    #[test]
    fn twod_measurement_is_balanced() {
        // Skewed matrix: 1D imbalanced, 2D balanced.
        let n = 200;
        let mut coo = CooMatrix::new(n, n);
        for j in 0..n {
            coo.push(0, j, 1.0);
        }
        for i in 1..n {
            coo.push(i, i, 1.0);
        }
        let a = Arc::new(CsrMatrix::from_coo(&coo));
        let cfg = MeasureConfig {
            repetitions: 5,
            warmup: 1,
            nthreads: 4,
        };
        let m1 = measure_spmv(&a, KernelKind::OneD, &cfg);
        let m2 = measure_spmv(&a, KernelKind::TwoD, &cfg);
        assert!(
            m1.imbalance > 1.5,
            "1D should be imbalanced: {}",
            m1.imbalance
        );
        assert!(
            (m2.imbalance - 1.0).abs() < 0.05,
            "2D should be balanced: {}",
            m2.imbalance
        );
    }

    #[test]
    fn summarize_handles_short_runs() {
        // One repetition, warmup longer than the run: the single sample
        // is the steady state (the old slice-clamp behaviour).
        let warm = Histogram::new();
        let steady = Histogram::new();
        steady.record_duration(std::time::Duration::from_secs(1));
        let m = summarize(&[10, 10], 20, &warm, &steady);
        assert!((m.min_time - 1.0).abs() < 1e-9, "min_time {}", m.min_time);
        assert!(m.mean_gflops > 0.0);
        assert!(m.p50_time > 0.9 && m.p50_time < 1.1, "p50 {}", m.p50_time);
    }

    #[test]
    fn default_config_uses_host_parallelism() {
        let cfg = MeasureConfig::default();
        assert!(cfg.nthreads >= 1);
        assert_eq!(cfg.nthreads, host_threads());
    }

    #[test]
    fn measurement_feeds_registry_histogram() {
        let registry = telemetry::Registry::new_arc();
        let a = banded(300, 2);
        let cfg = MeasureConfig {
            repetitions: 12,
            warmup: 2,
            nthreads: 2,
        };
        let m = measure_spmv_in(&registry, &a, KernelKind::OneD, &cfg);
        let snap = registry.snapshot();
        let rep = snap.histogram("spmv.measure.rep").unwrap();
        assert_eq!(rep.count, 12, "every repetition lands in the registry");
        // The summary's min is the histogram's exact min — one code path.
        assert!((m.min_time - rep.min as f64 / 1e9).abs() < 1e-12);
        // Quantiles are ordered and bracketed by the extremes.
        assert!(m.min_time <= m.p50_time * 1.0625 + 1e-12);
        assert!(m.p50_time <= m.p99_time + 1e-12);
        // The measurement itself ran under a span.
        assert_eq!(snap.histogram("spmv.measure").unwrap().count, 1);
    }

    /// The acceptance bound from the issue: telemetry with spans
    /// disabled adds < 2% to a small-matrix SpMV measurement loop. A
    /// disabled span is one relaxed atomic load; one SpMV iteration is
    /// microseconds. Measure both and compare directly, which is robust
    /// to machine speed in a way an absolute threshold is not.
    #[test]
    fn disabled_spans_add_under_two_percent() {
        let registry = telemetry::Registry::new_arc();
        registry.set_spans_enabled(false);

        const SPANS: u32 = 100_000;
        let t0 = Instant::now();
        for _ in 0..SPANS {
            let s = registry.span("spmv.measure");
            std::hint::black_box(&s);
        }
        let span_ns = t0.elapsed().as_nanos() as f64 / SPANS as f64;

        let a = banded(500, 2);
        let cfg = MeasureConfig {
            repetitions: 20,
            warmup: 2,
            nthreads: 1,
        };
        let m = measure_spmv_in(&registry, &a, KernelKind::OneD, &cfg);
        let iter_ns = m.min_time * 1e9;
        assert!(
            span_ns < 0.02 * iter_ns,
            "disabled span costs {span_ns:.1}ns, {:.3}% of a {iter_ns:.0}ns SpMV iteration",
            100.0 * span_ns / iter_ns
        );
        // Disabled spans record nothing, but the per-rep histogram is
        // explicit recording and still fills.
        let snap = registry.snapshot();
        assert!(snap.histogram("spmv.measure").is_none());
        assert_eq!(snap.histogram("spmv.measure.rep").unwrap().count, 20);
    }

    /// The acceptance bound from the issue, tracing edition: with
    /// tracing disabled, the flight-recorder instrumentation adds < 2%
    /// to a small-matrix SpMV iteration. A disabled `TraceCtx` span is
    /// an `Option` check and the team's gate is one relaxed load, so —
    /// like the disabled-span test above — we measure the per-call cost
    /// directly against a real measured iteration.
    #[test]
    fn disabled_tracing_adds_under_two_percent() {
        let registry = telemetry::Registry::new_arc();
        registry.set_spans_enabled(false);
        let ctx = TraceCtx::disabled();

        const CALLS: u32 = 100_000;
        let t0 = Instant::now();
        for _ in 0..CALLS {
            let s = ctx.span("spmv.measure");
            std::hint::black_box(&s);
        }
        let trace_ns = t0.elapsed().as_nanos() as f64 / CALLS as f64;

        let a = banded(500, 2);
        let cfg = MeasureConfig {
            repetitions: 20,
            warmup: 2,
            nthreads: 1,
        };
        // Measure through the traced entry point with a disabled
        // context: the full instrumented path, recording nothing.
        let m = measure_spmv_traced(&registry, &ctx, &a, KernelKind::OneD, &cfg);
        let iter_ns = m.min_time * 1e9;
        assert!(
            trace_ns < 0.02 * iter_ns,
            "disabled trace span costs {trace_ns:.1}ns, {:.3}% of a {iter_ns:.0}ns SpMV iteration",
            100.0 * trace_ns / iter_ns
        );
    }

    /// The acceptance bound from the issue, stage-board edition: with
    /// no profiler session active, a `telemetry::stage` guard is one
    /// relaxed atomic load and must add < 2% to a small-matrix SpMV
    /// iteration — the continuous profiler is free when nobody is
    /// sampling.
    #[test]
    fn disabled_stage_board_adds_under_two_percent() {
        const STAGES: u32 = 100_000;
        let t0 = Instant::now();
        for _ in 0..STAGES {
            let g = telemetry::stage("spmv.measure");
            std::hint::black_box(&g);
        }
        let stage_ns = t0.elapsed().as_nanos() as f64 / STAGES as f64;

        let registry = telemetry::Registry::new_arc();
        let a = banded(500, 2);
        let cfg = MeasureConfig {
            repetitions: 20,
            warmup: 2,
            nthreads: 1,
        };
        let m = measure_spmv_in(&registry, &a, KernelKind::OneD, &cfg);
        let iter_ns = m.min_time * 1e9;
        assert!(
            stage_ns < 0.02 * iter_ns,
            "disabled stage guard costs {stage_ns:.1}ns, {:.3}% of a {iter_ns:.0}ns SpMV iteration",
            100.0 * stage_ns / iter_ns
        );
    }

    #[test]
    fn traced_measurement_produces_stage_and_lane_events() {
        use telemetry::trace::{EventKind, FlightRecorder};
        let registry = telemetry::Registry::new_arc();
        let rec = FlightRecorder::new(8192);
        let root = rec.start_trace();
        let a = banded(300, 2);
        let cfg = MeasureConfig {
            repetitions: 4,
            warmup: 1,
            nthreads: 2,
        };
        let m = measure_spmv_traced(&registry, &root, &a, KernelKind::OneD, &cfg);
        assert!(m.min_time > 0.0);
        let snap = rec.snapshot();
        let measure_begin = snap
            .events()
            .find(|e| e.name == "spmv.measure" && e.kind == EventKind::Begin)
            .expect("spmv.measure span recorded");
        // Team segments parent under the measure span: per-worker
        // timelines attach to the request, not orphaned roots.
        let computes: Vec<_> = snap
            .events()
            .filter(|e| e.name == "spmv.team.compute" && e.kind == EventKind::Begin)
            .collect();
        assert_eq!(computes.len(), 2 * 4, "2 lanes × 4 reps");
        assert!(computes
            .iter()
            .all(|e| e.parent_id == measure_begin.span_id));
        // Both lanes (leader + 1 worker) own a timeline.
        let lanes = snap
            .threads
            .iter()
            .filter(|t| t.events.iter().any(|e| e.name == "spmv.team.compute"))
            .count();
        assert_eq!(lanes, 2);
        // The measure span carries the post-hoc result args.
        let measure_end = snap
            .events()
            .find(|e| e.name == "spmv.measure" && e.kind == EventKind::End)
            .unwrap();
        assert!(measure_end.args.iter().any(|(k, _)| *k == "imbalance"));
        assert!(measure_end.args.iter().any(|(k, _)| *k == "kernel"));
    }
}
