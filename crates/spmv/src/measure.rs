use crate::exec::{spmv_1d, spmv_2d};
use crate::plan::{imbalance_factor, Plan1d, Plan2d};
use sparsemat::CsrMatrix;
use std::time::Instant;

/// Measurement configuration, defaulting to the paper's protocol
/// (§4.1): 100 repetitions, peak = minimum time, mean over the last
/// repetitions after discarding the first 3 warm-up iterations.
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Number of SpMV repetitions.
    pub repetitions: usize,
    /// Warm-up iterations excluded from the mean (the artifact
    /// description discards the first 3).
    pub warmup: usize,
    /// Number of threads.
    pub nthreads: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            repetitions: 100,
            warmup: 3,
            nthreads: 4,
        }
    }
}

/// The per-(matrix, kernel) record of the paper's artifact: per-thread
/// nonzero statistics, imbalance factor, best time and Gflop/s figures.
#[derive(Debug, Clone)]
pub struct SpmvMeasurement {
    /// Minimum nonzeros processed by any thread.
    pub nnz_min: usize,
    /// Maximum nonzeros processed by any thread.
    pub nnz_max: usize,
    /// Mean nonzeros per thread.
    pub nnz_mean: f64,
    /// Imbalance factor (max / mean).
    pub imbalance: f64,
    /// Best (minimum) time for one SpMV iteration, in seconds.
    pub min_time: f64,
    /// Peak performance in Gflop/s: `2 * nnz / min_time / 1e9`.
    pub max_gflops: f64,
    /// Mean performance over the non-warm-up iterations, in Gflop/s.
    pub mean_gflops: f64,
}

fn summarize(nnz_counts: &[usize], nnz_total: usize, times: &[f64], warmup: usize) -> SpmvMeasurement {
    let nnz_min = nnz_counts.iter().copied().min().unwrap_or(0);
    let nnz_max = nnz_counts.iter().copied().max().unwrap_or(0);
    let nnz_mean = if nnz_counts.is_empty() {
        0.0
    } else {
        nnz_counts.iter().sum::<usize>() as f64 / nnz_counts.len() as f64
    };
    let min_time = times.iter().copied().fold(f64::INFINITY, f64::min);
    let flops = 2.0 * nnz_total as f64;
    let steady = &times[warmup.min(times.len().saturating_sub(1))..];
    let mean_time = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
    SpmvMeasurement {
        nnz_min,
        nnz_max,
        nnz_mean,
        imbalance: imbalance_factor(nnz_counts),
        min_time,
        max_gflops: if min_time > 0.0 { flops / min_time / 1e9 } else { 0.0 },
        mean_gflops: if mean_time > 0.0 { flops / mean_time / 1e9 } else { 0.0 },
    }
}

/// Which SpMV kernel to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// 1D row-split kernel.
    OneD,
    /// 2D nonzero-split kernel.
    TwoD,
}

/// Measure a kernel on a matrix following the paper's protocol: run
/// `repetitions` iterations with a deterministic non-constant `x`, take
/// the minimum time (peak performance) and the mean over the steady
/// iterations.
pub fn measure_spmv(a: &CsrMatrix, kernel: Kernel, cfg: &MeasureConfig) -> SpmvMeasurement {
    let x: Vec<f64> = (0..a.ncols())
        .map(|i| 1.0 + (i % 17) as f64 / 16.0)
        .collect();
    let mut y = vec![0.0f64; a.nrows()];
    let mut times = Vec::with_capacity(cfg.repetitions);
    match kernel {
        Kernel::OneD => {
            let plan = Plan1d::new(a, cfg.nthreads);
            for _ in 0..cfg.repetitions.max(1) {
                let t0 = Instant::now();
                spmv_1d(a, &plan, &x, &mut y);
                times.push(t0.elapsed().as_secs_f64());
            }
            summarize(&plan.nnz_per_thread(a), a.nnz(), &times, cfg.warmup)
        }
        Kernel::TwoD => {
            let plan = Plan2d::new(a, cfg.nthreads);
            for _ in 0..cfg.repetitions.max(1) {
                let t0 = Instant::now();
                spmv_2d(a, &plan, &x, &mut y);
                times.push(t0.elapsed().as_secs_f64());
            }
            summarize(&plan.nnz_per_thread(), a.nnz(), &times, cfg.warmup)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn banded(n: usize, half_bw: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(half_bw)..(i + half_bw + 1).min(n) {
                coo.push(i, j, 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn measurement_reports_consistent_statistics() {
        let a = banded(500, 2);
        let cfg = MeasureConfig {
            repetitions: 10,
            warmup: 2,
            nthreads: 2,
        };
        let m = measure_spmv(&a, Kernel::OneD, &cfg);
        assert!(m.min_time > 0.0);
        assert!(m.max_gflops > 0.0);
        assert!(m.mean_gflops > 0.0);
        assert!(m.max_gflops >= m.mean_gflops * 0.5);
        assert!(m.nnz_min <= m.nnz_max);
        assert!(m.imbalance >= 1.0);
    }

    #[test]
    fn twod_measurement_is_balanced() {
        // Skewed matrix: 1D imbalanced, 2D balanced.
        let n = 200;
        let mut coo = CooMatrix::new(n, n);
        for j in 0..n {
            coo.push(0, j, 1.0);
        }
        for i in 1..n {
            coo.push(i, i, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let cfg = MeasureConfig {
            repetitions: 5,
            warmup: 1,
            nthreads: 4,
        };
        let m1 = measure_spmv(&a, Kernel::OneD, &cfg);
        let m2 = measure_spmv(&a, Kernel::TwoD, &cfg);
        assert!(m1.imbalance > 1.5, "1D should be imbalanced: {}", m1.imbalance);
        assert!(
            (m2.imbalance - 1.0).abs() < 0.05,
            "2D should be balanced: {}",
            m2.imbalance
        );
    }

    #[test]
    fn summarize_handles_short_runs() {
        let m = summarize(&[10, 10], 20, &[1.0], 3);
        assert_eq!(m.min_time, 1.0);
        assert!(m.mean_gflops > 0.0);
    }
}
