use sparsemat::CsrMatrix;

/// Static 1D plan: equal contiguous row blocks, one per thread.
///
/// Mirrors OpenMP's `schedule(static)` on the row loop (§3.1). The
/// per-thread nonzero counts this induces — and hence the imbalance
/// factor (§3.2) — depend entirely on the matrix ordering.
#[derive(Debug, Clone)]
pub struct Plan1d {
    /// `row_ranges[t] = (start, end)`: rows assigned to thread `t`.
    pub row_ranges: Vec<(usize, usize)>,
}

impl Plan1d {
    /// Build the plan for `nthreads` threads over `a`'s rows.
    ///
    /// The thread count is clamped to the *effective* parallelism: the
    /// chunk size is `ceil(nrows / nthreads)` (OpenMP static
    /// semantics), and only as many ranges are emitted as non-empty
    /// chunks exist. Requesting more threads than rows therefore no
    /// longer produces trailing empty `(n, n)` ranges, so
    /// [`nnz_per_thread`] and [`imbalance_factor`] average over threads
    /// that actually work, not idle phantoms.
    pub fn new(a: &CsrMatrix, nthreads: usize) -> Plan1d {
        let n = a.nrows();
        if n == 0 {
            // A single empty range keeps downstream statistics defined.
            return Plan1d {
                row_ranges: vec![(0, 0)],
            };
        }
        let chunk = n.div_ceil(nthreads.max(1)).max(1);
        // Effective thread count: the number of non-empty chunks.
        let t = n.div_ceil(chunk);
        let row_ranges = (0..t)
            .map(|i| {
                let start = (i * chunk).min(n);
                let end = ((i + 1) * chunk).min(n);
                (start, end)
            })
            .collect();
        Plan1d { row_ranges }
    }

    /// Number of threads the plan actually uses (≤ the requested
    /// count; see [`Plan1d::new`]).
    pub fn num_threads(&self) -> usize {
        self.row_ranges.len()
    }

    /// Alias for [`Plan1d::num_threads`], named for call sites that
    /// care about the requested-vs-effective distinction.
    pub fn effective_threads(&self) -> usize {
        self.row_ranges.len()
    }

    /// Nonzeros processed by each thread under this plan.
    pub fn nnz_per_thread(&self, a: &CsrMatrix) -> Vec<usize> {
        self.row_ranges
            .iter()
            .map(|&(s, e)| a.rowptr()[e] - a.rowptr()[s])
            .collect()
    }
}

/// One thread's work description in the 2D plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSpan {
    /// First nonzero index (inclusive).
    pub nnz_start: usize,
    /// Last nonzero index (exclusive).
    pub nnz_end: usize,
    /// Row containing `nnz_start`.
    pub row_start: usize,
    /// Row containing `nnz_end - 1` (inclusive bound).
    pub row_end: usize,
    /// First row fully owned by this thread (written directly).
    pub own_row_start: usize,
    /// One past the last fully owned row.
    pub own_row_end: usize,
}

impl ThreadSpan {
    /// True if the thread has no nonzeros at all.
    pub fn is_empty(&self) -> bool {
        self.nnz_start >= self.nnz_end
    }
}

/// Static 2D plan: equal contiguous nonzero blocks, one per thread,
/// with boundary rows (shared between adjacent threads) resolved by a
/// sequential partial-sum fixup.
#[derive(Debug, Clone)]
pub struct Plan2d {
    /// Per-thread spans.
    pub spans: Vec<ThreadSpan>,
    /// Rows partially covered by at least one thread; zeroed before the
    /// fixup accumulates partial sums into them.
    pub boundary_rows: Vec<usize>,
}

impl Plan2d {
    /// Build the plan for `nthreads` threads over `a`'s nonzeros.
    ///
    /// Like [`Plan1d::new`], the thread count is clamped to the
    /// effective parallelism (at most one thread per nonzero), so no
    /// empty spans are emitted for oversubscribed requests.
    pub fn new(a: &CsrMatrix, nthreads: usize) -> Plan2d {
        let t = nthreads.max(1).min(a.nnz().max(1));
        let k = a.nnz();
        let n = a.nrows();
        let rowptr = a.rowptr();
        let mut spans = Vec::with_capacity(t);
        for i in 0..t {
            let nnz_start = k * i / t;
            let nnz_end = k * (i + 1) / t;
            if nnz_start >= nnz_end {
                spans.push(ThreadSpan {
                    nnz_start,
                    nnz_end: nnz_start,
                    row_start: 0,
                    row_end: 0,
                    own_row_start: 0,
                    own_row_end: 0,
                });
                continue;
            }
            // Row containing nnz_start: the last r with rowptr[r] <= nnz_start.
            let row_start = match rowptr.binary_search(&nnz_start) {
                Ok(mut r) => {
                    // Skip empty rows that share this pointer value.
                    while r + 1 < rowptr.len() && rowptr[r + 1] == nnz_start {
                        r += 1;
                    }
                    r.min(n - 1)
                }
                Err(ins) => ins - 1,
            };
            let last_nnz = nnz_end - 1;
            let row_end = match rowptr.binary_search(&last_nnz) {
                Ok(mut r) => {
                    while r + 1 < rowptr.len() && rowptr[r + 1] == last_nnz {
                        r += 1;
                    }
                    r.min(n - 1)
                }
                Err(ins) => ins - 1,
            };
            let own_row_start = if rowptr[row_start] == nnz_start {
                row_start
            } else {
                row_start + 1
            };
            let own_row_end = if rowptr[row_end + 1] == nnz_end {
                row_end + 1
            } else {
                row_end
            };
            spans.push(ThreadSpan {
                nnz_start,
                nnz_end,
                row_start,
                row_end,
                own_row_start,
                own_row_end: own_row_end.max(own_row_start),
            });
        }
        // Boundary rows: touched rows not fully owned by their thread.
        let mut boundary: Vec<usize> = Vec::new();
        for s in &spans {
            if s.is_empty() {
                continue;
            }
            for r in s.row_start..s.own_row_start.min(s.row_end + 1) {
                boundary.push(r);
            }
            for r in s.own_row_end.max(s.row_start)..=s.row_end {
                boundary.push(r);
            }
        }
        boundary.sort_unstable();
        boundary.dedup();
        Plan2d {
            spans,
            boundary_rows: boundary,
        }
    }

    /// Number of threads the plan was built for.
    pub fn num_threads(&self) -> usize {
        self.spans.len()
    }

    /// Nonzeros processed by each thread (equal by construction, up to
    /// rounding).
    pub fn nnz_per_thread(&self) -> Vec<usize> {
        self.spans.iter().map(|s| s.nnz_end - s.nnz_start).collect()
    }
}

/// Nonzeros per thread of a 1D row split — the quantity behind the
/// load imbalance factor of §3.2.
pub fn nnz_per_thread(a: &CsrMatrix, nthreads: usize) -> Vec<usize> {
    Plan1d::new(a, nthreads).nnz_per_thread(a)
}

/// The load imbalance factor: max over threads of nonzeros assigned,
/// divided by the mean (§3.2). 1.0 = perfectly balanced.
pub fn imbalance_factor(nnz_counts: &[usize]) -> f64 {
    if nnz_counts.is_empty() {
        return 1.0;
    }
    let max = *nnz_counts.iter().max().unwrap() as f64;
    let mean = nnz_counts.iter().sum::<usize>() as f64 / nnz_counts.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn matrix_with_row_nnz(counts: &[usize]) -> CsrMatrix {
        let n = counts.len();
        let ncols = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut coo = CooMatrix::new(n, ncols);
        for (i, &c) in counts.iter().enumerate() {
            for j in 0..c {
                coo.push(i, j, 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn plan1d_splits_rows_evenly() {
        let a = matrix_with_row_nnz(&[1; 10]);
        let p = Plan1d::new(&a, 3);
        assert_eq!(p.row_ranges, vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(p.nnz_per_thread(&a), vec![4, 4, 2]);
    }

    #[test]
    fn plan1d_more_threads_than_rows() {
        // Oversubscription clamps to one row per thread: no empty
        // trailing ranges, so the imbalance factor sees two busy
        // threads rather than two busy plus two phantom ones.
        let a = matrix_with_row_nnz(&[2, 2]);
        let p = Plan1d::new(&a, 4);
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.effective_threads(), 2);
        assert_eq!(p.row_ranges, vec![(0, 1), (1, 2)]);
        assert_eq!(p.nnz_per_thread(&a), vec![2, 2]);
        assert!((imbalance_factor(&p.nnz_per_thread(&a)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plan1d_never_emits_empty_ranges() {
        // div_ceil chunking can strand threads even when nthreads <
        // nrows (e.g. 5 rows / 4 threads -> chunks of 2 -> 3 busy
        // threads); every emitted range must be non-empty.
        for nrows in 1..20usize {
            let a = matrix_with_row_nnz(&vec![1; nrows]);
            for t in 1..25usize {
                let p = Plan1d::new(&a, t);
                assert!(p.num_threads() <= t.min(nrows), "rows={nrows} t={t}");
                for &(s, e) in &p.row_ranges {
                    assert!(s < e, "rows={nrows} t={t}: empty range ({s},{e})");
                }
                let covered: usize = p.row_ranges.iter().map(|&(s, e)| e - s).sum();
                assert_eq!(covered, nrows);
            }
        }
    }

    #[test]
    fn plan2d_clamps_to_nnz() {
        let a = matrix_with_row_nnz(&[1, 1]);
        let p = Plan2d::new(&a, 8);
        assert_eq!(p.num_threads(), 2);
        assert!(p.spans.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn imbalance_factor_detects_skew() {
        assert!((imbalance_factor(&[5, 5, 5]) - 1.0).abs() < 1e-12);
        assert!((imbalance_factor(&[10, 5, 0]) - 2.0).abs() < 1e-12);
        assert_eq!(imbalance_factor(&[]), 1.0);
        assert_eq!(imbalance_factor(&[0, 0]), 1.0);
    }

    #[test]
    fn plan2d_balances_nnz() {
        // Skewed rows: one heavy row, many light.
        let a = matrix_with_row_nnz(&[12, 1, 1, 1, 1, 1, 1, 1, 1]); // 20 nnz
        let p = Plan2d::new(&a, 4);
        let counts = p.nnz_per_thread();
        assert_eq!(counts.iter().sum::<usize>(), 20);
        assert_eq!(counts, vec![5, 5, 5, 5]);
        assert!((imbalance_factor(&counts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plan2d_span_invariants() {
        let a = matrix_with_row_nnz(&[3, 7, 2, 9, 1, 4, 6]); // 32 nnz
        for t in 1..=8 {
            let p = Plan2d::new(&a, t);
            let rowptr = a.rowptr();
            for s in &p.spans {
                if s.is_empty() {
                    continue;
                }
                // nnz range within the row range.
                assert!(rowptr[s.row_start] <= s.nnz_start);
                assert!(rowptr[s.row_end + 1] >= s.nnz_end);
                // Owned rows fully inside the nnz range.
                for r in s.own_row_start..s.own_row_end {
                    assert!(rowptr[r] >= s.nnz_start);
                    assert!(rowptr[r + 1] <= s.nnz_end);
                }
            }
            // Owned rows are disjoint across threads.
            let mut owned: Vec<usize> = Vec::new();
            for s in &p.spans {
                for r in s.own_row_start..s.own_row_end {
                    owned.push(r);
                }
            }
            let mut sorted = owned.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), owned.len(), "t={t}: owned rows overlap");
            // Every row is either owned or boundary.
            for r in 0..a.nrows() {
                let in_owned = owned.contains(&r);
                let in_boundary = p.boundary_rows.contains(&r);
                assert!(
                    in_owned || in_boundary || a.row_nnz(r) == 0,
                    "t={t}: row {r} unassigned"
                );
                assert!(
                    !(in_owned && in_boundary),
                    "t={t}: row {r} both owned and boundary"
                );
            }
        }
    }

    #[test]
    fn plan2d_single_huge_row_spanning_threads() {
        let a = matrix_with_row_nnz(&[100]);
        let p = Plan2d::new(&a, 4);
        assert_eq!(p.boundary_rows, vec![0]);
        for s in &p.spans {
            assert_eq!(
                s.own_row_start, s.own_row_end,
                "no thread owns the row fully"
            );
        }
    }

    #[test]
    fn plan2d_with_empty_rows() {
        let a = matrix_with_row_nnz(&[0, 5, 0, 5, 0]);
        let p = Plan2d::new(&a, 2);
        let counts = p.nnz_per_thread();
        assert_eq!(counts, vec![5, 5]);
    }

    #[test]
    fn plan2d_more_threads_than_nnz() {
        let a = matrix_with_row_nnz(&[1, 1]);
        let p = Plan2d::new(&a, 8);
        assert_eq!(p.nnz_per_thread().iter().sum::<usize>(), 2);
    }
}
