//! The unified kernel interface: every SpMV variant in the study —
//! 1D row split, 2D nonzero split, merge path — behind one object-safe
//! trait, selected at runtime through [`KernelKind`].
//!
//! A planned kernel pairs the matrix (held by `Arc`, so plans can be
//! cached and shared without copying payloads) with its precomputed
//! execution plan. Executing it only needs a [`ThreadTeam`] and the
//! vectors:
//!
//! ```
//! use spmv::{KernelKind, ThreadTeam};
//! use sparsemat::{CooMatrix, CsrMatrix};
//! use std::sync::Arc;
//!
//! let mut coo = CooMatrix::new(3, 3);
//! coo.push(0, 0, 2.0);
//! coo.push(1, 1, 3.0);
//! coo.push(2, 0, 1.0);
//! let a = Arc::new(CsrMatrix::from_coo(&coo));
//! let team = ThreadTeam::new(2);
//! let x = vec![1.0; 3];
//! let mut y = vec![0.0; 3];
//! for kind in KernelKind::all() {
//!     let kernel = kind.plan(&a, 2);
//!     kernel.execute(&team, &x, &mut y);
//!     assert_eq!(y, vec![2.0, 3.0, 1.0]);
//! }
//! ```

use crate::exec::{spmv_1d, spmv_2d};
use crate::merge::{spmv_merge, PlanMerge};
use crate::plan::{Plan1d, Plan2d};
use crate::team::ThreadTeam;
use sparsemat::CsrMatrix;
use std::fmt;
use std::sync::Arc;

/// The SpMV kernel family of the study (§3.1), used wherever a kernel
/// is selected by configuration: CLI flags, the engine's plan cache
/// key, measurement configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelKind {
    /// 1D row-split kernel (OpenMP `schedule(static)` analogue).
    OneD,
    /// 2D nonzero-split kernel.
    TwoD,
    /// Merge-path kernel (Merrill & Garland).
    Merge,
}

impl KernelKind {
    /// All kernels, in presentation order.
    pub fn all() -> [KernelKind; 3] {
        [KernelKind::OneD, KernelKind::TwoD, KernelKind::Merge]
    }

    /// Stable lowercase name, the inverse of [`KernelKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::OneD => "1d",
            KernelKind::TwoD => "2d",
            KernelKind::Merge => "merge",
        }
    }

    /// Parse a CLI/config spelling (`"1d"`, `"2d"`, `"merge"`).
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "1d" | "oned" => Some(KernelKind::OneD),
            "2d" | "twod" => Some(KernelKind::TwoD),
            "merge" => Some(KernelKind::Merge),
            _ => None,
        }
    }

    /// Build the planned kernel of this kind for `nthreads` threads.
    pub fn plan(self, a: &Arc<CsrMatrix>, nthreads: usize) -> Arc<dyn Kernel> {
        match self {
            KernelKind::OneD => Arc::new(Kernel1d {
                plan: Plan1d::new(a, nthreads),
                matrix: Arc::clone(a),
            }),
            KernelKind::TwoD => Arc::new(Kernel2d {
                plan: Plan2d::new(a, nthreads),
                matrix: Arc::clone(a),
            }),
            KernelKind::Merge => Arc::new(KernelMerge {
                plan: PlanMerge::new(a, nthreads),
                matrix: Arc::clone(a),
            }),
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A planned SpMV kernel: a matrix plus its precomputed work split,
/// executable on any [`ThreadTeam`].
///
/// Object-safe so heterogeneous kernels can share a cache
/// (`Arc<dyn Kernel>`). Implementations uphold the disjoint-write
/// invariant documented on `exec::SendPtr`: concurrent lanes never
/// write the same output element, so `execute` is race-free without
/// locking.
pub trait Kernel: Send + Sync {
    /// Which kernel family this plan belongs to.
    fn kind(&self) -> KernelKind;

    /// The matrix the plan was built for.
    fn matrix(&self) -> &Arc<CsrMatrix>;

    /// Effective thread count of the plan (after clamping to the
    /// available parallelism; see [`Plan1d::new`]).
    fn num_threads(&self) -> usize;

    /// Nonzeros processed per thread — the balance statistic of §3.2.
    fn nnz_per_thread(&self) -> Vec<usize>;

    /// Compute `y = A x` on `team`. `y` is fully overwritten.
    fn execute(&self, team: &ThreadTeam, x: &[f64], y: &mut [f64]);
}

struct Kernel1d {
    matrix: Arc<CsrMatrix>,
    plan: Plan1d,
}

impl Kernel for Kernel1d {
    fn kind(&self) -> KernelKind {
        KernelKind::OneD
    }
    fn matrix(&self) -> &Arc<CsrMatrix> {
        &self.matrix
    }
    fn num_threads(&self) -> usize {
        self.plan.num_threads()
    }
    fn nnz_per_thread(&self) -> Vec<usize> {
        self.plan.nnz_per_thread(&self.matrix)
    }
    fn execute(&self, team: &ThreadTeam, x: &[f64], y: &mut [f64]) {
        spmv_1d(&self.matrix, &self.plan, team, x, y);
    }
}

struct Kernel2d {
    matrix: Arc<CsrMatrix>,
    plan: Plan2d,
}

impl Kernel for Kernel2d {
    fn kind(&self) -> KernelKind {
        KernelKind::TwoD
    }
    fn matrix(&self) -> &Arc<CsrMatrix> {
        &self.matrix
    }
    fn num_threads(&self) -> usize {
        self.plan.num_threads()
    }
    fn nnz_per_thread(&self) -> Vec<usize> {
        self.plan.nnz_per_thread()
    }
    fn execute(&self, team: &ThreadTeam, x: &[f64], y: &mut [f64]) {
        spmv_2d(&self.matrix, &self.plan, team, x, y);
    }
}

struct KernelMerge {
    matrix: Arc<CsrMatrix>,
    plan: PlanMerge,
}

impl Kernel for KernelMerge {
    fn kind(&self) -> KernelKind {
        KernelKind::Merge
    }
    fn matrix(&self) -> &Arc<CsrMatrix> {
        &self.matrix
    }
    fn num_threads(&self) -> usize {
        self.plan.num_threads()
    }
    fn nnz_per_thread(&self) -> Vec<usize> {
        self.plan.nnz_per_thread()
    }
    fn execute(&self, team: &ThreadTeam, x: &[f64], y: &mut [f64]) {
        spmv_merge(&self.matrix, &self.plan, team, x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn small_matrix() -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(20, 20);
        for i in 0..20 {
            coo.push(i, i, 2.0);
            coo.push(i, (i + 3) % 20, -1.0);
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn name_parse_round_trip() {
        for kind in KernelKind::all() {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind));
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(KernelKind::parse("MERGE"), Some(KernelKind::Merge));
        assert_eq!(KernelKind::parse("3d"), None);
    }

    #[test]
    fn all_kinds_execute_through_trait() {
        let a = small_matrix();
        let team = ThreadTeam::new(3);
        let x: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let want = a.spmv_dense(&x);
        for kind in KernelKind::all() {
            let kernel = kind.plan(&a, 4);
            assert_eq!(kernel.kind(), kind);
            assert!(kernel.num_threads() >= 1);
            assert_eq!(kernel.nnz_per_thread().iter().sum::<usize>(), a.nnz());
            let mut y = vec![f64::NAN; 20];
            kernel.execute(&team, &x, &mut y);
            for i in 0..20 {
                assert!(
                    (y[i] - want[i]).abs() < 1e-12,
                    "{kind} row {i}: {} vs {}",
                    y[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn planned_kernel_shares_matrix_storage() {
        let a = small_matrix();
        let kernel = KernelKind::OneD.plan(&a, 2);
        assert!(Arc::ptr_eq(kernel.matrix(), &a));
    }
}
