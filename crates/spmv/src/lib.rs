#![allow(clippy::needless_range_loop)]

//! Shared-memory parallel CSR SpMV kernels — the measurement kernels of
//! the study (§3.1).
//!
//! Two kernels are provided, matching the paper exactly:
//!
//! - the **1D algorithm** partitions the *rows* into equal-sized
//!   contiguous blocks, one per thread (what `#pragma omp for` with
//!   static scheduling does). Simple, but load-imbalanced whenever
//!   nonzeros are unevenly distributed over rows.
//! - the **2D algorithm** partitions the *nonzeros* equally. Threads
//!   may start or end mid-row, so each thread's first and last row are
//!   handled specially (partial sums combined after the parallel
//!   region) to avoid write races on `y`. This is a simplified form of
//!   merge-based SpMV (Merrill & Garland).
//!
//! A third kernel, **merge-based SpMV** (the full Merrill & Garland
//! formulation), splits *rows + nonzeros* evenly and serves as the
//! baseline the 2D algorithm simplifies.
//!
//! Plans ([`Plan1d`], [`Plan2d`], [`PlanMerge`]) precompute the
//! partition for a given matrix and thread count; the paper likewise
//! treats partitioning as a one-time preprocessing cost excluded from
//! measurements. All three kernels are unified behind the object-safe
//! [`Kernel`] trait (selected via [`KernelKind`]) and execute on a
//! persistent [`ThreadTeam`] — long-lived workers dispatched through a
//! spin-then-park barrier — so repeated SpMV calls pay zero
//! thread-spawn overhead.

mod exec;
mod kernel;
mod measure;
mod merge;
mod plan;
mod solvers;
mod team;

pub use exec::{spmv_1d, spmv_2d};
pub use kernel::{Kernel, KernelKind};
pub use measure::{
    host_threads, measure_spmv, measure_spmv_in, measure_spmv_traced, MeasureConfig,
    SpmvMeasurement,
};
pub use merge::{spmv_merge, MergeSpan, PlanMerge};
pub use plan::{imbalance_factor, nnz_per_thread, Plan1d, Plan2d, ThreadSpan};
pub use solvers::{conjugate_gradient, CgOptions, SolveStats};
pub use team::{TeamTraceGuard, ThreadTeam};
