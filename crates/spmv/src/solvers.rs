//! Iterative solvers built on the parallel SpMV kernels.
//!
//! The paper's amortisation argument (§4.7) rests on iterative solvers
//! performing thousands of SpMV iterations with one matrix. This module
//! provides the classic conjugate-gradient method (optionally Jacobi
//! preconditioned) running on the 1D kernel, so the end-to-end benefit
//! of a reordering can be demonstrated on a real workload.

use crate::exec::spmv_1d;
use crate::plan::Plan1d;
use crate::team::ThreadTeam;
use sparsemat::CsrMatrix;

/// Convergence/iteration report from a solver run.
#[derive(Debug, Clone)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// True if the tolerance was reached within the budget.
    pub converged: bool,
}

/// Options for [`conjugate_gradient`].
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Absolute residual tolerance.
    pub tolerance: f64,
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Threads for the SpMV kernel.
    pub threads: usize,
    /// Use Jacobi (diagonal) preconditioning.
    pub jacobi: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-10,
            max_iterations: 1000,
            threads: 4,
            jacobi: false,
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Solve `A x = b` for symmetric positive definite `A` by (optionally
/// Jacobi-preconditioned) conjugate gradients. Returns the solution and
/// run statistics.
///
/// # Panics
///
/// Panics if `A` is not square or `b` has the wrong length.
pub fn conjugate_gradient(a: &CsrMatrix, b: &[f64], opts: &CgOptions) -> (Vec<f64>, SolveStats) {
    assert!(a.is_square(), "CG requires a square matrix");
    assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
    let n = a.nrows();
    // One plan, one persistent team: every iteration's SpMV dispatches
    // to already-running workers instead of spawning threads (§4.7's
    // amortisation argument applies to the executor too).
    let plan = Plan1d::new(a, opts.threads);
    let team = ThreadTeam::new(opts.threads);

    let inv_diag: Option<Vec<f64>> = if opts.jacobi {
        Some(
            a.diagonal()
                .iter()
                .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
                .collect(),
        )
    } else {
        None
    };
    let precond = |r: &[f64]| -> Vec<f64> {
        match &inv_diag {
            Some(di) => r.iter().zip(di).map(|(&x, &m)| x * m).collect(),
            None => r.to_vec(),
        }
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = precond(&r);
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    let mut rz = dot(&r, &z);
    let mut stats = SolveStats {
        iterations: 0,
        residual: dot(&r, &r).sqrt(),
        converged: stats_converged(dot(&r, &r).sqrt(), opts.tolerance),
    };
    if stats.converged {
        return (x, stats);
    }
    for k in 0..opts.max_iterations {
        spmv_1d(a, &plan, &team, &p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            break; // not SPD (or numerical breakdown)
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rnorm = dot(&r, &r).sqrt();
        stats.iterations = k + 1;
        stats.residual = rnorm;
        if stats_converged(rnorm, opts.tolerance) {
            stats.converged = true;
            break;
        }
        z = precond(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    (x, stats)
}

fn stats_converged(residual: f64, tol: f64) -> bool {
    residual <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn spd_tridiag(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push_symmetric(i, i + 1, -1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn cg_solves_tridiagonal_system() {
        let n = 200;
        let a = spd_tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let b = a.spmv_dense(&x_true);
        let (x, stats) = conjugate_gradient(&a, &b, &CgOptions::default());
        assert!(stats.converged, "CG failed: {stats:?}");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-7, "x[{i}]");
        }
    }

    #[test]
    fn jacobi_preconditioning_converges_no_slower() {
        let n = 300;
        let a = spd_tridiag(n);
        let b = vec![1.0; n];
        let plain = conjugate_gradient(&a, &b, &CgOptions::default()).1;
        let pre = conjugate_gradient(
            &a,
            &b,
            &CgOptions {
                jacobi: true,
                ..Default::default()
            },
        )
        .1;
        assert!(plain.converged && pre.converged);
        // Uniform diagonal: Jacobi is a no-op scaling, same iterations ±1.
        assert!((pre.iterations as i64 - plain.iterations as i64).abs() <= 1);
    }

    #[test]
    fn cg_detects_non_spd_breakdown() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push_symmetric(1, 0, 2.0);
        coo.push(1, 1, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        // p = r = b gives pᵀAp = -2 < 0: indefiniteness detected.
        let (_, stats) = conjugate_gradient(&a, &[1.0, -1.0], &CgOptions::default());
        assert!(!stats.converged);
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let a = spd_tridiag(10);
        let (x, stats) = conjugate_gradient(&a, &[0.0; 10], &CgOptions::default());
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
