//! The persistent thread-team executor.
//!
//! Every SpMV kernel in this crate used to spawn and join fresh OS
//! threads per call via scoped spawns, so the paper's
//! 100-repetition measurement protocol (§4.1) paid spawn/join overhead
//! on every iteration — tens of microseconds that systematically
//! inflate small-matrix timings and distort reordering-speedup ratios.
//! A [`ThreadTeam`] is created once and reused across iterations: a
//! pool of long-lived workers dispatched through a spin-then-park
//! barrier, the "reusable thread team with lightweight barriers" that
//! Bergmans et al. identify as a precondition for meaningful
//! shared-memory SpMV measurement.
//!
//! # Execution model
//!
//! A team of size `n` owns `n - 1` worker threads; the caller of
//! [`ThreadTeam::run`] acts as lane 0 (leader participation, as in
//! OpenMP), so a team of size 1 runs entirely inline with zero
//! dispatch cost. Each `run(f)` invokes `f(lane)` exactly once per
//! lane `0..n` and returns only when every lane has finished — a
//! fork-join region without the fork.
//!
//! # Barrier protocol
//!
//! Dispatch is epoch-based. The leader writes the job pointer into a
//! shared slot, resets the completion counter, publishes a new epoch
//! with a release store, and unparks every worker. Workers spin
//! briefly on the epoch (cheap when a dispatch is imminent), then
//! park; `unpark`'s token semantics make the wakeup race-free even if
//! the leader unparks before the worker parks. After running its
//! lane, each worker increments the completion counter; the last one
//! unparks the leader, which spins-then-parks symmetrically. Worker
//! panics are caught, flagged, and re-raised on the leader so a
//! poisoned iteration cannot deadlock the barrier.
//!
//! # Observability
//!
//! Two registry histograms make the team's overhead visible:
//! `spmv.team.dispatch_wait` records how long each worker lane waited
//! between job publication and pickup (the dispatch latency the team
//! exists to minimise), and `spmv.team.compute` records per-lane
//! kernel time. Comparing the two shows exactly how much of a
//! parallel region is coordination versus work.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, Thread};
use std::time::Instant;
use telemetry::{Histogram, Registry};

/// Spins on the epoch before parking. Small: on an oversubscribed
/// host (more lanes than cores) spinning only steals cycles from the
/// workers that hold the actual work.
const SPIN_BUDGET: u32 = 128;

/// The job slot: a type-erased pointer to the closure of the current
/// dispatch plus the instant it was published.
type JobSlot = Option<(*const (dyn Fn(usize) + Sync), Instant)>;

/// State shared between the leader and the workers.
struct Shared {
    /// Bumped (release) to publish a new job; workers acquire-load it.
    epoch: AtomicU64,
    /// Written by the leader strictly before the epoch bump, read by
    /// workers strictly after observing the bump.
    job: UnsafeCell<JobSlot>,
    /// Lanes finished in the current epoch (workers only; the leader
    /// runs lane 0 itself).
    done: AtomicUsize,
    /// Set when any lane panicked during the current epoch.
    panicked: AtomicBool,
    /// Set (then epoch-bumped) to retire the team.
    shutdown: AtomicBool,
    /// The leader's handle while it may be parked in [`ThreadTeam::run`];
    /// the last worker to finish unparks it.
    leader: Mutex<Option<Thread>>,
    /// Worker count (`team size - 1`).
    nworkers: usize,
}

// SAFETY: `job` is written only by the leader while every worker is
// quiescent (before the release epoch bump that hands the slot over)
// and read by workers only after the acquire load that observes the
// bump, so all accesses are ordered. The pointer it carries is only
// dereferenced between publication and the completion barrier, during
// which `run` keeps the referent alive (see `run`).
unsafe impl Sync for Shared {}
// SAFETY: same argument as `Sync` — the raw pointer in the job slot is
// only touched under the epoch protocol, so moving the Arc'd `Shared`
// to a worker thread is sound.
unsafe impl Send for Shared {}

/// A persistent team of worker threads executing fork-join parallel
/// regions without per-call thread spawns. See the module docs for
/// the protocol.
pub struct ThreadTeam {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serialises dispatches: `run` takes `&self` so plans can hold
    /// teams behind shared references, but the job slot supports one
    /// region at a time.
    dispatch: Mutex<()>,
    size: usize,
    dispatches: Arc<telemetry::Counter>,
}

impl std::fmt::Debug for ThreadTeam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadTeam")
            .field("size", &self.size)
            .finish()
    }
}

impl ThreadTeam {
    /// A team with `size` lanes (clamped to ≥ 1), reporting into the
    /// global telemetry registry. Spawns `size - 1` named OS threads
    /// that live until the team is dropped.
    pub fn new(size: usize) -> ThreadTeam {
        ThreadTeam::new_in(&Registry::global(), size)
    }

    /// Like [`ThreadTeam::new`] but reporting into `registry` (tests
    /// that assert exact histogram counts pass a private registry).
    pub fn new_in(registry: &Arc<Registry>, size: usize) -> ThreadTeam {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            job: UnsafeCell::new(None),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            leader: Mutex::new(None),
            nworkers: size - 1,
        });
        let dispatch_wait = registry.histogram("spmv.team.dispatch_wait");
        let compute = registry.histogram("spmv.team.compute");
        let workers = (1..size)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                let dispatch_wait = Arc::clone(&dispatch_wait);
                let compute = Arc::clone(&compute);
                std::thread::Builder::new()
                    .name(format!("spmv-team-{lane}"))
                    .spawn(move || worker_loop(&shared, lane, &dispatch_wait, &compute))
                    .expect("spawning a team worker")
            })
            .collect();
        ThreadTeam {
            shared,
            workers,
            dispatch: Mutex::new(()),
            size,
            dispatches: registry.counter("spmv.team.dispatches"),
        }
    }

    /// Number of lanes (the caller's lane plus the worker threads).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Execute one parallel region: `f(lane)` runs exactly once per
    /// lane in `0..size`, lane 0 on the calling thread, and `run`
    /// returns only after every lane finished. Concurrent calls from
    /// different threads are serialised.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any lane (after the barrier completes,
    /// so the team stays usable).
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.size == 1 {
            // Degenerate team: no workers, no dispatch, no barrier.
            f(0);
            return;
        }
        // A propagated lane panic unwinds `run` with this guard held,
        // poisoning the mutex; the team itself stays consistent (the
        // barrier completed), so recover the lock instead of failing.
        let _region = self
            .dispatch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        self.dispatches.inc();
        let shared = &self.shared;
        *shared.leader.lock().unwrap() = Some(std::thread::current());
        shared.done.store(0, Ordering::Relaxed);
        shared.panicked.store(false, Ordering::Relaxed);
        // Publish the job. The lifetime of `f` is erased; the
        // completion barrier below re-establishes it before `run`
        // returns, so no worker can observe a dangling pointer.
        let ptr: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        unsafe { *shared.job.get() = Some((ptr, Instant::now())) };
        shared.epoch.fetch_add(1, Ordering::Release);
        for w in &self.workers {
            w.thread().unpark();
        }

        // Lane 0 runs on the caller. Catch a leader panic so the
        // barrier still completes (workers hold the erased borrow).
        let leader_result = catch_unwind(AssertUnwindSafe(|| f(0)));

        // Completion barrier: spin, then park until the last worker's
        // unpark token arrives.
        let mut spins = 0u32;
        while shared.done.load(Ordering::Acquire) != shared.nworkers {
            spins += 1;
            if spins < SPIN_BUDGET {
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        }
        *shared.leader.lock().unwrap() = None;
        unsafe { *shared.job.get() = None };

        if let Err(payload) = leader_result {
            std::panic::resume_unwind(payload);
        }
        assert!(
            !shared.panicked.load(Ordering::Acquire),
            "SpMV team worker panicked"
        );
    }
}

impl Drop for ThreadTeam {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for w in &self.workers {
            w.thread().unpark();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, lane: usize, dispatch_wait: &Histogram, compute: &Histogram) {
    let mut seen = 0u64;
    loop {
        // Wait for a new epoch: spin briefly, then park. A stale
        // unpark token at worst costs one extra loop iteration.
        let mut spins = 0u32;
        loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            spins += 1;
            if spins < SPIN_BUDGET {
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: the epoch acquire above pairs with the leader's
        // release bump, which happens-after the job write; the leader
        // cannot reclaim the slot before this lane increments `done`.
        let (ptr, published) = unsafe { (*shared.job.get()).expect("epoch bump implies a job") };
        dispatch_wait.record_duration(published.elapsed());
        let t0 = Instant::now();
        // SAFETY: see `Shared::job` — the referent outlives the
        // barrier this lane is part of.
        let job = unsafe { &*ptr };
        if catch_unwind(AssertUnwindSafe(|| job(lane))).is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        compute.record_duration(t0.elapsed());
        // Last lane out wakes the (possibly parked) leader.
        if shared.done.fetch_add(1, Ordering::AcqRel) + 1 == shared.nworkers {
            if let Some(leader) = shared.leader.lock().unwrap().as_ref() {
                leader.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_lane_runs_exactly_once() {
        let team = ThreadTeam::new_in(&Registry::new_arc(), 4);
        let counts: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        for _ in 0..100 {
            team.run(&|lane| {
                counts[lane].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (lane, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 100, "lane {lane}");
        }
    }

    #[test]
    fn size_one_runs_inline() {
        let team = ThreadTeam::new_in(&Registry::new_arc(), 1);
        assert_eq!(team.size(), 1);
        let tid = std::thread::current().id();
        let mut observed = None;
        let cell = Mutex::new(&mut observed);
        team.run(&|lane| {
            assert_eq!(lane, 0);
            **cell.lock().unwrap() = Some(std::thread::current().id());
        });
        assert_eq!(observed, Some(tid), "lane 0 must be the caller");
    }

    #[test]
    fn zero_size_is_clamped() {
        let team = ThreadTeam::new_in(&Registry::new_arc(), 0);
        assert_eq!(team.size(), 1);
        team.run(&|_| {});
    }

    #[test]
    fn sequential_regions_see_previous_writes() {
        // The barrier is a synchronisation point: region k+1 must see
        // every write of region k without extra fencing.
        let team = ThreadTeam::new_in(&Registry::new_arc(), 3);
        let data: Vec<Mutex<u64>> = (0..3).map(|_| Mutex::new(0)).collect();
        for round in 1..=50u64 {
            team.run(&|lane| {
                *data[lane].lock().unwrap() += round;
            });
            let expect: u64 = (1..=round).sum();
            for d in &data {
                assert_eq!(*d.lock().unwrap(), expect);
            }
        }
    }

    #[test]
    fn worker_panic_propagates_and_team_survives() {
        let team = ThreadTeam::new_in(&Registry::new_arc(), 2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            team.run(&|lane| {
                if lane == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must surface on the leader");
        // The barrier completed, so the team remains usable.
        let ran = AtomicU32::new(0);
        team.run(&|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn team_records_dispatch_and_compute_histograms() {
        let registry = Registry::new_arc();
        let team = ThreadTeam::new_in(&registry, 3);
        for _ in 0..10 {
            team.run(&|_| std::hint::black_box(()));
        }
        let snap = registry.snapshot();
        // Two worker lanes, ten dispatches each.
        assert_eq!(snap.histogram("spmv.team.dispatch_wait").unwrap().count, 20);
        assert_eq!(snap.histogram("spmv.team.compute").unwrap().count, 20);
        assert_eq!(snap.counter("spmv.team.dispatches"), Some(10));
    }

    #[test]
    fn oversubscribed_team_completes() {
        // Far more lanes than this host has cores: the park path, not
        // the spin path, carries the barrier.
        let team = ThreadTeam::new_in(&Registry::new_arc(), 16);
        let total = AtomicU32::new(0);
        for _ in 0..20 {
            team.run(&|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 16 * 20);
    }
}
