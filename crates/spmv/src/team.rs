//! Re-export of the shared [`::team`] executor crate.
//!
//! The [`ThreadTeam`] started life in this module; it moved to its own
//! crate so the reordering stack (`sparsemat`, `sparsegraph`,
//! `reorder`) can run on the same executor without depending on the
//! SpMV kernels. Existing `spmv::team::*` paths, the `spmv.team.*`
//! metric/trace names, and the `spmv-team-{lane}` thread names are all
//! unchanged.

pub use ::team::*;
