//! Property-based tests: the parallel kernels must agree with the
//! sequential reference for every matrix shape and thread count.

use proptest::prelude::*;
use sparsemat::{CooMatrix, CsrMatrix};
use spmv::{host_threads, imbalance_factor, KernelKind, Plan1d, Plan2d, ThreadTeam};
use std::sync::Arc;

fn matrix_strategy() -> impl Strategy<Value = CsrMatrix> {
    (
        1usize..50,
        1usize..50,
        proptest::collection::vec((0usize..2500, 0usize..2500, -4.0f64..4.0), 0..220),
    )
        .prop_map(|(nr, nc, entries)| {
            let mut coo = CooMatrix::new(nr, nc);
            for (i, j, v) in entries {
                coo.push(i % nr, j % nc, v);
            }
            CsrMatrix::from_coo(&coo)
        })
}

/// Assert all three kernels match `spmv_dense` on `a` for each thread
/// count, running through the unified trait on a matching team.
fn assert_kernels_match(a: &Arc<CsrMatrix>, threads: &[usize]) {
    let x: Vec<f64> = (0..a.ncols())
        .map(|i| ((i * 31 % 17) as f64) - 8.0)
        .collect();
    let want = a.spmv_dense(&x);
    for &t in threads {
        let team = ThreadTeam::new(t);
        for kind in KernelKind::all() {
            let kernel = kind.plan(a, t);
            let mut y = vec![f64::NAN; a.nrows()];
            kernel.execute(&team, &x, &mut y);
            for i in 0..a.nrows() {
                assert!(
                    (y[i] - want[i]).abs() < 1e-9 * (1.0 + want[i].abs()),
                    "{} t={} row {}: {} vs {}",
                    kind,
                    t,
                    i,
                    y[i],
                    want[i]
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The satellite property: 1D, 2D, and merge kernels agree with
    /// the dense reference across thread counts 1, 3, the host's
    /// parallelism, and oversubscription (nrows + 1).
    #[test]
    fn kernels_match_reference(a in matrix_strategy()) {
        let threads = [1, 3, host_threads(), a.nrows() + 1];
        assert_kernels_match(&Arc::new(a), &threads);
    }

    #[test]
    fn plan2d_is_nnz_balanced(a in matrix_strategy(), t in 1usize..12) {
        let p = Plan2d::new(&a, t);
        let counts = p.nnz_per_thread();
        prop_assert_eq!(counts.iter().sum::<usize>(), a.nnz());
        // Max differs from min by at most 1 (equal split up to rounding).
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        prop_assert!(max - min <= 1, "2D split not balanced: {:?}", counts);
    }

    #[test]
    fn plan1d_partitions_rows_exactly(a in matrix_strategy(), t in 1usize..12) {
        let p = Plan1d::new(&a, t);
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for &(s, e) in &p.row_ranges {
            prop_assert_eq!(s, prev_end);
            prop_assert!(e >= s);
            covered += e - s;
            prev_end = e;
        }
        prop_assert_eq!(covered, a.nrows());
        prop_assert_eq!(prev_end, a.nrows());
    }

    #[test]
    fn imbalance_at_least_one(counts in proptest::collection::vec(0usize..10_000, 1..64)) {
        let f = imbalance_factor(&counts);
        prop_assert!(f >= 1.0 - 1e-12);
        // Equal counts => exactly 1.
        if counts.iter().all(|&c| c == counts[0]) && counts[0] > 0 {
            prop_assert!((f - 1.0).abs() < 1e-12);
        }
    }
}

/// Degenerate shapes the strategy rarely produces, pinned explicitly:
/// empty matrix, single row, and rows with no nonzeros at all.
#[test]
fn kernels_match_reference_on_edge_matrices() {
    // Empty matrix.
    let empty = Arc::new(CsrMatrix::from_coo(&CooMatrix::new(7, 7)));
    // Single-row matrix.
    let mut coo = CooMatrix::new(1, 9);
    for j in 0..9 {
        coo.push(0, j, j as f64 - 4.0);
    }
    let single_row = Arc::new(CsrMatrix::from_coo(&coo));
    // Mostly-empty rows.
    let mut coo = CooMatrix::new(25, 25);
    coo.push(3, 4, 2.5);
    coo.push(17, 0, -1.0);
    coo.push(24, 24, 4.0);
    let sparse_rows = Arc::new(CsrMatrix::from_coo(&coo));

    for a in [&empty, &single_row, &sparse_rows] {
        let threads = [1, 3, host_threads(), a.nrows() + 1];
        assert_kernels_match(a, &threads);
    }
}
