//! Property-based tests: the parallel kernels must agree with the
//! sequential reference for every matrix shape and thread count.

use proptest::prelude::*;
use sparsemat::{CooMatrix, CsrMatrix};
use spmv::{imbalance_factor, spmv_1d, spmv_2d, Plan1d, Plan2d};

fn matrix_strategy() -> impl Strategy<Value = CsrMatrix> {
    (
        1usize..50,
        1usize..50,
        proptest::collection::vec((0usize..2500, 0usize..2500, -4.0f64..4.0), 0..220),
    )
        .prop_map(|(nr, nc, entries)| {
            let mut coo = CooMatrix::new(nr, nc);
            for (i, j, v) in entries {
                coo.push(i % nr, j % nc, v);
            }
            CsrMatrix::from_coo(&coo)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_match_reference(a in matrix_strategy(), t in 1usize..12) {
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        let want = a.spmv_dense(&x);

        let p1 = Plan1d::new(&a, t);
        let mut y1 = vec![f64::NAN; a.nrows()];
        spmv_1d(&a, &p1, &x, &mut y1);
        for i in 0..a.nrows() {
            prop_assert!((y1[i] - want[i]).abs() < 1e-9 * (1.0 + want[i].abs()),
                "1D t={} row {}: {} vs {}", t, i, y1[i], want[i]);
        }

        let p2 = Plan2d::new(&a, t);
        let mut y2 = vec![f64::NAN; a.nrows()];
        spmv_2d(&a, &p2, &x, &mut y2);
        for i in 0..a.nrows() {
            prop_assert!((y2[i] - want[i]).abs() < 1e-9 * (1.0 + want[i].abs()),
                "2D t={} row {}: {} vs {}", t, i, y2[i], want[i]);
        }
    }

    #[test]
    fn plan2d_is_nnz_balanced(a in matrix_strategy(), t in 1usize..12) {
        let p = Plan2d::new(&a, t);
        let counts = p.nnz_per_thread();
        prop_assert_eq!(counts.iter().sum::<usize>(), a.nnz());
        // Max differs from min by at most 1 (equal split up to rounding).
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        prop_assert!(max - min <= 1, "2D split not balanced: {:?}", counts);
    }

    #[test]
    fn plan1d_partitions_rows_exactly(a in matrix_strategy(), t in 1usize..12) {
        let p = Plan1d::new(&a, t);
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for &(s, e) in &p.row_ranges {
            prop_assert_eq!(s, prev_end);
            prop_assert!(e >= s);
            covered += e - s;
            prev_end = e;
        }
        prop_assert_eq!(covered, a.nrows());
        prop_assert_eq!(prev_end, a.nrows());
    }

    #[test]
    fn imbalance_at_least_one(counts in proptest::collection::vec(0usize..10_000, 1..64)) {
        let f = imbalance_factor(&counts);
        prop_assert!(f >= 1.0 - 1e-12);
        // Equal counts => exactly 1.
        if counts.iter().all(|&c| c == counts[0]) && counts[0] > 0 {
            prop_assert!((f - 1.0).abs() < 1e-12);
        }
    }
}
