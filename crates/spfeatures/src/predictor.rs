//! Reordering recommendation from cheap, order-independent features —
//! a rule-based realisation of the paper's future-work idea of
//! *predicting* the most effective reordering algorithm (§6).
//!
//! The rules encode the study's conclusions rather than learned
//! weights, which keeps them auditable:
//!
//! - **GP** is the default recommendation (best geomean in Tables 3/4);
//! - matrices that are *already block-local* (tiny off-diagonal count)
//!   are left alone — reordering is unlikely to pay (§1's challenge,
//!   Class 4 in §4.4);
//! - strongly *row-imbalanced* matrices should switch kernel rather
//!   than ordering (Class 3/5): the 2D kernel fixes imbalance that no
//!   symmetric ordering can;
//! - *hopeless* structure (near-random, high density variance and no
//!   block locality to recover) is flagged so users can skip the
//!   reordering cost entirely (§4.7's amortisation would never break
//!   even).

use crate::features::off_diagonal_nnz;
use partition::bisect_graph;
use sparsegraph::Graph;
use sparsemat::CsrMatrix;
use spmv::{imbalance_factor, nnz_per_thread};

/// A recommendation with the features that justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Suggested action.
    pub action: Action,
    /// Off-diagonal fraction of nonzeros at the probed block count.
    pub off_diagonal_fraction: f64,
    /// 1D load imbalance factor at the probed thread count.
    pub imbalance: f64,
    /// Human-readable rationale.
    pub rationale: String,
}

/// The recommended course of action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep the current ordering (already local).
    KeepOriginal,
    /// Reorder with graph partitioning (the study's overall winner).
    ReorderGp,
    /// Don't reorder; use the nonzero-balanced 2D kernel instead.
    UseTwoDKernel,
    /// Reordering is unlikely to pay; measure before committing.
    ProbablyHopeless,
}

/// Thresholds for [`recommend`]; the defaults are calibrated against
/// the synthetic corpus (see the `predictor_agrees_with_sweep` test).
#[derive(Debug, Clone, Copy)]
pub struct PredictorConfig {
    /// Thread/block count to probe features at.
    pub threads: usize,
    /// Off-diagonal fraction below which the matrix counts as already
    /// block-local.
    pub local_threshold: f64,
    /// Imbalance factor above which the kernel, not the order, is the
    /// problem.
    pub imbalance_threshold: f64,
    /// A probe bisection must achieve a cut fraction at most this times
    /// the current off-block fraction for the structure to count as
    /// recoverable.
    pub recoverable_ratio: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            threads: 64,
            local_threshold: 0.05,
            imbalance_threshold: 2.0,
            recoverable_ratio: 0.5,
        }
    }
}

/// Fraction of edges cut by a single balanced bisection (the
/// recoverability probe).
fn probe_cut_fraction(a: &CsrMatrix) -> f64 {
    let g = match Graph::from_matrix(a) {
        Ok(g) => g,
        Err(_) => return 1.0,
    };
    let total = g.total_edge_weight();
    if total == 0 {
        return 0.0;
    }
    let half = g.total_vertex_weight() / 2;
    let bis = bisect_graph(&g, [half, g.total_vertex_weight() - half], 1.1, 0xBE5);
    bis.cut as f64 / total as f64
}

/// Recommend a reordering strategy for a matrix.
pub fn recommend(a: &CsrMatrix, cfg: &PredictorConfig) -> Recommendation {
    let offdiag = off_diagonal_nnz(a, cfg.threads) as f64 / a.nnz().max(1) as f64;
    let imbalance = imbalance_factor(&nnz_per_thread(a, cfg.threads));
    let (action, rationale) = if imbalance > cfg.imbalance_threshold {
        (
            Action::UseTwoDKernel,
            format!(
                "1D imbalance factor {imbalance:.2} exceeds {:.2}: no symmetric reordering \
                 fixes a nonzero-count skew — switch to the nonzero-balanced 2D kernel \
                 (paper §4.3, Class 3/5)",
                cfg.imbalance_threshold
            ),
        )
    } else if offdiag < cfg.local_threshold {
        (
            Action::KeepOriginal,
            format!(
                "only {:.1} % of nonzeros are off-block: the ordering is already local \
                 (paper Class 4); reordering costs more than it can save",
                offdiag * 100.0
            ),
        )
    } else {
        // Probe: one cheap 2-way bisection estimates the achievable
        // cut, compared against the *current* 2-way off-block fraction
        // (same granularity). If even an explicit min-cut partition
        // leaves most of those edges crossing, no ordering will
        // manufacture locality.
        let achievable = probe_cut_fraction(a);
        let current2 = off_diagonal_nnz(a, 2) as f64 / a.nnz().max(1) as f64;
        if achievable > cfg.recoverable_ratio * current2.max(0.05) && achievable > 0.25 {
            (
                Action::ProbablyHopeless,
                format!(
                    "a probe bisection still cuts {:.0} % of edges: near-random structure \
                     rarely improves under any ordering (paper Fig. 2's lower quartiles) — \
                     measure before paying the reordering cost",
                    achievable * 100.0
                ),
            )
        } else {
            (
                Action::ReorderGp,
                format!(
                    "recoverable structure (probe bisection cuts only {:.0} % of edges): \
                     graph partitioning gives the best expected speedup (paper Tables 3-4)",
                    achievable * 100.0
                ),
            )
        }
    };
    Recommendation {
        action,
        off_diagonal_fraction: offdiag,
        imbalance,
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    #[test]
    fn banded_natural_matrix_is_kept() {
        let mut coo = CooMatrix::new(6400, 6400);
        for i in 0..6400 {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let r = recommend(&a, &PredictorConfig::default());
        assert_eq!(r.action, Action::KeepOriginal, "{}", r.rationale);
        assert!(r.off_diagonal_fraction < 0.05);
    }

    #[test]
    fn skewed_matrix_gets_kernel_advice() {
        let mut coo = CooMatrix::new(6400, 6400);
        for i in 0..64 {
            for j in 0..200 {
                coo.push(i, (i * 31 + j) % 6400, 1.0);
            }
        }
        for i in 64..6400 {
            coo.push(i, i, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let r = recommend(&a, &PredictorConfig::default());
        assert_eq!(r.action, Action::UseTwoDKernel, "{}", r.rationale);
        assert!(r.imbalance > 2.0);
    }

    #[test]
    fn random_matrix_is_flagged_hopeless() {
        // A *dense-ish* random graph: sparse ER graphs (degree ~4) still
        // have usable bisections — and GP indeed helps them in the sweep
        // — but at degree ~12 the cut fraction stays high no matter what.
        let mut coo = CooMatrix::new(6400, 6400);
        let mut state = 7u64;
        for i in 0..6400 {
            coo.push(i, i, 1.0);
            for _ in 0..12 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                coo.push(i, (state >> 33) as usize % 6400, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let r = recommend(&a, &PredictorConfig::default());
        assert_eq!(r.action, Action::ProbablyHopeless, "{}", r.rationale);
    }

    #[test]
    fn scrambled_block_matrix_gets_gp() {
        // Block-diagonal structure hidden by a shuffle: recoverable.
        let nb = 100;
        let bs = 32;
        let n = nb * bs;
        let mut coo = CooMatrix::new(n, n);
        let mut state = 3u64;
        let shuffle: Vec<usize> = {
            let mut v: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                v.swap(i, (state >> 33) as usize % (i + 1));
            }
            v
        };
        for b in 0..nb {
            for i in 0..bs {
                for j in 0..6 {
                    coo.push(shuffle[b * bs + i], shuffle[b * bs + (i + j) % bs], 1.0);
                }
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let r = recommend(&a, &PredictorConfig::default());
        assert_eq!(r.action, Action::ReorderGp, "{}", r.rationale);
    }
}
