#![allow(clippy::needless_range_loop)]

//! Order-sensitive matrix features and statistical machinery (§3.2,
//! §4.5 of the paper).
//!
//! Four features explain how a reordering affects SpMV:
//!
//! - **bandwidth** — the largest distance of any nonzero to the main
//!   diagonal;
//! - **profile** — the summed distance from each row's leftmost entry
//!   to the diagonal;
//! - **off-diagonal nonzero count** — nonzeros outside the t×t diagonal
//!   blocks of an even row split, which coincides with the edge-cut
//!   objective of graph partitioning;
//! - **load imbalance factor** — max/mean nonzeros per thread of the 1D
//!   row split (re-exported from the `spmv` crate).
//!
//! The crate also provides Dolan–Moré performance profiles (Fig. 5) and
//! the summary statistics used throughout the evaluation (geometric
//! means for Tables 3–4, box-plot quartiles for Figs. 2, 3 and 6).

mod features;
mod predictor;
mod profiles;
mod stats;

pub use features::{
    bandwidth, matrix_features, off_diagonal_nnz, profile, row_length_variance, x_reuse_estimate,
    MatrixFeatures,
};
pub use predictor::{recommend, Action, PredictorConfig, Recommendation};
pub use profiles::{performance_profile, ProfileCurve};
pub use spmv::imbalance_factor;
pub use stats::{geometric_mean, quartiles, spearman, BoxStats};
