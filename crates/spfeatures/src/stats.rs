//! Summary statistics used in the evaluation: geometric means
//! (Tables 3 and 4) and box-plot quartiles (Figs. 2, 3 and 6).

/// Geometric mean of strictly positive values. Returns `None` if the
/// slice is empty or contains non-positive values.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut log_sum = 0.0;
    for &v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        log_sum += v.ln();
    }
    Some((log_sum / values.len() as f64).exp())
}

/// Five-number summary for box plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum value.
    pub min: f64,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
}

/// Linear-interpolation percentile on sorted data (the same convention
/// as numpy's default).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Compute the five-number summary of a sample. Returns `None` for an
/// empty sample.
pub fn quartiles(values: &[f64]) -> Option<BoxStats> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    Some(BoxStats {
        min: sorted[0],
        q1: percentile(&sorted, 0.25),
        median: percentile(&sorted, 0.50),
        q3: percentile(&sorted, 0.75),
        max: *sorted.last().unwrap(),
    })
}

/// Spearman rank correlation between two samples.
///
/// Used to quantify the paper's §4.5 observation that SpMV runtime
/// tracks the off-diagonal nonzero count more closely than bandwidth or
/// profile. Returns `None` for samples shorter than 2 or of unequal
/// length. Ties get averaged ranks.
pub fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let n = a.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in ra.iter().zip(rb.iter()) {
        num += (x - mean) * (y - mean);
        da += (x - mean).powi(2);
        db += (y - mean).powi(2);
    }
    if da == 0.0 || db == 0.0 {
        return None; // constant sample
    }
    Some(num / (da * db).sqrt())
}

/// Average ranks (1-based) with ties averaged.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("NaN in sample"));
    let mut out = vec![0.0; values.len()];
    let mut k = 0;
    while k < idx.len() {
        let mut k2 = k;
        while k2 + 1 < idx.len() && values[idx[k2 + 1]] == values[idx[k]] {
            k2 += 1;
        }
        let avg_rank = (k + k2) as f64 / 2.0 + 1.0;
        for &i in &idx[k..=k2] {
            out[i] = avg_rank;
        }
        k = k2 + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_perfect_monotone() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 25.0, 90.0]; // monotone, not linear
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = b.iter().rev().copied().collect();
        assert!((spearman(&a, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_and_degenerates() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [5.0, 5.0, 6.0, 7.0];
        assert!(spearman(&a, &b).unwrap() > 0.9);
        assert!(spearman(&[1.0], &[2.0]).is_none());
        assert!(spearman(&[1.0, 2.0], &[3.0]).is_none());
        assert!(spearman(&[1.0, 1.0], &[2.0, 3.0]).is_none()); // constant
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 10.0]), vec![1.5, 3.0, 1.5]);
    }

    #[test]
    fn geometric_mean_basic() {
        let g = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        let g = geometric_mean(&[2.0, 2.0, 2.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_rejects_bad_input() {
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
        assert!(geometric_mean(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn geometric_mean_is_scale_invariant() {
        let a = [0.5, 1.5, 2.5, 3.5];
        let scaled: Vec<f64> = a.iter().map(|v| v * 10.0).collect();
        let ga = geometric_mean(&a).unwrap();
        let gs = geometric_mean(&scaled).unwrap();
        assert!((gs / ga - 10.0).abs() < 1e-9);
    }

    #[test]
    fn quartiles_of_known_sample() {
        let q = quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(q.min, 1.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q3, 4.0);
        assert_eq!(q.max, 5.0);
    }

    #[test]
    fn quartiles_interpolate() {
        let q = quartiles(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((q.q1 - 1.75).abs() < 1e-12);
        assert!((q.median - 2.5).abs() < 1e-12);
        assert!((q.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn quartiles_edge_cases() {
        assert!(quartiles(&[]).is_none());
        let q = quartiles(&[7.0]).unwrap();
        assert_eq!(q.min, 7.0);
        assert_eq!(q.median, 7.0);
        assert_eq!(q.max, 7.0);
        // Unsorted input is handled.
        let q = quartiles(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(q.median, 2.0);
    }
}
