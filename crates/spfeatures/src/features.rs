use sparsemat::CsrMatrix;
use spmv::{imbalance_factor, nnz_per_thread};

/// Bandwidth of a square matrix: `max |i − j|` over stored nonzeros
/// (§3.2). Zero for diagonal or empty matrices.
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut bw = 0usize;
    for i in 0..a.nrows() {
        let (cols, _) = a.row(i);
        if let Some(&first) = cols.first() {
            bw = bw.max(i.abs_diff(first as usize));
        }
        if let Some(&last) = cols.last() {
            bw = bw.max(i.abs_diff(last as usize));
        }
    }
    bw
}

/// Profile of a square matrix: `Σ_i (i − min{ j : a_ij ≠ 0 })`, summing
/// only rows whose leftmost entry lies at or left of the diagonal
/// (Gibbs et al. \[12\], as defined in §3.2). Rows with no entry left of
/// the diagonal contribute zero.
pub fn profile(a: &CsrMatrix) -> u64 {
    let mut total = 0u64;
    for i in 0..a.nrows() {
        let (cols, _) = a.row(i);
        if let Some(&first) = cols.first() {
            let j = first as usize;
            if j < i {
                total += (i - j) as u64;
            }
        }
    }
    total
}

/// Off-diagonal nonzero count (§3.2): with rows and columns divided
/// into `num_blocks` equal contiguous blocks, count nonzeros outside
/// the diagonal blocks. Equals the edge-cut of the even row split, the
/// objective GP minimises.
pub fn off_diagonal_nnz(a: &CsrMatrix, num_blocks: usize) -> usize {
    let t = num_blocks.max(1);
    let n = a.nrows().max(1);
    let chunk = n.div_ceil(t);
    let mut count = 0usize;
    for i in 0..a.nrows() {
        let bi = i / chunk;
        let (cols, _) = a.row(i);
        for &j in cols {
            if (j as usize) / chunk != bi {
                count += 1;
            }
        }
    }
    count
}

/// Population variance of the row lengths (nonzeros per row). High
/// variance marks skewed matrices (power-law graphs, dense-row mixes)
/// whose SpMV cost is dominated by a few heavy rows — structure no
/// symmetric reordering changes, which is why the policy predictor
/// discounts reordering for them.
pub fn row_length_variance(a: &CsrMatrix) -> f64 {
    let n = a.nrows();
    if n == 0 {
        return 0.0;
    }
    let mean = a.nnz() as f64 / n as f64;
    let mut acc = 0.0;
    for i in 0..n {
        let d = a.row(i).0.len() as f64 - mean;
        acc += d * d;
    }
    acc / n as f64
}

/// Estimate of the x-vector reuse an SpMV achieves under the current
/// ordering: the average number of *distinct* cache lines of `x`
/// touched per row, normalised by the row length (lower = better
/// spatial locality, 1.0 = every nonzero on its own line). Computed
/// from column-index gaps within each row — consecutive columns on one
/// 64-byte line (8 doubles) count as one touch. This is the cheap,
/// order-sensitive proxy for the DRAM traffic `archsim` models
/// exactly: reordering wins precisely when it lowers this ratio.
pub fn x_reuse_estimate(a: &CsrMatrix) -> f64 {
    const DOUBLES_PER_LINE: u32 = 8;
    let mut lines = 0u64;
    for i in 0..a.nrows() {
        let (cols, _) = a.row(i);
        let mut last_line = u32::MAX;
        for &j in cols {
            let line = j / DOUBLES_PER_LINE;
            if line != last_line {
                lines += 1;
                last_line = line;
            }
        }
    }
    if a.nnz() == 0 {
        0.0
    } else {
        lines as f64 / a.nnz() as f64
    }
}

/// All four order-sensitive features of §3.2 for one matrix at one
/// thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixFeatures {
    /// Bandwidth.
    pub bandwidth: usize,
    /// Profile.
    pub profile: u64,
    /// Off-diagonal nonzero count for a `threads`-way block split.
    pub off_diagonal_nnz: usize,
    /// 1D load imbalance factor for `threads` threads.
    pub imbalance_1d: f64,
    /// The thread/block count the split-based features used.
    pub threads: usize,
}

/// Compute all features of §3.2 in one pass over the matrix.
pub fn matrix_features(a: &CsrMatrix, threads: usize) -> MatrixFeatures {
    MatrixFeatures {
        bandwidth: bandwidth(a),
        profile: profile(a),
        off_diagonal_nnz: off_diagonal_nnz(a, threads),
        imbalance_1d: imbalance_factor(&nnz_per_thread(a, threads)),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn from_entries(n: usize, entries: &[(usize, usize)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(i, j) in entries {
            coo.push(i, j, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn bandwidth_of_diagonal_is_zero() {
        let a = CsrMatrix::identity(5);
        assert_eq!(bandwidth(&a), 0);
    }

    #[test]
    fn bandwidth_of_banded() {
        let a = from_entries(6, &[(0, 0), (1, 0), (2, 1), (5, 2), (3, 3)]);
        assert_eq!(bandwidth(&a), 3); // entry (5,2)
    }

    #[test]
    fn bandwidth_counts_upper_triangle_too() {
        let a = from_entries(6, &[(0, 4), (1, 1)]);
        assert_eq!(bandwidth(&a), 4);
    }

    #[test]
    fn profile_sums_leftmost_distances() {
        // Row 0: leftmost 0 -> 0; row 1: leftmost 0 -> 1; row 2: leftmost 1 -> 1.
        let a = from_entries(3, &[(0, 0), (1, 0), (1, 1), (2, 1)]);
        assert_eq!(profile(&a), 2);
    }

    #[test]
    fn profile_ignores_rows_starting_right_of_diagonal() {
        let a = from_entries(3, &[(0, 2), (1, 2), (2, 0)]);
        // Rows 0 and 1 start right of the diagonal; row 2 contributes 2.
        assert_eq!(profile(&a), 2);
    }

    #[test]
    fn off_diagonal_nnz_counts_block_crossings() {
        // 4x4, 2 blocks of 2: entries (0,3) and (3,0) cross; (0,1) and (2,2) don't.
        let a = from_entries(4, &[(0, 1), (0, 3), (2, 2), (3, 0)]);
        assert_eq!(off_diagonal_nnz(&a, 2), 2);
        // With 1 block everything is diagonal.
        assert_eq!(off_diagonal_nnz(&a, 1), 0);
        // With 4 blocks (1 row each), everything off the exact diagonal crosses.
        assert_eq!(off_diagonal_nnz(&a, 4), 3);
    }

    #[test]
    fn features_bundle_is_consistent() {
        let a = from_entries(8, &[(0, 0), (1, 0), (2, 5), (7, 7), (6, 1)]);
        let f = matrix_features(&a, 2);
        assert_eq!(f.bandwidth, bandwidth(&a));
        assert_eq!(f.profile, profile(&a));
        assert_eq!(f.off_diagonal_nnz, off_diagonal_nnz(&a, 2));
        assert!(f.imbalance_1d >= 1.0);
        assert_eq!(f.threads, 2);
    }

    #[test]
    fn row_length_variance_separates_uniform_from_skewed() {
        // Uniform: every row has exactly one entry — variance zero.
        let uniform = CsrMatrix::identity(8);
        assert_eq!(row_length_variance(&uniform), 0.0);
        // Skewed: one dense row among singletons.
        let mut coo = CooMatrix::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 1.0);
        }
        for j in 0..8 {
            if j != 0 {
                coo.push(0, j, 1.0);
            }
        }
        let skewed = CsrMatrix::from_coo(&coo);
        assert!(row_length_variance(&skewed) > 4.0);
    }

    #[test]
    fn x_reuse_improves_with_locality() {
        // Banded rows touch consecutive columns: near 1 line per row,
        // so lines/nnz is well below 1.
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(3)..(i + 4).min(n) {
                coo.push(i, j, 1.0);
            }
        }
        let banded = CsrMatrix::from_coo(&coo);
        // Strided rows touch a fresh line per nonzero.
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for k in 0..7 {
                coo.push(i, (i + k * 9) % n, 1.0);
            }
        }
        let strided = CsrMatrix::from_coo(&coo);
        assert!(x_reuse_estimate(&banded) < 0.5);
        assert!(x_reuse_estimate(&strided) > 0.8);
        assert_eq!(x_reuse_estimate(&CsrMatrix::identity(0)), 0.0);
    }

    #[test]
    fn reordering_changes_features_as_expected() {
        // A banded matrix has low bandwidth; reversing rows/columns
        // keeps the band (anti-transpose symmetry of the metric).
        let n = 20;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
            if i > 0 {
                coo.push(i, i - 1, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        assert_eq!(bandwidth(&a), 1);
        assert_eq!(profile(&a), (n - 1) as u64);
    }
}
