//! Dolan–Moré performance profiles \[7\], the comparison device of
//! Fig. 5.
//!
//! Given a cost matrix (one row per problem instance, one column per
//! method, lower is better), the profile of method `m` is the function
//! `ρ_m(τ) = |{ instances where cost_m ≤ τ · best_cost }| / #instances`.
//! A point `(x, y)` on a curve means the method is within a factor `x`
//! of the best method on a fraction `y` of the instances; curves closer
//! to the top-left are better.

/// One method's performance-profile curve, sampled at given ratios.
#[derive(Debug, Clone)]
pub struct ProfileCurve {
    /// Method name.
    pub name: String,
    /// Sampled ratio points `τ` (the x axis).
    pub taus: Vec<f64>,
    /// Fraction of instances within factor `τ` of the best (the y axis).
    pub fractions: Vec<f64>,
}

impl ProfileCurve {
    /// The fraction of instances on which this method is (tied-)best,
    /// i.e. the curve value at `τ = 1`.
    pub fn fraction_best(&self) -> f64 {
        self.fractions.first().copied().unwrap_or(0.0)
    }

    /// Linear interpolation of the curve at an arbitrary `τ`.
    pub fn at(&self, tau: f64) -> f64 {
        if self.taus.is_empty() {
            return 0.0;
        }
        if tau <= self.taus[0] {
            return if tau >= self.taus[0] {
                self.fractions[0]
            } else {
                0.0
            };
        }
        for w in 0..self.taus.len() - 1 {
            if tau < self.taus[w + 1] {
                return self.fractions[w];
            }
        }
        *self.fractions.last().unwrap()
    }
}

/// Compute performance profiles for a set of methods over a set of
/// instances.
///
/// `costs[i][m]` is the cost of method `m` on instance `i` (lower is
/// better; non-finite or non-positive costs mark failures and are
/// treated as never within any factor of the best). `taus` is the
/// sample grid, which must start at 1.0 and be increasing.
pub fn performance_profile(names: &[&str], costs: &[Vec<f64>], taus: &[f64]) -> Vec<ProfileCurve> {
    assert!(
        !taus.is_empty() && taus[0] >= 1.0,
        "taus must start at >= 1"
    );
    let nmethods = names.len();
    let ninstances = costs.len();
    // Best cost per instance.
    let best: Vec<f64> = costs
        .iter()
        .map(|row| {
            assert_eq!(row.len(), nmethods, "cost row length mismatch");
            row.iter()
                .copied()
                .filter(|c| c.is_finite() && *c > 0.0)
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    names
        .iter()
        .enumerate()
        .map(|(m, &name)| {
            let fractions: Vec<f64> = taus
                .iter()
                .map(|&tau| {
                    if ninstances == 0 {
                        return 0.0;
                    }
                    let within = (0..ninstances)
                        .filter(|&i| {
                            let c = costs[i][m];
                            best[i].is_finite()
                                && c.is_finite()
                                && c > 0.0
                                && c <= tau * best[i] * (1.0 + 1e-12)
                        })
                        .count();
                    within as f64 / ninstances as f64
                })
                .collect();
            ProfileCurve {
                name: name.to_string(),
                taus: taus.to_vec(),
                fractions,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_method_dominates_at_tau_one() {
        // Method 0 is best on 2 of 3 instances, method 1 on 1.
        let costs = vec![vec![1.0, 2.0], vec![1.0, 3.0], vec![5.0, 1.0]];
        let taus = vec![1.0, 2.0, 5.0, 10.0];
        let profiles = performance_profile(&["a", "b"], &costs, &taus);
        assert!((profiles[0].fraction_best() - 2.0 / 3.0).abs() < 1e-12);
        assert!((profiles[1].fraction_best() - 1.0 / 3.0).abs() < 1e-12);
        // Everyone reaches 1.0 at a big enough tau.
        assert_eq!(*profiles[0].fractions.last().unwrap(), 1.0);
        assert_eq!(*profiles[1].fractions.last().unwrap(), 1.0);
    }

    #[test]
    fn curves_are_monotone() {
        let costs = vec![
            vec![1.0, 1.5, 9.0],
            vec![2.0, 1.0, 4.0],
            vec![3.0, 2.9, 1.0],
            vec![1.0, 1.0, 1.0],
        ];
        let taus: Vec<f64> = (0..40).map(|i| 1.0 + i as f64 * 0.25).collect();
        let profiles = performance_profile(&["x", "y", "z"], &costs, &taus);
        for p in &profiles {
            for w in p.fractions.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "profile must be non-decreasing");
            }
        }
    }

    #[test]
    fn ties_count_for_both() {
        let costs = vec![vec![1.0, 1.0]];
        let profiles = performance_profile(&["a", "b"], &costs, &[1.0]);
        assert_eq!(profiles[0].fraction_best(), 1.0);
        assert_eq!(profiles[1].fraction_best(), 1.0);
    }

    #[test]
    fn failures_never_qualify() {
        let costs = vec![vec![f64::INFINITY, 1.0], vec![0.0, 2.0]];
        let profiles = performance_profile(&["bad", "good"], &costs, &[1.0, 100.0]);
        assert_eq!(*profiles[0].fractions.last().unwrap(), 0.0);
        assert_eq!(*profiles[1].fractions.last().unwrap(), 1.0);
    }

    #[test]
    fn interpolation_lookup() {
        let curve = ProfileCurve {
            name: "m".into(),
            taus: vec![1.0, 2.0, 4.0],
            fractions: vec![0.5, 0.75, 1.0],
        };
        assert_eq!(curve.at(1.0), 0.5);
        assert_eq!(curve.at(1.5), 0.5);
        assert_eq!(curve.at(2.5), 0.75);
        assert_eq!(curve.at(100.0), 1.0);
        assert_eq!(curve.at(0.5), 0.0);
    }
}
