//! Property-based tests for the reordering algorithms: every algorithm
//! must produce a valid permutation of the right kind on arbitrary
//! square matrices, and structural invariants must hold.

use proptest::prelude::*;
use reorder::{all_algorithms, Rcm, ReorderAlgorithm};
use sparsemat::{is_structurally_symmetric, CooMatrix, CsrMatrix};

/// Arbitrary square matrix with a nonzero diagonal (typical for the
/// study's matrices) plus random entries — not necessarily symmetric.
fn matrix_strategy() -> impl Strategy<Value = CsrMatrix> {
    (
        4usize..60,
        proptest::collection::vec((0usize..3600, 0usize..3600), 0..160),
    )
        .prop_map(|(n, entries)| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 2.0);
            }
            for (a, b) in entries {
                coo.push(a % n, b % n, 1.0);
            }
            CsrMatrix::from_coo(&coo)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_algorithm_yields_valid_permutation(a in matrix_strategy()) {
        for alg in all_algorithms(4, 8) {
            let r = alg.compute(&a).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
            prop_assert_eq!(r.perm.len(), a.nrows(), "{}", alg.name());
            let b = r.apply(&a).expect("apply");
            prop_assert!(b.validate().is_ok(), "{}", alg.name());
            prop_assert_eq!(b.nnz(), a.nnz(), "{}", alg.name());
        }
    }

    #[test]
    fn algorithms_are_deterministic(a in matrix_strategy()) {
        for alg in all_algorithms(4, 8) {
            let p1 = alg.compute(&a).unwrap().perm;
            let p2 = alg.compute(&a).unwrap().perm;
            prop_assert_eq!(p1, p2, "{} not deterministic", alg.name());
        }
    }

    #[test]
    fn symmetric_algorithms_preserve_symmetry(a in matrix_strategy()) {
        let s = sparsemat::symmetrize_pattern(&a).unwrap();
        for alg in all_algorithms(4, 8) {
            let r = alg.compute(&s).unwrap();
            if r.symmetric {
                let b = r.apply(&s).unwrap();
                prop_assert!(
                    is_structurally_symmetric(&b),
                    "{} broke symmetry",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn rcm_never_worsens_bandwidth_much_on_connected_bands(
        n in 20usize..200, bw in 1usize..5, seed in 0u64..50
    ) {
        // A banded matrix scrambled and then RCM'd ends with bandwidth
        // comparable to the original band (BFS recovers chain structure).
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            for d in 1..=bw {
                if i + d < n {
                    coo.push_symmetric(i, i + d, -1.0);
                }
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let scrambled = {
            let mut order: Vec<u32> = (0..n as u32).collect();
            let mut state = seed | 1;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                order.swap(i, (state >> 33) as usize % (i + 1));
            }
            let p = sparsemat::Permutation::from_new_to_old(order).unwrap();
            a.permute_symmetric(&p).unwrap()
        };
        let r = Rcm::default().compute(&scrambled).unwrap();
        let b = r.apply(&scrambled).unwrap();
        let band_of = |m: &CsrMatrix| {
            m.iter().map(|(i, j, _)| i.abs_diff(j)).max().unwrap_or(0)
        };
        prop_assert!(
            band_of(&b) <= 4 * bw + 2,
            "RCM bandwidth {} on a half-bw {} band",
            band_of(&b),
            bw
        );
    }

    #[test]
    fn permute_in_spmv_unpermute_out_matches_original(a in matrix_strategy()) {
        // The serving-tier answer path: reorder the matrix, permute the
        // input in, run each production kernel, unpermute the output —
        // the caller must see A·x in the original index space, for
        // symmetric orderings and the row-only Gray alike.
        use spmv::KernelKind;
        let a = std::sync::Arc::new(a);
        let x: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();
        let expected = a.spmv_dense(&x);
        let team = team::ThreadTeam::new_in(&telemetry::Registry::new_arc(), 2);
        for alg in all_algorithms(4, 8) {
            let r = alg.compute(&a).unwrap();
            let b = std::sync::Arc::new(r.apply(&a).unwrap());
            let xp = r.permute_input(&x);
            for kind in KernelKind::all() {
                let kernel = kind.plan(&b, 2);
                let mut yp = vec![0.0; b.nrows()];
                kernel.execute(&team, &xp, &mut yp);
                let y = r.unpermute_output(&yp);
                for (i, (got, want)) in y.iter().zip(&expected).enumerate() {
                    // Column permutation changes summation order, so
                    // compare with a small relative tolerance.
                    let tol = 1e-9 * (1.0 + want.abs());
                    prop_assert!(
                        (got - want).abs() <= tol,
                        "{} × {}: y[{i}] = {got}, want {want}",
                        alg.name(),
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn gray_moves_only_rows(a in matrix_strategy()) {
        let r = reorder::Gray::default().compute(&a).unwrap();
        prop_assert!(!r.symmetric);
        let b = r.apply(&a).unwrap();
        // Each new row is byte-identical to the old row it came from.
        for new_i in 0..a.nrows() {
            let old_i = r.perm.new_to_old(new_i);
            prop_assert_eq!(b.row(new_i), a.row(old_i));
        }
    }
}
