//! Reverse Cuthill–McKee ordering [4, 19].
//!
//! The Cuthill–McKee ordering numbers the vertices of the matrix graph
//! in breadth-first order starting from a pseudo-peripheral vertex,
//! visiting the children of each vertex in ascending degree order.
//! Reversing the resulting sequence yields RCM, which is known to
//! produce the same bandwidth but a smaller profile and less fill in
//! practice (§2.1.1). Disconnected components are processed one after
//! another, each from its own pseudo-peripheral start.

use crate::component::{assemble_pieces, ComponentOrdering};
use crate::exec::{build_ordering_graph, ReorderExec};
use crate::traits::{ReorderAlgorithm, ReorderResult};
use sparsegraph::{
    connected_components, expand_frontier_with, pseudo_peripheral_vertex_with, FrontierScratch,
    Graph, DEFAULT_PAR_FRONTIER_MIN,
};
use sparsemat::{CsrMatrix, SparseError};
use team::Exec;

/// Reverse Cuthill–McKee reordering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rcm {
    /// If true, skip the final reversal and produce the plain
    /// Cuthill–McKee order (exposed for the ablation benchmarks).
    pub plain_cm: bool,
}

impl Rcm {
    /// Compute the Cuthill–McKee order of a graph (before reversal).
    pub fn cuthill_mckee_order(g: &Graph) -> Vec<u32> {
        Rcm::cuthill_mckee_order_on(g, Exec::Sequential)
    }

    /// [`Rcm::cuthill_mckee_order`] on an executor.
    ///
    /// The BFS is level-synchronised: each level is appended to the
    /// order, then the next level is built by
    /// [`sparsegraph::expand_frontier_with`] — children claimed by their
    /// first-in-frontier parent and sorted per parent by
    /// `(degree, id)`, exactly the queue discipline of the classic
    /// sequential CM. Wide frontiers expand on the executor's lanes;
    /// the output is byte-identical for every executor and team size.
    ///
    /// The visited flags, claim slots and frontier buffer are
    /// allocated once and reused across components, so
    /// many-component (road/circuit) matrices no longer pay a fresh
    /// queue + children allocation per component.
    pub fn cuthill_mckee_order_on(g: &Graph, exec: Exec<'_>) -> Vec<u32> {
        Rcm::cuthill_mckee_order_with(g, exec, DEFAULT_PAR_FRONTIER_MIN)
    }

    /// [`Rcm::cuthill_mckee_order_on`] with an explicit level-set
    /// parallel-expansion cutover (see
    /// [`ReorderExec::with_frontier_min`]); the order is identical for
    /// every threshold.
    pub fn cuthill_mckee_order_with(g: &Graph, exec: Exec<'_>, frontier_min: usize) -> Vec<u32> {
        let n = g.num_vertices();
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let scratch = FrontierScratch::new(n);
        let mut frontier: Vec<u32> = Vec::new();
        let comps = connected_components(g);
        // Process components in order of their first (lowest) vertex so
        // the ordering is deterministic.
        for comp in &comps.members {
            Rcm::cm_component_into(
                g,
                comp[0] as usize,
                &mut visited,
                &scratch,
                &mut frontier,
                &mut order,
                exec,
                frontier_min,
            );
        }
        order
    }

    /// Append the Cuthill–McKee order of one component (identified by
    /// any member vertex) to `order`, sharing the visited flags and
    /// frontier scratch across calls. The component's sub-order depends
    /// only on its own subgraph — the invariant the delta splice path
    /// relies on.
    #[allow(clippy::too_many_arguments)]
    fn cm_component_into(
        g: &Graph,
        comp_seed: usize,
        visited: &mut [bool],
        scratch: &FrontierScratch,
        frontier: &mut Vec<u32>,
        order: &mut Vec<u32>,
        exec: Exec<'_>,
        frontier_min: usize,
    ) {
        let start = pseudo_peripheral_vertex_with(g, comp_seed, exec, frontier_min);
        visited[start] = true;
        frontier.clear();
        frontier.push(start as u32);
        while !frontier.is_empty() {
            order.extend_from_slice(frontier);
            let next = expand_frontier_with(
                g,
                frontier,
                |u| !visited[u],
                scratch,
                exec,
                frontier_min,
                |children| children.sort_unstable_by_key(|&u| (g.degree(u as usize), u)),
            );
            for &u in &next {
                visited[u as usize] = true;
            }
            *frontier = next;
        }
    }
}

impl ReorderAlgorithm for Rcm {
    fn name(&self) -> &'static str {
        "RCM"
    }

    fn compute(&self, a: &CsrMatrix) -> Result<ReorderResult, SparseError> {
        self.compute_on(a, &ReorderExec::sequential())
    }

    fn compute_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<ReorderResult, SparseError> {
        let co = self
            .compute_components_on(a, rx)?
            .expect("RCM is component-structured");
        Ok(co.into_parts()?.0)
    }

    fn supports_components(&self) -> bool {
        true
    }

    /// One component's final RCM bytes: the CM breadth-first order from
    /// the component's pseudo-peripheral vertex, reversed per piece
    /// (unless `plain_cm`). Reversing each piece and laying pieces out
    /// in descending key order is exactly the classic global reversal
    /// of the ascending CM concatenation.
    fn order_component_on(
        &self,
        g: &Graph,
        comp: &[u32],
        rx: &ReorderExec<'_>,
    ) -> Option<Vec<u32>> {
        let n = g.num_vertices();
        let mut visited = vec![false; n];
        let scratch = FrontierScratch::new(n);
        let mut frontier: Vec<u32> = Vec::new();
        let mut piece: Vec<u32> = Vec::with_capacity(comp.len());
        Rcm::cm_component_into(
            g,
            comp[0] as usize,
            &mut visited,
            &scratch,
            &mut frontier,
            &mut piece,
            rx.exec(),
            rx.frontier_min(),
        );
        if !self.plain_cm {
            piece.reverse();
        }
        Some(piece)
    }

    fn component_layout(&self, meta: &[(u32, usize)]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..meta.len()).collect();
        if self.plain_cm {
            idx.sort_by_key(|&i| meta[i].0);
        } else {
            idx.sort_by_key(|&i| std::cmp::Reverse(meta[i].0));
        }
        idx
    }

    fn compute_components_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<Option<ComponentOrdering>, SparseError> {
        let g = build_ordering_graph(a, rx)?;
        let _span = rx.trace().span("reorder.levels");
        let n = g.num_vertices();
        let mut visited = vec![false; n];
        let scratch = FrontierScratch::new(n);
        let mut frontier: Vec<u32> = Vec::new();
        let comps = connected_components(&g);
        let mut pieces: Vec<(u32, Vec<u32>)> = Vec::with_capacity(comps.members.len());
        for comp in &comps.members {
            let mut piece: Vec<u32> = Vec::with_capacity(comp.len());
            Rcm::cm_component_into(
                &g,
                comp[0] as usize,
                &mut visited,
                &scratch,
                &mut frontier,
                &mut piece,
                rx.exec(),
                rx.frontier_min(),
            );
            if !self.plain_cm {
                piece.reverse();
            }
            pieces.push((comp[0], piece));
        }
        Ok(Some(assemble_pieces(self, pieces)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{CooMatrix, Permutation};

    /// Bandwidth of a square matrix: max |i - j| over stored entries.
    fn bandwidth(a: &CsrMatrix) -> usize {
        let mut bw = 0usize;
        for (i, j, _) in a.iter() {
            bw = bw.max(i.abs_diff(j));
        }
        bw
    }

    /// An "arrow" matrix: dense first row/column plus diagonal. The
    /// natural ordering has bandwidth n-1; RCM reduces it drastically...
    /// actually for an arrow matrix the star graph keeps the hub
    /// adjacent to everything, so instead use a shuffled banded matrix,
    /// where RCM recovers a narrow band.
    fn shuffled_band(n: usize, half_bw: usize, seed: u64) -> CsrMatrix {
        // Build banded matrix, then symmetrically permute by a
        // pseudo-random shuffle, destroying the band.
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(half_bw)..(i + half_bw + 1).min(n) {
                coo.push(i, j, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let p = Permutation::from_new_to_old(order).unwrap();
        a.permute_symmetric(&p).unwrap()
    }

    #[test]
    fn rcm_recovers_band_structure() {
        let n = 200;
        let a = shuffled_band(n, 2, 7);
        assert!(bandwidth(&a) > n / 4, "shuffle failed to destroy the band");
        let r = Rcm::default().compute(&a).unwrap();
        let b = r.apply(&a).unwrap();
        assert!(
            bandwidth(&b) <= 8,
            "RCM bandwidth {} should be near the original 2",
            bandwidth(&b)
        );
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn rcm_is_reverse_of_cm() {
        let a = shuffled_band(50, 2, 3);
        let rcm = Rcm::default().compute(&a).unwrap();
        let cm = Rcm { plain_cm: true }.compute(&a).unwrap();
        let n = a.nrows();
        for k in 0..n {
            assert_eq!(rcm.perm.new_to_old(k), cm.perm.new_to_old(n - 1 - k));
        }
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Two separate paths.
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 1.0);
        }
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(1, 2, 1.0);
        coo.push_symmetric(3, 4, 1.0);
        coo.push_symmetric(4, 5, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let r = Rcm::default().compute(&a).unwrap();
        assert_eq!(r.perm.len(), 6);
        // Valid permutation covering all vertices (checked by constructor);
        // bandwidth must remain small.
        let b = r.apply(&a).unwrap();
        assert!(bandwidth(&b) <= 2);
    }

    #[test]
    fn rcm_on_unsymmetric_pattern_uses_symmetrisation() {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 1.0);
        }
        coo.push(0, 3, 1.0); // one-directional entry
        let a = CsrMatrix::from_coo(&coo);
        let r = Rcm::default().compute(&a).unwrap();
        assert_eq!(r.perm.len(), 4);
        assert!(r.symmetric);
        r.apply(&a).unwrap().validate().unwrap();
    }

    #[test]
    fn rcm_identity_sized_one() {
        let a = CsrMatrix::identity(1);
        let r = Rcm::default().compute(&a).unwrap();
        assert_eq!(r.perm.len(), 1);
    }

    #[test]
    fn parallel_rcm_matches_sequential() {
        let a = shuffled_band(400, 3, 11);
        let seq = Rcm::default().compute(&a).unwrap().perm;
        let registry = telemetry::Registry::new_arc();
        for lanes in [1usize, 2, 4] {
            let team = team::ThreadTeam::new_in(&registry, lanes);
            let par = Rcm::default()
                .compute_on(&a, &ReorderExec::on_team(&team))
                .unwrap()
                .perm;
            assert_eq!(seq, par, "RCM diverged at {lanes} lanes");
        }
    }

    #[test]
    fn frontier_min_does_not_change_the_order() {
        let a = shuffled_band(400, 3, 11);
        let seq = Rcm::default().compute(&a).unwrap().perm;
        let registry = telemetry::Registry::new_arc();
        let team = team::ThreadTeam::new_in(&registry, 4);
        for frontier_min in [0usize, 16, 1024, usize::MAX] {
            let tuned = Rcm::default()
                .compute_on(
                    &a,
                    &ReorderExec::on_team(&team).with_frontier_min(frontier_min),
                )
                .unwrap()
                .perm;
            assert_eq!(seq, tuned, "RCM diverged at frontier_min {frontier_min}");
        }
    }

    #[test]
    fn cm_order_visits_low_degree_first_within_level() {
        // Star with one extra pendant chain: from the hub, children are
        // visited in ascending degree order.
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 1.0);
        }
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(0, 2, 1.0);
        coo.push_symmetric(2, 3, 1.0); // vertex 2 has degree 2
        coo.push_symmetric(3, 4, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let g = Graph::from_matrix(&a).unwrap();
        let order = Rcm::cuthill_mckee_order(&g);
        assert_eq!(order.len(), 5);
        // Wherever 0 appears, 1 (degree 1) must come before 2 (degree 2)
        // if both are children of 0.
        let pos = |v: u32| order.iter().position(|&x| x == v).unwrap();
        if pos(0) < pos(1) && pos(0) < pos(2) {
            assert!(pos(1) < pos(2));
        }
    }
}
