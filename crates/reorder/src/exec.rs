//! Execution context for the ordering hot path: which executor the
//! parallel stages run on, and which trace the sub-stage spans record
//! under.

use sparsegraph::Graph;
use sparsemat::{is_structurally_symmetric, symmetrize_pattern_on, CsrMatrix, SparseError};
use team::{Exec, ThreadTeam};
use telemetry::trace::TraceCtx;

/// How a reordering runs: an [`Exec`] (inline or on a [`ThreadTeam`])
/// plus an optional [`TraceCtx`] under which
/// [`ReorderAlgorithm::compute_on`](crate::ReorderAlgorithm::compute_on)
/// implementations record the `reorder.symmetrize` / `reorder.levels`
/// sub-stage spans.
///
/// The executor changes *where* the work runs, never *what* it
/// produces: every parallel stage is byte-identical to its sequential
/// counterpart (see the determinism notes on
/// [`sparsegraph::expand_frontier_on`] and
/// [`sparsemat::symmetrize_pattern_on`]).
#[derive(Debug, Clone)]
pub struct ReorderExec<'a> {
    exec: Exec<'a>,
    trace: TraceCtx,
    frontier_min: usize,
    amd_round_min: usize,
}

impl<'a> ReorderExec<'a> {
    /// Run everything inline on the calling thread, untraced — the
    /// behaviour of the plain `compute` entry points.
    pub fn sequential() -> ReorderExec<'static> {
        ReorderExec {
            exec: Exec::Sequential,
            trace: TraceCtx::disabled(),
            frontier_min: sparsegraph::DEFAULT_PAR_FRONTIER_MIN,
            amd_round_min: crate::amd::DEFAULT_AMD_ROUND_MIN,
        }
    }

    /// Run the parallel stages on `team`, untraced.
    pub fn on_team(team: &'a ThreadTeam) -> ReorderExec<'a> {
        ReorderExec {
            exec: Exec::Team(team),
            trace: TraceCtx::disabled(),
            frontier_min: sparsegraph::DEFAULT_PAR_FRONTIER_MIN,
            amd_round_min: crate::amd::DEFAULT_AMD_ROUND_MIN,
        }
    }

    /// Run on an explicit executor, untraced.
    pub fn on_exec(exec: Exec<'a>) -> ReorderExec<'a> {
        ReorderExec {
            exec,
            trace: TraceCtx::disabled(),
            frontier_min: sparsegraph::DEFAULT_PAR_FRONTIER_MIN,
            amd_round_min: crate::amd::DEFAULT_AMD_ROUND_MIN,
        }
    }

    /// Record sub-stage spans under `ctx` (pass the `engine.reorder`
    /// span's child context so the stages nest beneath it).
    pub fn with_trace(mut self, ctx: TraceCtx) -> Self {
        self.trace = ctx;
        self
    }

    /// Set the level-set parallel-expansion cutover: BFS frontiers
    /// narrower than `frontier_min` expand sequentially even on a
    /// team. The ordering produced is identical for every value —
    /// this tunes dispatch overhead only (default
    /// [`sparsegraph::DEFAULT_PAR_FRONTIER_MIN`]; DESIGN §9 records
    /// the measurement behind it).
    pub fn with_frontier_min(mut self, frontier_min: usize) -> Self {
        self.frontier_min = frontier_min;
        self
    }

    /// The level-set sequential-fallback threshold in effect.
    pub fn frontier_min(&self) -> usize {
        self.frontier_min
    }

    /// Set the AMD round-update cutover: elimination rounds touching
    /// fewer than `amd_round_min` variables run their quotient-graph
    /// update inline even on a team. Like
    /// [`ReorderExec::with_frontier_min`], the ordering produced is
    /// identical for every value — this tunes dispatch overhead only
    /// (default [`crate::amd::DEFAULT_AMD_ROUND_MIN`]; DESIGN §9
    /// records the reasoning).
    pub fn with_amd_round_min(mut self, amd_round_min: usize) -> Self {
        self.amd_round_min = amd_round_min;
        self
    }

    /// The AMD round-update sequential-fallback threshold in effect.
    pub fn amd_round_min(&self) -> usize {
        self.amd_round_min
    }

    /// The executor the parallel stages dispatch on.
    pub fn exec(&self) -> Exec<'a> {
        self.exec
    }

    /// The trace context sub-stage spans record under (disabled by
    /// default).
    pub fn trace(&self) -> &TraceCtx {
        &self.trace
    }
}

/// Build the undirected ordering graph of `a` under a
/// `reorder.symmetrize` span: symmetrise on the context's executor if
/// the pattern is unsymmetric, then construct the adjacency without
/// re-verifying symmetry.
pub fn build_ordering_graph(a: &CsrMatrix, rx: &ReorderExec<'_>) -> Result<Graph, SparseError> {
    let mut span = rx.trace().span("reorder.symmetrize");
    if is_structurally_symmetric(a) {
        span.arg("symmetrized", "false");
        Graph::from_symmetric_matrix(a)
    } else {
        span.arg("symmetrized", "true");
        let s = symmetrize_pattern_on(a, rx.exec())?;
        Graph::from_symmetric_matrix(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    #[test]
    fn sequential_context_is_inline_and_untraced() {
        let rx = ReorderExec::sequential();
        assert_eq!(rx.exec().lanes(), 1);
        assert!(!rx.trace().is_recording());
    }

    #[test]
    fn team_context_exposes_lane_count() {
        let registry = telemetry::Registry::new_arc();
        let team = ThreadTeam::new_in(&registry, 3);
        let rx = ReorderExec::on_team(&team);
        assert_eq!(rx.exec().lanes(), 3);
    }

    #[test]
    fn frontier_min_defaults_and_overrides() {
        let rx = ReorderExec::sequential();
        assert_eq!(rx.frontier_min(), sparsegraph::DEFAULT_PAR_FRONTIER_MIN);
        let tuned = ReorderExec::sequential().with_frontier_min(256);
        assert_eq!(tuned.frontier_min(), 256);
    }

    #[test]
    fn amd_round_min_defaults_and_overrides() {
        let rx = ReorderExec::sequential();
        assert_eq!(rx.amd_round_min(), crate::amd::DEFAULT_AMD_ROUND_MIN);
        let tuned = ReorderExec::sequential().with_amd_round_min(16);
        assert_eq!(tuned.amd_round_min(), 16);
    }

    #[test]
    fn ordering_graph_matches_from_matrix() {
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 1.0);
        }
        coo.push(0, 3, 1.0); // one-directional: forces symmetrisation
        coo.push_symmetric(1, 2, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let via_ctx = build_ordering_graph(&a, &ReorderExec::sequential()).unwrap();
        let direct = Graph::from_matrix(&a).unwrap();
        assert_eq!(via_ctx, direct);
    }
}
