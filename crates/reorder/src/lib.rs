#![allow(clippy::needless_range_loop)]

//! Sparse matrix reordering algorithms — the core contribution layer of
//! the study.
//!
//! Implements the six orderings evaluated in *Bringing Order to
//! Sparsity* (SC '23, Table 1):
//!
//! | Short name | Algorithm | Module |
//! |-----------|-----------|--------|
//! | RCM  | Reverse Cuthill–McKee                     | [`rcm`]  |
//! | AMD  | Approximate minimum degree                | [`amd`]  |
//! | ND   | Nested dissection                         | [`nd`]   |
//! | GP   | Graph partitioning (edge-cut, METIS-like) | [`gp`]   |
//! | HP   | Hypergraph partitioning (cut-net, PaToH-like) | [`hp`] |
//! | Gray | Gray code ordering (Zhao et al.)          | [`gray`] |
//!
//! All algorithms are exposed behind the [`ReorderAlgorithm`] trait.
//! RCM, AMD, ND and GP are *symmetric* orderings (the same permutation
//! is applied to rows and columns) computed on the graph of `A + Aᵀ`
//! when the pattern is unsymmetric; HP is symmetric as well; Gray
//! permutes only the rows (§3.3).
//!
//! # Example
//!
//! ```
//! use reorder::{Rcm, ReorderAlgorithm};
//! use sparsemat::{CooMatrix, CsrMatrix};
//!
//! // An arrow matrix: RCM reduces its bandwidth dramatically.
//! let n = 8;
//! let mut coo = CooMatrix::new(n, n);
//! for i in 0..n {
//!     coo.push(i, i, 4.0);
//!     if i > 0 {
//!         coo.push_symmetric(0, i, -1.0);
//!     }
//! }
//! let a = CsrMatrix::from_coo(&coo);
//! let result = Rcm::default().compute(&a).unwrap();
//! let b = result.apply(&a).unwrap();
//! assert_eq!(b.nnz(), a.nnz());
//! ```

pub mod amd;
mod component;
mod exec;
pub mod gp;
pub mod gps;
pub mod gray;
pub mod hp;
pub mod nd;
pub mod rcm;
pub mod sbd;
mod traits;

pub use amd::{amd_order, amd_order_on, amd_order_single, Amd, AmdStats, DEFAULT_AMD_ROUND_MIN};
pub use component::{splice_ordering_on, ComponentOrdering, ComponentRange, SpliceReport};
pub use exec::{build_ordering_graph, ReorderExec};
pub use gp::Gp;
pub use gps::Gps;
pub use gray::{Gray, GrayParams};
pub use hp::Hp;
pub use nd::Nd;
pub use rcm::Rcm;
pub use sbd::Sbd;
pub use traits::{
    all_algorithms, timed_components_on, timed_permutation, timed_permutation_on, Original,
    ReorderAlgorithm, ReorderResult, TimedComponentReordering, TimedReordering,
};
