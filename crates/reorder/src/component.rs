//! Component-structured orderings and the delta splice path.
//!
//! Every ordering of a disconnected graph decomposes into independent
//! sub-permutations, one per connected component, arranged by an
//! algorithm-specific layout discipline (RCM lays reversed CM pieces
//! out in descending component key, GPS numbers the largest component
//! first, AMD concatenates in ascending key). [`ComponentOrdering`]
//! makes that decomposition explicit — the flat `new_to_old` order
//! plus a component→range map — which is what turns a structural delta
//! from "recompute everything" into "recompute the dirty components
//! and splice the rest back byte-identically"
//! ([`splice_ordering_on`]).
//!
//! The byte-identity argument: a component's sub-permutation depends
//! only on its own subgraph and its canonical key (the minimum member
//! vertex, which seeds the pseudo-peripheral search), and the layout
//! disciplines are total orders on `(key, len)`. An untouched
//! component therefore reproduces its cached bytes exactly, and the
//! spliced whole equals a full recompute.

use crate::exec::{build_ordering_graph, ReorderExec};
use crate::traits::{ReorderAlgorithm, ReorderResult};
use sparsegraph::IncrementalComponents;
use sparsemat::{CsrMatrix, Permutation, SparseError};
use std::collections::BTreeMap;

/// One component's slice of a [`ComponentOrdering`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentRange {
    /// Canonical component key: the minimum vertex id of the component.
    pub key: u32,
    /// Offset of the component's sub-permutation in `order`.
    pub start: usize,
    /// Length of the sub-permutation (= component size).
    pub len: usize,
}

/// A permutation decomposed into per-component sub-permutations.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentOrdering {
    /// The full ordering, `order[new] = old`.
    pub order: Vec<u32>,
    /// Component ranges in final layout order; the ranges tile `order`
    /// exactly. `order[start..start + len]` is both the component's
    /// sub-permutation and its membership set.
    pub ranges: Vec<ComponentRange>,
    /// Whether the ordering applies symmetrically (it does for every
    /// component-structured algorithm: RCM, GPS, AMD).
    pub symmetric: bool,
}

impl ComponentOrdering {
    /// Split into the plain [`ReorderResult`] (validating the
    /// permutation) and the range map.
    pub fn into_parts(self) -> Result<(ReorderResult, Vec<ComponentRange>), SparseError> {
        let perm = Permutation::from_new_to_old(self.order)?;
        Ok((
            ReorderResult {
                perm,
                symmetric: self.symmetric,
            },
            self.ranges,
        ))
    }

    /// The sub-permutation of the component with the given key.
    pub fn piece(&self, key: u32) -> Option<&[u32]> {
        self.ranges
            .iter()
            .find(|r| r.key == key)
            .map(|r| &self.order[r.start..r.start + r.len])
    }
}

/// What a [`splice_ordering_on`] call did, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpliceReport {
    /// Components in the post-delta ordering.
    pub components: usize,
    /// Components actually re-ordered (the dirty ones).
    pub recomputed: usize,
    /// Rows in the recomputed components.
    pub dirty_rows: usize,
    /// Rows re-scanned by the incremental component update.
    pub rescanned: usize,
}

impl SpliceReport {
    /// Fraction of rows that had to be re-ordered.
    pub fn dirty_frac(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.dirty_rows as f64 / n as f64
        }
    }
}

/// Concatenate per-component pieces (given in any order, keys unique)
/// into a [`ComponentOrdering`] under the algorithm's layout
/// discipline.
pub(crate) fn assemble_pieces(
    algo: &dyn ReorderAlgorithm,
    pieces: Vec<(u32, Vec<u32>)>,
) -> ComponentOrdering {
    let meta: Vec<(u32, usize)> = pieces.iter().map(|(k, p)| (*k, p.len())).collect();
    let layout = algo.component_layout(&meta);
    debug_assert_eq!(layout.len(), pieces.len(), "layout must cover every piece");
    let total: usize = meta.iter().map(|&(_, len)| len).sum();
    let mut order = Vec::with_capacity(total);
    let mut ranges = Vec::with_capacity(pieces.len());
    for &idx in &layout {
        let (key, piece) = &pieces[idx];
        ranges.push(ComponentRange {
            key: *key,
            start: order.len(),
            len: piece.len(),
        });
        order.extend_from_slice(piece);
    }
    debug_assert_eq!(order.len(), total);
    ComponentOrdering {
        order,
        ranges,
        symmetric: true,
    }
}

/// Re-order only the components touched since a cached ancestor
/// ordering and splice the untouched sub-permutations back verbatim.
///
/// * `a` — the **post-delta** matrix.
/// * `cached_order` / `cached_ranges` — the ancestor's
///   component-structured ordering (same algorithm).
/// * `touched` — the union of
///   [`DeltaReport::touched_rows`](sparsemat::DeltaReport::touched_rows)
///   over every delta between the ancestor and `a`.
///
/// Returns `Ok(None)` when the splice cannot be taken safely — the
/// algorithm is not component-structured, the dimensions changed, or
/// the cached ranges are inconsistent with the post-delta component
/// structure — in which case the caller falls back to a full
/// recompute. On success the result is **byte-identical** to
/// `compute_components_on` on `a` (pinned by the determinism suite).
pub fn splice_ordering_on(
    algo: &dyn ReorderAlgorithm,
    a: &CsrMatrix,
    cached_order: &[u32],
    cached_ranges: &[ComponentRange],
    touched: &[u32],
    rx: &ReorderExec<'_>,
) -> Result<Option<(ComponentOrdering, SpliceReport)>, SparseError> {
    if !algo.supports_components() || cached_ranges.is_empty() {
        return Ok(None);
    }
    let n = a.nrows();
    if !a.is_square()
        || cached_order.len() != n
        || cached_ranges.iter().map(|r| r.len).sum::<usize>() != n
        || touched.iter().any(|&t| t as usize >= n)
    {
        return Ok(None);
    }
    let g = build_ordering_graph(a, rx)?;

    // Rebuild the component partition from the cached ranges, then
    // re-scan only the touched components on the post-delta graph.
    let mut inc = IncrementalComponents::from_partition(
        n,
        cached_ranges
            .iter()
            .map(|r| cached_order[r.start..r.start + r.len].iter().copied()),
    );
    let delta = inc.apply_delta(&g, touched);
    let dirty: BTreeMap<u32, ()> = delta.dirty.iter().map(|&l| (l, ())).collect();
    let by_key: BTreeMap<u32, &ComponentRange> = cached_ranges.iter().map(|r| (r.key, r)).collect();

    let mut report = SpliceReport {
        components: inc.count(),
        recomputed: 0,
        dirty_rows: 0,
        rescanned: delta.rescanned,
    };
    let mut pieces: Vec<(u32, Vec<u32>)> = Vec::with_capacity(inc.count());
    for label in inc.labels().collect::<Vec<_>>() {
        let members = inc.members(label).expect("label enumerated from the map");
        if dirty.contains_key(&label) {
            let piece = match algo.order_component_on(&g, members, rx) {
                Some(p) => p,
                None => return Ok(None),
            };
            debug_assert_eq!(piece.len(), members.len());
            report.recomputed += 1;
            report.dirty_rows += members.len();
            pieces.push((label, piece));
        } else {
            // Clean component: its sub-permutation splices verbatim.
            let range = match by_key.get(&label) {
                Some(r) if r.len == members.len() => r,
                _ => return Ok(None), // cached ranges inconsistent
            };
            pieces.push((
                label,
                cached_order[range.start..range.start + range.len].to_vec(),
            ));
        }
    }
    Ok(Some((assemble_pieces(algo, pieces), report)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Amd, Gps, Rcm};
    use sparsemat::{CooMatrix, EdgeOp};

    /// Two triangles and a path, disconnected.
    fn multi_component() -> CsrMatrix {
        let mut coo = CooMatrix::new(10, 10);
        for i in 0..10 {
            coo.push(i, i, 1.0);
        }
        for &(i, j) in &[(0, 1), (1, 2), (0, 2)] {
            coo.push_symmetric(i, j, -1.0);
        }
        for &(i, j) in &[(3, 4), (4, 5), (3, 5)] {
            coo.push_symmetric(i, j, -1.0);
        }
        for &(i, j) in &[(6, 7), (7, 8), (8, 9)] {
            coo.push_symmetric(i, j, -1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    fn algos() -> Vec<Box<dyn ReorderAlgorithm>> {
        vec![
            Box::new(Rcm::default()),
            Box::new(Rcm { plain_cm: true }),
            Box::new(Gps::default()),
            Box::new(Gps { reverse: true }),
            Box::new(Amd::default()),
        ]
    }

    #[test]
    fn component_ordering_matches_flat_compute() {
        let a = multi_component();
        let rx = ReorderExec::sequential();
        for algo in algos() {
            let flat = algo.compute_on(&a, &rx).unwrap();
            let co = algo
                .compute_components_on(&a, &rx)
                .unwrap()
                .expect("component-structured algorithm");
            assert_eq!(
                co.order,
                flat.perm.order(),
                "{}: component path diverged from flat path",
                algo.name()
            );
            // Ranges tile the order and carry canonical keys.
            let mut covered = 0usize;
            for r in &co.ranges {
                assert_eq!(r.start, covered);
                let piece = &co.order[r.start..r.start + r.len];
                assert_eq!(r.key, *piece.iter().min().unwrap());
                covered += r.len;
            }
            assert_eq!(covered, a.nrows());
        }
    }

    #[test]
    fn splice_equals_full_recompute() {
        let base = multi_component();
        let rx = ReorderExec::sequential();
        // Delta: rewire inside the second triangle and split the path.
        let ops = vec![
            EdgeOp::Remove { row: 3, col: 5 },
            EdgeOp::Remove { row: 5, col: 3 },
            EdgeOp::Remove { row: 7, col: 8 },
            EdgeOp::Remove { row: 8, col: 7 },
        ];
        let mut mutated = base.clone();
        let report = mutated.apply_delta(&ops).unwrap();
        for algo in algos() {
            let cached = algo
                .compute_components_on(&base, &rx)
                .unwrap()
                .expect("component support");
            let full = algo
                .compute_components_on(&mutated, &rx)
                .unwrap()
                .expect("component support");
            let (spliced, stats) = splice_ordering_on(
                algo.as_ref(),
                &mutated,
                &cached.order,
                &cached.ranges,
                &report.touched_rows,
                &rx,
            )
            .unwrap()
            .expect("splice path taken");
            assert_eq!(spliced, full, "{}: splice diverged", algo.name());
            // Components {0,1,2} untouched: never recomputed.
            assert!(stats.recomputed < stats.components);
            assert!(stats.dirty_rows < base.nrows());
        }
    }

    #[test]
    fn splice_declines_on_non_component_algorithms() {
        let a = multi_component();
        let rx = ReorderExec::sequential();
        let nd = crate::Nd::default();
        assert!(nd.compute_components_on(&a, &rx).unwrap().is_none());
        let rcm_cached = Rcm::default()
            .compute_components_on(&a, &rx)
            .unwrap()
            .unwrap();
        let out =
            splice_ordering_on(&nd, &a, &rcm_cached.order, &rcm_cached.ranges, &[0], &rx).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn merge_and_growth_deltas_splice_correctly() {
        let base = multi_component();
        let rx = ReorderExec::sequential();
        // Merge the two triangles and grow the path internally.
        let ops = vec![
            EdgeOp::Add {
                row: 2,
                col: 3,
                value: -1.0,
            },
            EdgeOp::Add {
                row: 3,
                col: 2,
                value: -1.0,
            },
            EdgeOp::Add {
                row: 6,
                col: 9,
                value: -1.0,
            },
            EdgeOp::Add {
                row: 9,
                col: 6,
                value: -1.0,
            },
        ];
        let mut mutated = base.clone();
        let report = mutated.apply_delta(&ops).unwrap();
        for algo in algos() {
            let cached = algo.compute_components_on(&base, &rx).unwrap().unwrap();
            let full = algo.compute_components_on(&mutated, &rx).unwrap().unwrap();
            let (spliced, _) = splice_ordering_on(
                algo.as_ref(),
                &mutated,
                &cached.order,
                &cached.ranges,
                &report.touched_rows,
                &rx,
            )
            .unwrap()
            .expect("splice path taken");
            assert_eq!(spliced, full, "{}: merge splice diverged", algo.name());
        }
    }
}
