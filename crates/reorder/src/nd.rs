//! Nested dissection ordering [8, 14].
//!
//! A vertex separator splits the graph into two halves; the halves are
//! ordered first (recursively) and the separator vertices are numbered
//! last. Small leaf subgraphs are ordered with minimum degree, the same
//! hybrid METIS's `METIS_NodeND` uses. Small separators at every level
//! keep Cholesky fill low (§2.1.2).

use crate::amd::amd_order_on;
use crate::exec::ReorderExec;
use crate::traits::{ReorderAlgorithm, ReorderResult};
use partition::vertex_separator;
use sparsegraph::Graph;
use sparsemat::{CsrMatrix, Permutation, SparseError};

/// Nested dissection reordering.
#[derive(Debug, Clone, Copy)]
pub struct Nd {
    /// Subgraphs at or below this size are ordered with minimum degree
    /// instead of further dissection.
    pub leaf_size: usize,
    /// Imbalance tolerance for the separator bisections.
    pub ubfactor: f64,
    /// RNG seed threaded into the partitioner.
    pub seed: u64,
}

impl Default for Nd {
    fn default() -> Self {
        Nd {
            leaf_size: 64,
            ubfactor: 1.10,
            seed: 0xD15EC7,
        }
    }
}

impl Nd {
    /// Compute the nested dissection order of a graph (inline leaf
    /// orderings).
    pub fn dissection_order(&self, g: &Graph) -> Vec<u32> {
        self.dissection_order_on(g, &ReorderExec::sequential())
    }

    /// Compute the nested dissection order with leaf AMD orderings on
    /// the given execution context. The dissection itself is
    /// sequential; the leaves' round-based quotient-graph updates run
    /// on `rx`'s executor. The order is byte-identical for every
    /// executor (see [`amd_order_on`]).
    pub fn dissection_order_on(&self, g: &Graph, rx: &ReorderExec<'_>) -> Vec<u32> {
        let n = g.num_vertices();
        let vertices: Vec<u32> = (0..n as u32).collect();
        let mut order = Vec::with_capacity(n);
        self.recurse(g, &vertices, self.seed, &mut order, rx);
        debug_assert_eq!(order.len(), n);
        order
    }

    fn recurse(
        &self,
        g_full: &Graph,
        vertices: &[u32],
        seed: u64,
        order: &mut Vec<u32>,
        rx: &ReorderExec<'_>,
    ) {
        if vertices.len() <= self.leaf_size {
            let (sub, map) = subgraph_of(g_full, vertices);
            let local = amd_order_on(&sub, true, 0, rx).0;
            order.extend(local.iter().map(|&l| map[l as usize]));
            return;
        }
        let (sub, map) = subgraph_of(g_full, vertices);
        let sep = vertex_separator(&sub, self.ubfactor, seed);
        // Degenerate separator (e.g. a clique where one side is empty):
        // stop dissecting and fall back to minimum degree.
        if sep.left.is_empty() || sep.right.is_empty() {
            let local = amd_order_on(&sub, true, 0, rx).0;
            order.extend(local.iter().map(|&l| map[l as usize]));
            return;
        }
        let to_global =
            |locals: &[u32]| -> Vec<u32> { locals.iter().map(|&l| map[l as usize]).collect() };
        let left = to_global(&sep.left);
        let right = to_global(&sep.right);
        let separator = to_global(&sep.separator);
        self.recurse(
            g_full,
            &left,
            seed.wrapping_mul(0x9E37).wrapping_add(11),
            order,
            rx,
        );
        self.recurse(
            g_full,
            &right,
            seed.wrapping_mul(0x9E37).wrapping_add(12),
            order,
            rx,
        );
        // Separator vertices are numbered last at this level.
        order.extend_from_slice(&separator);
    }
}

fn subgraph_of(g: &Graph, vertices: &[u32]) -> (Graph, Vec<u32>) {
    if vertices.len() == g.num_vertices() {
        (g.clone(), vertices.to_vec())
    } else {
        g.subgraph(vertices)
    }
}

impl ReorderAlgorithm for Nd {
    fn name(&self) -> &'static str {
        "ND"
    }

    fn compute(&self, a: &CsrMatrix) -> Result<ReorderResult, SparseError> {
        self.compute_on(a, &ReorderExec::sequential())
    }

    fn compute_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<ReorderResult, SparseError> {
        let g = Graph::from_matrix(a)?;
        let order = self.dissection_order_on(&g, rx);
        Ok(ReorderResult {
            perm: Permutation::from_new_to_old(order)?,
            symmetric: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn grid_matrix(n: usize) -> CsrMatrix {
        let idx = |r: usize, c: usize| r * n + c;
        let mut coo = CooMatrix::new(n * n, n * n);
        for r in 0..n {
            for c in 0..n {
                let i = idx(r, c);
                coo.push(i, i, 4.0);
                if r + 1 < n {
                    coo.push_symmetric(i, idx(r + 1, c), -1.0);
                }
                if c + 1 < n {
                    coo.push_symmetric(i, idx(r, c + 1), -1.0);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn symbolic_fill(a: &CsrMatrix, perm: &Permutation) -> usize {
        let b = a.permute_symmetric(perm).unwrap();
        let n = b.nrows();
        let mut rows: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
        for (i, j, _) in b.iter() {
            if j > i {
                rows[i].insert(j);
            }
        }
        let mut fill = 0usize;
        for k in 0..n {
            let nbrs: Vec<usize> = rows[k].iter().copied().collect();
            for (x, &i) in nbrs.iter().enumerate() {
                for &j in &nbrs[x + 1..] {
                    if rows[i].insert(j) {
                        fill += 1;
                    }
                }
            }
        }
        fill
    }

    #[test]
    fn nd_is_a_valid_permutation() {
        let a = grid_matrix(12);
        let r = Nd::default().compute(&a).unwrap();
        assert_eq!(r.perm.len(), 144);
        assert!(r.symmetric);
        r.apply(&a).unwrap().validate().unwrap();
    }

    #[test]
    fn nd_reduces_fill_versus_natural_on_grid() {
        let a = grid_matrix(14);
        let natural = Permutation::identity(196);
        let nd = Nd::default().compute(&a).unwrap().perm;
        let fill_nat = symbolic_fill(&a, &natural);
        let fill_nd = symbolic_fill(&a, &nd);
        assert!(
            fill_nd < fill_nat,
            "ND fill {fill_nd} should beat natural {fill_nat}"
        );
    }

    #[test]
    fn nd_small_graph_falls_back_to_amd() {
        let a = grid_matrix(4); // 16 vertices < leaf_size
        let r = Nd::default().compute(&a).unwrap();
        assert_eq!(r.perm.len(), 16);
    }

    #[test]
    fn nd_deterministic() {
        let a = grid_matrix(10);
        let p1 = Nd::default().compute(&a).unwrap().perm;
        let p2 = Nd::default().compute(&a).unwrap().perm;
        assert_eq!(p1, p2);
    }

    #[test]
    fn nd_on_disconnected_graph() {
        // Two grids side by side with no coupling, plus isolated rows.
        let g = grid_matrix(6);
        let n = g.nrows();
        let mut coo = CooMatrix::new(2 * n + 3, 2 * n + 3);
        for (i, j, v) in g.iter() {
            coo.push(i, j, v);
            coo.push(n + i, n + j, v);
        }
        for k in 0..3 {
            coo.push(2 * n + k, 2 * n + k, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let r = Nd::default().compute(&a).unwrap();
        assert_eq!(r.perm.len(), 2 * n + 3);
        r.apply(&a).unwrap().validate().unwrap();
    }
}
