//! Gibbs–Poole–Stockmeyer (GPS) bandwidth/profile reduction \[12\] —
//! the second classic bandwidth-reducing ordering the paper's §2.1.1
//! cites alongside Cuthill–McKee.
//!
//! GPS improves on CM in two ways: it locates a *pseudo-diameter*
//! (a pair of vertices nearly realising the graph diameter) by
//! iterating the George–Liu procedure from both ends, and it numbers
//! vertices using a **combined level structure** built from the rooted
//! level structures of both endpoints, which tends to be narrower than
//! either one alone. Within the combined structure, levels are numbered
//! consecutively with CM's ascending-degree tie-breaking.
//!
//! This implementation follows the standard simplified GPS scheme:
//! vertices on which both level structures agree keep that level;
//! the remaining vertices are assigned greedily to the currently
//! narrower of their two candidate levels, processed component-wise in
//! descending component size (the order GPS prescribes).

use crate::component::{assemble_pieces, ComponentOrdering};
use crate::exec::{build_ordering_graph, ReorderExec};
use crate::traits::{ReorderAlgorithm, ReorderResult};
use sparsegraph::{bfs_levels_with, connected_components, pseudo_peripheral_vertex_with, Graph};
use sparsemat::{CsrMatrix, SparseError};
use team::Exec;

/// Gibbs–Poole–Stockmeyer reordering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gps {
    /// Reverse the final numbering (like RCM vs CM; reversal does not
    /// change bandwidth but typically improves profile/fill).
    pub reverse: bool,
}

impl Gps {
    /// Compute the GPS order of one connected component, returning the
    /// component's vertices in their new relative order.
    ///
    /// The two rooted level structures are built with
    /// [`bfs_levels_on`], so wide frontiers expand on `exec`'s lanes;
    /// the level structures — and therefore the combined numbering —
    /// are identical for every executor.
    fn component_order(g: &Graph, start: usize, exec: Exec<'_>, frontier_min: usize) -> Vec<u32> {
        // 1. Pseudo-diameter endpoints.
        let u = pseudo_peripheral_vertex_with(g, start, exec, frontier_min);
        let lu = bfs_levels_with(g, u, exec, frontier_min);
        let deepest = lu.levels.last().expect("nonempty component");
        let v = *deepest
            .iter()
            .min_by_key(|&&w| g.degree(w as usize))
            .expect("deepest level nonempty") as usize;
        let lv = bfs_levels_with(g, v, exec, frontier_min);
        let depth = lu.depth().max(lv.depth());

        // 2. Combined levels: vertex w gets candidate pair
        //    (l_u(w), depth - 1 - l_v(w)).
        let members: Vec<u32> = lu
            .levels
            .iter()
            .flat_map(|lvl| lvl.iter().copied())
            .collect();
        let mut level_of: std::collections::HashMap<u32, usize> = Default::default();
        let mut width = vec![0usize; depth];
        let mut undecided: Vec<u32> = Vec::new();
        for &w in &members {
            let a = lu.level_of[w as usize];
            let b = depth - 1 - lv.level_of[w as usize].min(depth - 1);
            if a == b {
                level_of.insert(w, a);
                width[a] += 1;
            } else {
                undecided.push(w);
            }
        }
        // Assign undecided vertices to the narrower of their candidates
        // (ties toward the l_u level), in BFS order for determinism.
        for &w in &undecided {
            let a = lu.level_of[w as usize];
            let b = depth - 1 - lv.level_of[w as usize].min(depth - 1);
            let pick = if width[b] < width[a] { b } else { a };
            level_of.insert(w, pick);
            width[pick] += 1;
        }

        // 3. Number level by level; within a level, vertices adjacent to
        //    already-numbered vertices first, ascending degree (the CM
        //    discipline applied to the combined structure).
        let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); depth];
        for &w in &members {
            by_level[level_of[&w]].push(w);
        }
        let mut order = Vec::with_capacity(members.len());
        let mut numbered = std::collections::HashSet::new();
        for level in &mut by_level {
            // Sort for determinism, then stable-partition by adjacency
            // to the previous level for locality.
            level.sort_unstable_by_key(|&w| (g.degree(w as usize), w));
            let (adj, rest): (Vec<u32>, Vec<u32>) = level.iter().partition(|&&w| {
                g.neighbors(w as usize)
                    .iter()
                    .any(|&n| numbered.contains(&n))
            });
            for &w in adj.iter().chain(rest.iter()) {
                order.push(w);
                numbered.insert(w);
            }
        }
        order
    }
}

impl ReorderAlgorithm for Gps {
    fn name(&self) -> &'static str {
        "GPS"
    }

    fn compute(&self, a: &CsrMatrix) -> Result<ReorderResult, SparseError> {
        self.compute_on(a, &ReorderExec::sequential())
    }

    fn compute_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<ReorderResult, SparseError> {
        let co = self
            .compute_components_on(a, rx)?
            .expect("GPS is component-structured");
        Ok(co.into_parts()?.0)
    }

    fn supports_components(&self) -> bool {
        true
    }

    /// One component's final GPS bytes: the combined-level numbering
    /// from the component's pseudo-diameter, reversed per piece when
    /// `reverse` is set (the global reversal decomposes into per-piece
    /// reversal plus reversed layout).
    fn order_component_on(
        &self,
        g: &Graph,
        comp: &[u32],
        rx: &ReorderExec<'_>,
    ) -> Option<Vec<u32>> {
        let mut piece = Gps::component_order(g, comp[0] as usize, rx.exec(), rx.frontier_min());
        if self.reverse {
            piece.reverse();
        }
        Some(piece)
    }

    /// GPS numbers components in descending size (ties broken by
    /// ascending key); the `reverse` flag flips the layout along with
    /// each piece.
    fn component_layout(&self, meta: &[(u32, usize)]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..meta.len()).collect();
        idx.sort_by_key(|&i| (std::cmp::Reverse(meta[i].1), meta[i].0));
        if self.reverse {
            idx.reverse();
        }
        idx
    }

    fn compute_components_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<Option<ComponentOrdering>, SparseError> {
        let g = build_ordering_graph(a, rx)?;
        let _span = rx.trace().span("reorder.levels");
        let comps = connected_components(&g);
        let mut pieces: Vec<(u32, Vec<u32>)> = Vec::with_capacity(comps.count());
        for comp in &comps.members {
            let mut piece =
                Gps::component_order(&g, comp[0] as usize, rx.exec(), rx.frontier_min());
            if self.reverse {
                piece.reverse();
            }
            pieces.push((comp[0], piece));
        }
        Ok(Some(assemble_pieces(self, pieces)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{CooMatrix, Permutation};

    fn bandwidth(a: &CsrMatrix) -> usize {
        a.iter().map(|(i, j, _)| i.abs_diff(j)).max().unwrap_or(0)
    }

    fn shuffled_band(n: usize, half_bw: usize, seed: u64) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(half_bw)..(i + half_bw + 1).min(n) {
                coo.push(i, j, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let p = Permutation::from_new_to_old(order).unwrap();
        a.permute_symmetric(&p).unwrap()
    }

    #[test]
    fn gps_recovers_band_structure() {
        let a = shuffled_band(300, 3, 9);
        assert!(bandwidth(&a) > 100);
        let r = Gps::default().compute(&a).unwrap();
        let b = r.apply(&a).unwrap();
        assert!(
            bandwidth(&b) <= 12,
            "GPS bandwidth {} on a half-bw 3 band",
            bandwidth(&b)
        );
    }

    #[test]
    fn gps_comparable_to_rcm_on_mesh() {
        // GPS's raison d'être: bandwidth no worse than ~CM's on meshes.
        let n = 20;
        let mut coo = CooMatrix::new(n * n, n * n);
        for r in 0..n {
            for c in 0..n {
                let i = r * n + c;
                coo.push(i, i, 4.0);
                if r + 1 < n {
                    coo.push_symmetric(i, i + n, -1.0);
                }
                if c + 1 < n {
                    coo.push_symmetric(i, i + 1, -1.0);
                }
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let gps = Gps::default().compute(&a).unwrap().apply(&a).unwrap();
        let rcm = crate::Rcm::default()
            .compute(&a)
            .unwrap()
            .apply(&a)
            .unwrap();
        assert!(
            bandwidth(&gps) <= 2 * bandwidth(&rcm),
            "GPS bandwidth {} vs RCM {}",
            bandwidth(&gps),
            bandwidth(&rcm)
        );
    }

    #[test]
    fn gps_valid_on_disconnected_graphs() {
        let mut coo = CooMatrix::new(10, 10);
        for i in 0..10 {
            coo.push(i, i, 1.0);
        }
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(2, 3, 1.0);
        coo.push_symmetric(3, 4, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let r = Gps::default().compute(&a).unwrap();
        assert_eq!(r.perm.len(), 10);
        r.apply(&a).unwrap().validate().unwrap();
        // Largest component (2-3-4) is numbered first.
        let first = r.perm.new_to_old(0);
        assert!(
            [2, 3, 4].contains(&first),
            "largest component should come first, got {first}"
        );
    }

    #[test]
    fn gps_reverse_flag() {
        let a = shuffled_band(60, 2, 4);
        let fwd = Gps::default().compute(&a).unwrap().perm;
        let rev = Gps { reverse: true }.compute(&a).unwrap().perm;
        for k in 0..60 {
            assert_eq!(fwd.new_to_old(k), rev.new_to_old(59 - k));
        }
    }

    #[test]
    fn parallel_gps_matches_sequential() {
        let a = shuffled_band(400, 3, 13);
        let seq = Gps::default().compute(&a).unwrap().perm;
        let registry = telemetry::Registry::new_arc();
        for lanes in [1usize, 2, 4] {
            let team = team::ThreadTeam::new_in(&registry, lanes);
            let par = Gps::default()
                .compute_on(&a, &ReorderExec::on_team(&team))
                .unwrap()
                .perm;
            assert_eq!(seq, par, "GPS diverged at {lanes} lanes");
        }
    }

    #[test]
    fn gps_deterministic() {
        let a = shuffled_band(150, 2, 5);
        assert_eq!(
            Gps::default().compute(&a).unwrap().perm,
            Gps::default().compute(&a).unwrap().perm
        );
    }
}
