//! Hypergraph partitioning (HP) reordering — PaToH-style column-net
//! partitioning with the cut-net metric (§3.3).
//!
//! Rows become vertices and columns become nets; the hypergraph is
//! partitioned into `num_parts` parts (the paper fixes 128-way
//! partitioning) with the cut-net objective and the same row-balance
//! criterion as GP. Rows and columns are then renumbered by grouping
//! parts, exactly as in GP; the permutation is applied symmetrically.

use crate::gp::partition_to_order;
use crate::traits::{ReorderAlgorithm, ReorderResult};
use partition::{partition_hypergraph, HypergraphPartitionConfig};
use sparsegraph::Hypergraph;
use sparsemat::{CsrMatrix, Permutation, SparseError};

/// Hypergraph-partitioning-based reordering.
#[derive(Debug, Clone)]
pub struct Hp {
    /// Partitioner configuration. The paper adopts 128-way partitioning
    /// with the cut-net metric.
    pub config: HypergraphPartitionConfig,
}

impl Hp {
    /// An HP reordering targeting `num_parts` parts (paper default: 128).
    pub fn new(num_parts: usize) -> Self {
        Hp {
            config: HypergraphPartitionConfig::k(num_parts),
        }
    }
}

impl ReorderAlgorithm for Hp {
    fn name(&self) -> &'static str {
        "HP"
    }

    fn compute(&self, a: &CsrMatrix) -> Result<ReorderResult, SparseError> {
        if !a.is_square() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let h = Hypergraph::column_net(a);
        let part_of = partition_hypergraph(&h, &self.config);
        let order = partition_to_order(&part_of, self.config.num_parts);
        Ok(ReorderResult {
            perm: Permutation::from_new_to_old(order)?,
            symmetric: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn banded(n: usize, half_bw: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(half_bw)..(i + half_bw + 1).min(n) {
                coo.push(i, j, 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn shuffle(a: &CsrMatrix, seed: u64) -> CsrMatrix {
        let n = a.nrows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let p = Permutation::from_new_to_old(order).unwrap();
        a.permute_symmetric(&p).unwrap()
    }

    fn offdiag_nnz(a: &CsrMatrix, t: usize) -> usize {
        let n = a.nrows();
        let block = n.div_ceil(t);
        a.iter().filter(|&(i, j, _)| i / block != j / block).count()
    }

    #[test]
    fn hp_produces_valid_symmetric_permutation() {
        let a = shuffle(&banded(200, 2), 5);
        let r = Hp::new(4).compute(&a).unwrap();
        assert!(r.symmetric);
        assert_eq!(r.perm.len(), 200);
        let b = r.apply(&a).unwrap();
        b.validate().unwrap();
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn hp_reduces_offdiagonal_nonzeros() {
        let a = shuffle(&banded(240, 2), 17);
        let t = 4;
        let before = offdiag_nnz(&a, t);
        let r = Hp::new(t).compute(&a).unwrap();
        let b = r.apply(&a).unwrap();
        let after = offdiag_nnz(&b, t);
        assert!(
            after < before,
            "HP should reduce off-diagonal nnz: {before} -> {after}"
        );
    }

    #[test]
    fn hp_rejects_rectangular() {
        let a = CsrMatrix::from_coo(&CooMatrix::new(3, 5));
        assert!(Hp::new(2).compute(&a).is_err());
    }

    #[test]
    fn hp_works_on_unsymmetric_patterns_without_symmetrisation() {
        // HP applies naturally to unsymmetric matrices (§3.3).
        let mut coo = CooMatrix::new(60, 60);
        for i in 0..60 {
            coo.push(i, i, 1.0);
            coo.push(i, (i * 7 + 3) % 60, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let r = Hp::new(4).compute(&a).unwrap();
        assert_eq!(r.perm.len(), 60);
        r.apply(&a).unwrap().validate().unwrap();
    }
}
