//! Approximate Minimum Degree (AMD) ordering, after Amestoy, Davis and
//! Duff \[1\], with round-based *multiple elimination* and parallel
//! quotient-graph updates after Chang, Buluç and Demmel.
//!
//! AMD simulates symbolic Cholesky elimination on a *quotient graph*: an
//! eliminated pivot is retained as an *element* whose variable list
//! stands for the clique its elimination would create. Instead of the
//! exact external degree (expensive to maintain), each variable carries
//! an upper bound that is cheap to update:
//!
//! ```text
//! d̄_v = min( n − k,
//!            d̄_v + |Lp \ v|,
//!            |A_v \ v| + |Lp \ v| + Σ_{e ∈ E_v, e ≠ p} |L_e \ Lp| )
//! ```
//!
//! The `|L_e \ Lp|` terms are computed for all relevant elements in a
//! single scan (the classic `w` array trick). Indistinguishable
//! variables (identical adjacency) are merged into supervariables via
//! hashing, and elements whose variable list is covered by the new
//! element are absorbed — including aggressive absorption of elements
//! that the scan discovers to be subsets of `Lp`.
//!
//! # Multiple elimination
//!
//! [`amd_order_on`] eliminates in *rounds*: each round pops every
//! supervariable within a degree slack of the current minimum off the
//! lazy-deletion heap, greedily keeps a maximal subset that is
//! pairwise **distance-2 independent** in the quotient graph (no two
//! pivots share a variable in their prospective element lists), then
//! eliminates the whole batch. Independence makes the `Lp` sets
//! pairwise disjoint, so the quotient-graph update — element
//! absorption, degree recomputation, supervariable merging — decomposes
//! into per-pivot work that writes disjoint state and can run on the
//! team executor. The update is phase-structured:
//!
//! 1. **U1** (parallel over pivots): `w` scan, adjacency pruning,
//!    subset-element absorption, approximate-degree recomputation for
//!    the pivot's own `Lp`;
//! 2. **U2** (parallel over pivots, after a barrier): supervariable
//!    hashing and merging within the pivot's own `Lp`;
//! 3. finalisation (sequential): element lists, heap repushes.
//!
//! Every parallel write targets state owned by exactly one pivot
//! (disjoint `Lp`s; an element absorbed in U1 is live-adjacent only to
//! its absorber's `Lp`, else it could not be a subset of it), and every
//! cross-pivot read is of round-start state no phase writes, so the
//! output is byte-identical across team sizes — and identical to the
//! sequential path, which walks the same phases pivot by pivot.
//!
//! Multiple elimination is a different (Liu's MMD-style) elimination
//! schedule than classic single-pivot AMD: once a batch is eliminated
//! together, later degree updates see the whole batch at once, so the
//! orderings of [`amd_order_on`] and [`amd_order_single`] legitimately
//! diverge. Both are deterministic; the round-based order is the
//! canonical one everywhere in this repo, and the single-elimination
//! path is retained as the overhead baseline for the scaling bench.

use crate::component::{assemble_pieces, ComponentOrdering};
use crate::exec::{build_ordering_graph, ReorderExec};
use crate::traits::{ReorderAlgorithm, ReorderResult};
use sparsegraph::{connected_components, Graph};
use sparsemat::{CsrMatrix, SparseError};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::{Duration, Instant};
use team::SliceWriter;
use telemetry::trace::ArgValue;

/// Default sequential-fallback threshold for a round's parallel
/// quotient-graph update: rounds whose combined `|Lp|` is below this
/// run inline even on a team (the per-pivot work is too small to repay
/// a dispatch). Tunable per context via
/// [`ReorderExec::with_amd_round_min`]; the ordering is identical for
/// every value.
pub const DEFAULT_AMD_ROUND_MIN: usize = 128;

/// Approximate minimum degree reordering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Amd {
    /// Disable aggressive element absorption (ablation knob; the
    /// default matches SuiteSparse AMD's behaviour of absorbing).
    pub no_aggressive_absorption: bool,
    /// Degree slack for multiple elimination: a round's candidate set
    /// is every supervariable within `round_slack` of the minimum
    /// degree. 0 (the default) restricts rounds to exact-minimum
    /// pivots; larger values make bigger rounds (more parallelism, a
    /// weaker greedy-minimum-degree guarantee).
    pub round_slack: i64,
}

/// Counters from one [`amd_order_on`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AmdStats {
    /// Elimination rounds performed.
    pub rounds: u64,
    /// Supervariable pivots eliminated (≤ n; merges shrink it).
    pub pivots: u64,
    /// Largest pivot batch eliminated in one round.
    pub max_round: u64,
    /// Rounds whose update phases ran on more than one lane. Depends
    /// on the executor and `amd_round_min` — unlike the ordering, which
    /// never does.
    pub parallel_rounds: u64,
    /// Stale entries discarded by the lazy-deletion heap.
    pub stale_pops: u64,
    /// Supervariable merges performed.
    pub merges: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// A live (super)variable.
    Live,
    /// An eliminated pivot retained as a quotient-graph element.
    Element,
    /// Absorbed element or variable merged into a supervariable.
    Dead,
}

/// Per-lane scratch for the `w` trick. Worker threads are persistent,
/// so thread-local reuse amortises the allocation; the stamp is
/// monotonic per thread, which keeps entries from unrelated pivots (or
/// unrelated calls) from aliasing.
struct LaneScratch {
    w: Vec<i64>,
    wstamp: Vec<u64>,
    stamp: u64,
}

thread_local! {
    static AMD_SCRATCH: RefCell<LaneScratch> = const {
        RefCell::new(LaneScratch { w: Vec::new(), wstamp: Vec::new(), stamp: 0 })
    };
}

/// Disjoint-commit windows over the quotient-graph state for the
/// parallel update phases. Safety contract: a lane may write only
/// state owned by its own pivot (its `Lp` members, and elements
/// live-adjacent exclusively to them) and may read anything no lane
/// writes this phase.
struct StateWriters<'a> {
    status: SliceWriter<'a, Status>,
    nv: SliceWriter<'a, i64>,
    degree: SliceWriter<'a, i64>,
    adj_var: SliceWriter<'a, Vec<u32>>,
    adj_el: SliceWriter<'a, Vec<u32>>,
    el_vars: SliceWriter<'a, Vec<u32>>,
    merged: SliceWriter<'a, Vec<u32>>,
}

impl StateWriters<'_> {
    /// # Safety
    /// `i`'s status must not be written by another lane this phase.
    unsafe fn status(&self, i: u32) -> Status {
        *self.status.get_ref(i as usize)
    }

    /// # Safety
    /// As [`StateWriters::status`].
    unsafe fn nv(&self, i: u32) -> i64 {
        *self.nv.get_ref(i as usize)
    }
}

/// Exclusive access to list `i` of a `Vec<u32>` state column.
///
/// # Safety
/// The calling lane must own `i` this phase (see [`StateWriters`]).
#[allow(clippy::mut_from_ref)] // same contract as `SliceWriter::slice_mut`
unsafe fn list_mut<'s>(w: &'s SliceWriter<'_, Vec<u32>>, i: u32) -> &'s mut Vec<u32> {
    let i = i as usize;
    &mut w.slice_mut(i..i + 1)[0]
}

/// Read-only, round-constant inputs shared by every lane of the
/// parallel update phases.
struct RoundCtx<'a> {
    n: usize,
    pivots: &'a [u32],
    /// Concatenated `Lp` member lists; pivot `pi` owns
    /// `lp_flat[lp_off[pi]..lp_off[pi + 1]]`.
    lp_flat: &'a [u32],
    lp_off: &'a [usize],
    /// Weighted `|Lp|` per pivot (round-start `nv`).
    lp_w: &'a [i64],
    el_size: &'a [i64],
    /// Round selection claims, packed `(round_stamp << 32) | owner`:
    /// `claim[u] >> 32 == round_stamp` means `u` is a pivot or a
    /// member of some pivot's `Lp`; the low word says whose. One load
    /// answers both questions on the pruning hot path.
    claim: &'a [u64],
    round_stamp: u64,
    /// `n` minus the total eliminated weight *including this round's
    /// whole batch* — the `n − k` term of the degree bound.
    remaining: i64,
    aggressive: bool,
    merges: &'a AtomicU64,
}

impl RoundCtx<'_> {
    fn lp(&self, pi: usize) -> &[u32] {
        &self.lp_flat[self.lp_off[pi]..self.lp_off[pi + 1]]
    }

    /// The packed claim value marking ownership by pivot `p` this
    /// round.
    fn claim_key(&self, p: u32) -> u64 {
        (self.round_stamp << 32) | p as u64
    }
}

/// U1 for pivot `pi`: the `w` scan, adjacency pruning, subset-element
/// absorption and approximate-degree recomputation for the pivot's own
/// `Lp` — the per-pivot body of the classic AMD update loop.
///
/// # Safety
///
/// `cx` must describe a distance-2 independent pivot batch (disjoint
/// `Lp`s) and at most one lane may run each `pi`. Writes then target
/// `Lp(pi)` members and elements live-adjacent only to them; reads of
/// other state (`status`, `nv`, `el_size`, element lists) see
/// round-start values no U1 lane writes.
unsafe fn update_pivot(ws: &StateWriters<'_>, cx: &RoundCtx<'_>, s: &mut LaneScratch, pi: usize) {
    let p = cx.pivots[pi];
    let lp = cx.lp(pi);
    let lp_weight = cx.lp_w[pi];
    let my_claim = cx.claim_key(p);
    if s.w.len() < cx.n {
        s.w.resize(cx.n, 0);
        s.wstamp.resize(cx.n, 0);
    }
    s.stamp += 1;
    let stamp = s.stamp;

    // w trick: |L_e \ Lp| for every live element touching Lp.
    // Lane-local w, so a boundary element adjacent to several
    // pivots' Lps gets an independent count per pivot.
    for &v in lp {
        for &e in list_mut(&ws.adj_el, v).iter() {
            if ws.status(e) != Status::Element {
                continue;
            }
            let eu = e as usize;
            if s.wstamp[eu] != stamp {
                s.wstamp[eu] = stamp;
                s.w[eu] = cx.el_size[eu];
            }
            s.w[eu] -= ws.nv(v);
        }
    }

    for &v in lp {
        // Prune A_v: drop dead variables and members of this
        // pivot's Lp (now covered by element p; p itself is an
        // element already, so the liveness test drops it too).
        // Members of *other* pivots' Lps stay, exactly as in a
        // sequential round walking pivot by pivot.
        let adj = list_mut(&ws.adj_var, v);
        adj.retain(|&u| ws.status(u) == Status::Live && cx.claim[u as usize] != my_claim);
        let mut a_v = 0i64;
        for &u in adj.iter() {
            a_v += ws.nv(u);
        }

        // Prune E_v, absorbing subset elements, and sum |L_e \ Lp|.
        let el = list_mut(&ws.adj_el, v);
        let old_els = std::mem::take(el);
        let mut new_els: Vec<u32> = Vec::with_capacity(old_els.len() + 1);
        new_els.push(p);
        let mut deg_els = 0i64;
        for &e in &old_els {
            if e == p || ws.status(e) != Status::Element {
                continue;
            }
            let eu = e as usize;
            let we = if s.wstamp[eu] == stamp {
                s.w[eu]
            } else {
                cx.el_size[eu]
            };
            if cx.aggressive && s.wstamp[eu] == stamp && we <= 0 {
                // L_e ⊆ Lp: aggressive absorption. Such an element
                // has live members only inside this pivot's Lp, so
                // no other lane can touch it this round.
                ws.status.slice_mut(eu..eu + 1)[0] = Status::Dead;
                *list_mut(&ws.el_vars, e) = Vec::new();
            } else {
                new_els.push(e);
                deg_els += we.max(0);
            }
        }
        *el = new_els;

        let nv_v = ws.nv(v);
        let lp_minus_v = lp_weight - nv_v;
        let old_degree = *ws.degree.get_ref(v as usize);
        let d_new = (old_degree + lp_minus_v)
            .min(a_v + lp_minus_v + deg_els)
            .min(cx.remaining - nv_v)
            .max(0);
        ws.degree.slice_mut(v as usize..v as usize + 1)[0] = d_new;
    }
}

/// U2 for pivot `pi`: supervariable detection by hashing within the
/// pivot's own `Lp`, merging indistinguishable members.
///
/// # Safety
///
/// As [`update_pivot`], and U1 must have completed on every pivot
/// (barrier): U2 reads the pruned, sorted-adjacency state U1 wrote and
/// writes `nv`/`status`/`merged` of its own `Lp` members only.
unsafe fn merge_pivot(ws: &StateWriters<'_>, cx: &RoundCtx<'_>, pi: usize) {
    let lp = cx.lp(pi);
    let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
    for &v in lp {
        if ws.status(v) != Status::Live {
            continue;
        }
        let adj = list_mut(&ws.adj_var, v);
        adj.sort_unstable();
        let el = list_mut(&ws.adj_el, v);
        el.sort_unstable();
        let mut h = 0xcbf29ce484222325u64;
        for &u in adj.iter() {
            h = (h ^ u as u64).wrapping_mul(0x100000001b3);
        }
        for &e in el.iter() {
            h = (h ^ (e as u64 | 1 << 32)).wrapping_mul(0x100000001b3);
        }
        buckets.entry(h).or_default().push(v);
    }
    // Buckets are disjoint, so their (HashMap-nondeterministic)
    // iteration order cannot affect the outcome; within a bucket the
    // earliest member in Lp order survives, deterministically.
    for bucket in buckets.values() {
        if bucket.len() < 2 {
            continue;
        }
        for bi in 0..bucket.len() {
            let i = bucket[bi];
            if ws.status(i) != Status::Live {
                continue;
            }
            for &j in &bucket[bi + 1..] {
                if ws.status(j) != Status::Live {
                    continue;
                }
                if list_mut(&ws.adj_var, i) == list_mut(&ws.adj_var, j)
                    && list_mut(&ws.adj_el, i) == list_mut(&ws.adj_el, j)
                {
                    // Merge j into i.
                    let nv_j = ws.nv(j);
                    ws.nv.slice_mut(i as usize..i as usize + 1)[0] += nv_j;
                    ws.nv.slice_mut(j as usize..j as usize + 1)[0] = 0;
                    ws.status.slice_mut(j as usize..j as usize + 1)[0] = Status::Dead;
                    *list_mut(&ws.adj_var, j) = Vec::new();
                    *list_mut(&ws.adj_el, j) = Vec::new();
                    let children = std::mem::take(list_mut(&ws.merged, j));
                    let into = list_mut(&ws.merged, i);
                    into.extend(children);
                    into.push(j);
                    cx.merges.fetch_add(1, AtomicOrdering::Relaxed);
                }
            }
        }
    }
}

/// Is heap entry `(d, v, t)` the live, current one for `v`?
fn entry_fresh(status: &[Status], degree: &[i64], token: &[u64], d: i64, v: u32, t: u64) -> bool {
    let vu = v as usize;
    status[vu] == Status::Live && t == token[vu] && d == degree[vu]
}

/// Compute the AMD elimination order of a symmetric graph by
/// round-based multiple elimination on the given execution context.
/// Returns the order vector (`order[k]` = original vertex eliminated
/// k-th) and the run's counters.
///
/// The ordering is a pure function of `(g, aggressive, slack)` —
/// byte-identical for every executor, team size and `amd_round_min`.
/// When the context's trace is recording, three aggregate sub-stage
/// spans (`reorder.amd.select` / `.eliminate` / `.update`) report
/// where the call's time went.
pub fn amd_order_on(
    g: &Graph,
    aggressive: bool,
    slack: i64,
    rx: &ReorderExec<'_>,
) -> (Vec<u32>, AmdStats) {
    let t_start = rx.trace().is_recording().then(Instant::now);
    let n = g.num_vertices();
    let mut status = vec![Status::Live; n];
    let mut nv = vec![1i64; n];
    let mut adj_var: Vec<Vec<u32>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
    let mut adj_el: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut el_vars: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut el_size = vec![0i64; n];
    let mut degree: Vec<i64> = (0..n).map(|v| g.degree(v) as i64).collect();
    let mut merged: Vec<Vec<u32>> = vec![Vec::new(); n];

    // Lazy-deletion heap: at most one *fresh* entry per variable,
    // identified by its token; anything else pops as stale.
    let mut token = vec![0u64; n];
    let mut pushed_degree = degree.clone();
    let mut heap: BinaryHeap<Reverse<(i64, u32, u64)>> = (0..n)
        .map(|v| Reverse((degree[v], v as u32, 0u64)))
        .collect();

    // Round-selection claims (see RoundCtx) and the round each
    // variable's fresh heap entry was last consumed in.
    let mut claim = vec![0u64; n];
    let mut popped = vec![0u64; n];
    let mut round_stamp = 0u64;
    // Scratch for inline (non-dispatched) update rounds; parallel
    // rounds use each lane's thread-local scratch instead.
    let mut seq_scratch = LaneScratch {
        w: Vec::new(),
        wstamp: Vec::new(),
        stamp: 0,
    };

    let exec = rx.exec();
    let round_min = rx.amd_round_min();
    let merges = AtomicU64::new(0);
    let mut eliminated_weight = 0i64;
    let mut elim_order: Vec<u32> = Vec::with_capacity(n);
    let mut stats = AmdStats::default();
    let (mut t_select, mut t_eliminate, mut t_update) =
        (Duration::ZERO, Duration::ZERO, Duration::ZERO);

    // Per-round buffers, reused across rounds.
    let mut candidates: Vec<(i64, u32)> = Vec::new();
    let mut rejected: Vec<(i64, u32)> = Vec::new();
    let mut pivots: Vec<u32> = Vec::new();
    let mut lp_flat: Vec<u32> = Vec::new();
    let mut lp_off: Vec<usize> = Vec::new();
    let mut lp_w: Vec<i64> = Vec::new();

    loop {
        // --- Select: candidates within `slack` of the minimum degree,
        // thinned to a maximal distance-2 independent set in heap
        // (degree, id) order — the canonical order the whole algorithm
        // inherits its determinism from. ---
        let t0 = t_start.map(|_| Instant::now());
        round_stamp += 1;
        candidates.clear();
        rejected.clear();
        pivots.clear();
        lp_flat.clear();
        lp_off.clear();
        lp_off.push(0);
        lp_w.clear();

        let d_min = loop {
            match heap.pop() {
                None => break None,
                Some(Reverse((d, v, t))) => {
                    if entry_fresh(&status, &degree, &token, d, v, t) {
                        candidates.push((d, v));
                        break Some(d);
                    }
                    stats.stale_pops += 1;
                }
            }
        };
        let Some(d_min) = d_min else {
            if let Some(t0v) = t0 {
                t_select += t0v.elapsed();
            }
            break;
        };
        while let Some(&Reverse((d, v, t))) = heap.peek() {
            if !entry_fresh(&status, &degree, &token, d, v, t) {
                heap.pop();
                stats.stale_pops += 1;
                continue;
            }
            if d > d_min + slack {
                break;
            }
            heap.pop();
            candidates.push((d, v));
        }

        for &(d, v) in &candidates {
            let vu = v as usize;
            popped[vu] = round_stamp;
            // Already claimed by an earlier pivot's Lp this round.
            if claim[vu] >> 32 == round_stamp {
                rejected.push((d, v));
                continue;
            }
            // One fused scan over v's reach: claim vertices as they
            // are discovered, and on the first vertex an *earlier*
            // pivot already claimed (low word differs) stop and roll
            // the tentative claims back. Claims left behind and the
            // lp_flat push order are exactly those of a separate
            // check-then-commit pass, at half the scan cost.
            let lp_start = lp_flat.len();
            let my_claim = (round_stamp << 32) | v as u64;
            claim[vu] = my_claim;
            let conflict = 'scan: {
                for &u in &adj_var[vu] {
                    let uu = u as usize;
                    if status[uu] != Status::Live {
                        continue;
                    }
                    if claim[uu] >> 32 == round_stamp {
                        if claim[uu] != my_claim {
                            break 'scan true;
                        }
                    } else {
                        claim[uu] = my_claim;
                        lp_flat.push(u);
                    }
                }
                for &e in &adj_el[vu] {
                    if status[e as usize] != Status::Element {
                        continue;
                    }
                    for &u in &el_vars[e as usize] {
                        let uu = u as usize;
                        if status[uu] != Status::Live {
                            continue;
                        }
                        if claim[uu] >> 32 == round_stamp {
                            if claim[uu] != my_claim {
                                break 'scan true;
                            }
                        } else {
                            claim[uu] = my_claim;
                            lp_flat.push(u);
                        }
                    }
                }
                false
            };
            if conflict {
                // Tentative claims were only placed on previously
                // unclaimed vertices, so zeroing them restores the
                // pre-scan state (stamps are compared by equality).
                claim[vu] = 0;
                for &u in &lp_flat[lp_start..] {
                    claim[u as usize] = 0;
                }
                lp_flat.truncate(lp_start);
                rejected.push((d, v));
                continue;
            }
            pivots.push(v);
            lp_off.push(lp_flat.len());
        }
        if let Some(t0v) = t0 {
            t_select += t0v.elapsed();
        }

        // --- Eliminate the batch in canonical order: absorb each
        // pivot's elements into it and convert it to an element. ---
        let t1 = t_start.map(|_| Instant::now());
        for (pi, &p) in pivots.iter().enumerate() {
            let pu = p as usize;
            for e in std::mem::take(&mut adj_el[pu]) {
                let eu = e as usize;
                if status[eu] == Status::Element {
                    status[eu] = Status::Dead;
                    el_vars[eu] = Vec::new();
                }
            }
            adj_var[pu] = Vec::new();
            status[pu] = Status::Element;
            eliminated_weight += nv[pu];
            lp_w.push(
                lp_flat[lp_off[pi]..lp_off[pi + 1]]
                    .iter()
                    .map(|&v| nv[v as usize])
                    .sum(),
            );
        }
        let remaining = n as i64 - eliminated_weight;
        if let Some(t1v) = t1 {
            t_eliminate += t1v.elapsed();
        }

        // --- Update, parallel over pivots (disjoint Lps). Tiny rounds
        // stay inline: below `amd_round_min` affected variables the
        // dispatch would cost more than the work. ---
        let t2 = t_start.map(|_| Instant::now());
        let parallel = exec.lanes() > 1 && pivots.len() > 1 && lp_flat.len() >= round_min;
        if parallel {
            stats.parallel_rounds += 1;
        }
        {
            let writers = StateWriters {
                status: SliceWriter::new(&mut status),
                nv: SliceWriter::new(&mut nv),
                degree: SliceWriter::new(&mut degree),
                adj_var: SliceWriter::new(&mut adj_var),
                adj_el: SliceWriter::new(&mut adj_el),
                el_vars: SliceWriter::new(&mut el_vars),
                merged: SliceWriter::new(&mut merged),
            };
            let cx = RoundCtx {
                n,
                pivots: &pivots,
                lp_flat: &lp_flat,
                lp_off: &lp_off,
                lp_w: &lp_w,
                el_size: &el_size,
                claim: &claim,
                round_stamp,
                remaining,
                aggressive,
                merges: &merges,
            };
            // SAFETY: the pivots are distance-2 independent, so their
            // Lps are pairwise disjoint and each parallel body writes
            // only state its pivot owns (see update_pivot/merge_pivot);
            // parallel_for hands each pivot index to exactly one lane,
            // and the barrier between the two loops orders U1's writes
            // before U2's reads.
            if parallel {
                exec.parallel_for(pivots.len(), 1, |range| {
                    AMD_SCRATCH.with(|cell| {
                        let s = &mut *cell.borrow_mut();
                        for pi in range {
                            unsafe { update_pivot(&writers, &cx, s, pi) };
                        }
                    });
                });
                exec.parallel_for(pivots.len(), 1, |range| {
                    for pi in range {
                        unsafe { merge_pivot(&writers, &cx, pi) };
                    }
                });
            } else {
                for pi in 0..pivots.len() {
                    unsafe { update_pivot(&writers, &cx, &mut seq_scratch, pi) };
                }
                for pi in 0..pivots.len() {
                    unsafe { merge_pivot(&writers, &cx, pi) };
                }
            }
        }

        // Finalise each new element's variable list from the
        // post-merge survivors, and repair the heap: restore untouched
        // rejected candidates, repush Lp members whose degree changed
        // or whose fresh entry this round consumed.
        for (pi, &p) in pivots.iter().enumerate() {
            let pu = p as usize;
            let members = &lp_flat[lp_off[pi]..lp_off[pi + 1]];
            let mut live_lp: Vec<u32> = Vec::with_capacity(members.len());
            let mut size = 0i64;
            for &v in members {
                if status[v as usize] == Status::Live {
                    live_lp.push(v);
                    size += nv[v as usize];
                }
            }
            el_size[pu] = size;
            el_vars[pu] = live_lp;
            elim_order.push(p);
        }
        for &(d, v) in &rejected {
            if claim[v as usize] >> 32 != round_stamp {
                // Untouched by the round: degree unchanged, fresh
                // token still current — restore the consumed entry.
                heap.push(Reverse((d, v, token[v as usize])));
            }
        }
        for &v in &lp_flat {
            let vu = v as usize;
            if status[vu] != Status::Live {
                continue;
            }
            if degree[vu] != pushed_degree[vu] || popped[vu] == round_stamp {
                token[vu] += 1;
                pushed_degree[vu] = degree[vu];
                heap.push(Reverse((degree[vu], v, token[vu])));
            }
        }
        stats.rounds += 1;
        stats.pivots += pivots.len() as u64;
        stats.max_round = stats.max_round.max(pivots.len() as u64);
        if let Some(t2v) = t2 {
            t_update += t2v.elapsed();
        }
    }
    stats.merges = merges.load(AtomicOrdering::Relaxed);
    if stats.stale_pops > 0 {
        telemetry::Registry::global()
            .counter("reorder.amd.stale_pops")
            .add(stats.stale_pops);
    }

    // Expand supervariables into the final order: each pivot emits its
    // merged members first (they are indistinguishable, so relative
    // order does not matter), then itself.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    for &p in &elim_order {
        for &m in &merged[p as usize] {
            order.push(m);
        }
        order.push(p);
    }
    debug_assert_eq!(order.len(), n);

    if let Some(t0) = t_start {
        // Three aggregate spans per call (not per round — a bounded
        // flight recorder cannot hold thousands of round spans), laid
        // end to end from the call's start by accumulated phase time.
        let sel_end = t0 + t_select;
        let elim_end = sel_end + t_eliminate;
        let upd_end = elim_end + t_update;
        let tr = rx.trace();
        tr.complete(
            "reorder.amd.select",
            t0,
            sel_end,
            vec![
                ("rounds", ArgValue::U64(stats.rounds)),
                ("stale_pops", ArgValue::U64(stats.stale_pops)),
            ],
        );
        tr.complete(
            "reorder.amd.eliminate",
            sel_end,
            elim_end,
            vec![
                ("pivots", ArgValue::U64(stats.pivots)),
                ("max_round", ArgValue::U64(stats.max_round)),
            ],
        );
        tr.complete(
            "reorder.amd.update",
            elim_end,
            upd_end,
            vec![
                ("parallel_rounds", ArgValue::U64(stats.parallel_rounds)),
                ("merges", ArgValue::U64(stats.merges)),
            ],
        );
    }
    (order, stats)
}

/// Compute the AMD elimination order of a symmetric graph (round-based
/// multiple elimination, inline, zero degree slack). Returns the order
/// vector (`order[k]` = original vertex eliminated k-th).
pub fn amd_order(g: &Graph, aggressive: bool) -> Vec<u32> {
    amd_order_on(g, aggressive, 0, &ReorderExec::sequential()).0
}

struct AmdState {
    status: Vec<Status>,
    /// Supervariable weight: number of original columns represented.
    nv: Vec<i64>,
    /// Variable neighbours of each live variable.
    adj_var: Vec<Vec<u32>>,
    /// Element neighbours of each live variable.
    adj_el: Vec<Vec<u32>>,
    /// Variable list of each element.
    el_vars: Vec<Vec<u32>>,
    /// Weighted |L_e| of each element (approximate: not decremented on
    /// merges, as in reference AMD).
    el_size: Vec<i64>,
    /// Approximate external degree of each live variable.
    degree: Vec<i64>,
    /// Children merged into each supervariable (for order expansion).
    merged: Vec<Vec<u32>>,
}

impl AmdState {
    #[inline]
    fn is_live_var(&self, v: u32) -> bool {
        self.status[v as usize] == Status::Live
    }

    #[inline]
    fn is_live_el(&self, e: u32) -> bool {
        self.status[e as usize] == Status::Element
    }
}

/// Classic single-pivot AMD (one supervariable eliminated per heap
/// pop), with the same lazy-deletion heap as [`amd_order_on`]. Returns
/// the order and the stale-pop count.
///
/// Retained as the reference implementation the scaling bench measures
/// round-based elimination's sequential overhead against; the pipeline
/// itself always orders via [`amd_order_on`].
pub fn amd_order_single(g: &Graph, aggressive: bool) -> (Vec<u32>, u64) {
    let n = g.num_vertices();
    let mut st = AmdState {
        status: vec![Status::Live; n],
        nv: vec![1i64; n],
        adj_var: (0..n).map(|v| g.neighbors(v).to_vec()).collect(),
        adj_el: vec![Vec::new(); n],
        el_vars: vec![Vec::new(); n],
        el_size: vec![0i64; n],
        degree: (0..n).map(|v| g.degree(v) as i64).collect(),
        merged: vec![Vec::new(); n],
    };

    let mut token = vec![0u64; n];
    let mut pushed_degree = st.degree.clone();
    let mut heap: BinaryHeap<Reverse<(i64, u32, u64)>> = (0..n)
        .map(|v| Reverse((st.degree[v], v as u32, 0u64)))
        .collect();
    let mut stale_pops = 0u64;

    // Scratch arrays reused across iterations.
    let mut mark = vec![0u64; n];
    let mut w = vec![0i64; n];
    let mut wstamp = vec![0u64; n];
    let mut stamp = 0u64;
    let mut eliminated_weight = 0i64;
    let mut elim_order: Vec<u32> = Vec::with_capacity(n);

    while let Some(Reverse((d, p, t))) = heap.pop() {
        let pu = p as usize;
        if !st.is_live_var(p) || t != token[pu] || d != st.degree[pu] {
            stale_pops += 1;
            continue;
        }

        // --- Form the new element Lp. ---
        stamp += 1;
        mark[pu] = stamp;
        let mut lp: Vec<u32> = Vec::new();
        for &u in &st.adj_var[pu] {
            if st.is_live_var(u) && mark[u as usize] != stamp {
                mark[u as usize] = stamp;
                lp.push(u);
            }
        }
        let adj_els = std::mem::take(&mut st.adj_el[pu]);
        for &e in &adj_els {
            if !st.is_live_el(e) {
                continue;
            }
            for &u in &st.el_vars[e as usize] {
                if st.is_live_var(u) && mark[u as usize] != stamp {
                    mark[u as usize] = stamp;
                    lp.push(u);
                }
            }
            // The element is absorbed into p.
            st.status[e as usize] = Status::Dead;
            st.el_vars[e as usize] = Vec::new();
        }
        let lp_weight: i64 = lp.iter().map(|&v| st.nv[v as usize]).sum();

        // --- w trick: |L_e \ Lp| for every element touching Lp. ---
        for &v in &lp {
            for &e in &st.adj_el[v as usize] {
                if !st.is_live_el(e) {
                    continue;
                }
                let eu = e as usize;
                if wstamp[eu] != stamp {
                    wstamp[eu] = stamp;
                    w[eu] = st.el_size[eu];
                }
                w[eu] -= st.nv[v as usize];
            }
        }

        // --- Update every variable in Lp. ---
        let remaining = (n as i64) - eliminated_weight - st.nv[pu];
        for &v in &lp {
            let vu = v as usize;
            // Prune A_v: drop dead variables, members of Lp (now covered
            // by element p) and p itself.
            let mut pruned = std::mem::take(&mut st.adj_var[vu]);
            pruned.retain(|&u| st.is_live_var(u) && mark[u as usize] != stamp && u != p);
            st.adj_var[vu] = pruned;
            // Prune E_v, absorbing subset elements, and sum |L_e \ Lp|.
            let mut deg_els = 0i64;
            let old_els = std::mem::take(&mut st.adj_el[vu]);
            let mut new_els: Vec<u32> = Vec::with_capacity(old_els.len() + 1);
            new_els.push(p);
            for &e in &old_els {
                if !st.is_live_el(e) || e == p {
                    continue;
                }
                let eu = e as usize;
                let we = if wstamp[eu] == stamp {
                    w[eu]
                } else {
                    st.el_size[eu]
                };
                if aggressive && wstamp[eu] == stamp && we <= 0 {
                    // L_e ⊆ Lp: aggressive absorption.
                    st.status[eu] = Status::Dead;
                    st.el_vars[eu] = Vec::new();
                } else {
                    new_els.push(e);
                    deg_els += we.max(0);
                }
            }
            st.adj_el[vu] = new_els;

            let a_v: i64 = st.adj_var[vu].iter().map(|&u| st.nv[u as usize]).sum();
            let lp_minus_v = lp_weight - st.nv[vu];
            let d_new = (st.degree[vu] + lp_minus_v)
                .min(a_v + lp_minus_v + deg_els)
                .min(remaining - st.nv[vu])
                .max(0);
            st.degree[vu] = d_new;
        }

        // --- Supervariable detection by hashing. ---
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for &v in &lp {
            if !st.is_live_var(v) {
                continue;
            }
            let vu = v as usize;
            st.adj_var[vu].sort_unstable();
            st.adj_el[vu].sort_unstable();
            let mut h = 0xcbf29ce484222325u64;
            for &u in &st.adj_var[vu] {
                h = (h ^ u as u64).wrapping_mul(0x100000001b3);
            }
            for &e in &st.adj_el[vu] {
                h = (h ^ (e as u64 | 1 << 32)).wrapping_mul(0x100000001b3);
            }
            buckets.entry(h).or_default().push(v);
        }
        for (_, bucket) in buckets {
            if bucket.len() < 2 {
                continue;
            }
            for bi in 0..bucket.len() {
                let i = bucket[bi];
                if !st.is_live_var(i) {
                    continue;
                }
                for bj in (bi + 1)..bucket.len() {
                    let j = bucket[bj];
                    if !st.is_live_var(j) {
                        continue;
                    }
                    let (iu, ju) = (i as usize, j as usize);
                    if st.adj_var[iu] == st.adj_var[ju] && st.adj_el[iu] == st.adj_el[ju] {
                        // Merge j into i.
                        st.nv[iu] += st.nv[ju];
                        st.nv[ju] = 0;
                        st.status[ju] = Status::Dead;
                        st.adj_var[ju] = Vec::new();
                        st.adj_el[ju] = Vec::new();
                        let children = std::mem::take(&mut st.merged[ju]);
                        st.merged[iu].extend(children);
                        st.merged[iu].push(j);
                    }
                }
            }
        }

        // --- Convert p into an element. ---
        eliminated_weight += st.nv[pu];
        st.status[pu] = Status::Element;
        let live_lp: Vec<u32> = lp.iter().copied().filter(|&v| st.is_live_var(v)).collect();
        st.el_size[pu] = live_lp.iter().map(|&v| st.nv[v as usize]).sum();
        st.el_vars[pu] = live_lp;
        st.adj_var[pu] = Vec::new();
        elim_order.push(p);

        // Re-queue only genuinely updated degrees: lazy deletion keeps
        // one fresh (token-matched) entry per variable instead of one
        // entry per update.
        for &v in &lp {
            let vu = v as usize;
            if st.is_live_var(v) && st.degree[vu] != pushed_degree[vu] {
                token[vu] += 1;
                pushed_degree[vu] = st.degree[vu];
                heap.push(Reverse((st.degree[vu], v, token[vu])));
            }
        }
    }

    // Expand supervariables into the final order: each pivot emits its
    // merged members first (they are indistinguishable, so relative
    // order does not matter), then itself.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    for &p in &elim_order {
        for &m in &st.merged[p as usize] {
            order.push(m);
        }
        order.push(p);
    }
    debug_assert_eq!(order.len(), n);
    (order, stale_pops)
}

impl ReorderAlgorithm for Amd {
    fn name(&self) -> &'static str {
        "AMD"
    }

    fn compute(&self, a: &CsrMatrix) -> Result<ReorderResult, SparseError> {
        self.compute_on(a, &ReorderExec::sequential())
    }

    fn compute_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<ReorderResult, SparseError> {
        let co = self
            .compute_components_on(a, rx)?
            .expect("AMD is component-structured");
        Ok(co.into_parts()?.0)
    }

    fn supports_components(&self) -> bool {
        true
    }

    /// One component's AMD bytes: the elimination order of the
    /// vertex-induced subgraph, mapped back to global ids. Local
    /// indexing follows `comp`'s ascending order, so the tie-breaking
    /// inside the quotient-graph heap is a pure function of the
    /// component — independent of what the rest of the graph looks
    /// like, of the executor, and of the team size.
    fn order_component_on(
        &self,
        g: &Graph,
        comp: &[u32],
        rx: &ReorderExec<'_>,
    ) -> Option<Vec<u32>> {
        let aggressive = !self.no_aggressive_absorption;
        if comp.len() == g.num_vertices() {
            // Single component: the subgraph is the graph itself.
            return Some(amd_order_on(g, aggressive, self.round_slack, rx).0);
        }
        let (sub, local_to_global) = g.subgraph(comp);
        let local = amd_order_on(&sub, aggressive, self.round_slack, rx).0;
        Some(local.iter().map(|&l| local_to_global[l as usize]).collect())
    }

    fn compute_components_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<Option<ComponentOrdering>, SparseError> {
        let g = build_ordering_graph(a, rx)?;
        let comps = connected_components(&g);
        let mut pieces: Vec<(u32, Vec<u32>)> = Vec::with_capacity(comps.count());
        for comp in &comps.members {
            let mut sorted = comp.clone();
            sorted.sort_unstable();
            let piece = self
                .order_component_on(&g, &sorted, rx)
                .expect("AMD orders any component");
            pieces.push((sorted[0], piece));
        }
        Ok(Some(assemble_pieces(self, pieces)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{CooMatrix, Permutation};
    use team::ThreadTeam;

    fn grid_matrix(n: usize) -> CsrMatrix {
        // 5-point Laplacian on an n x n grid.
        let idx = |r: usize, c: usize| r * n + c;
        let mut coo = CooMatrix::new(n * n, n * n);
        for r in 0..n {
            for c in 0..n {
                let i = idx(r, c);
                coo.push(i, i, 4.0);
                if r + 1 < n {
                    coo.push_symmetric(i, idx(r + 1, c), -1.0);
                }
                if c + 1 < n {
                    coo.push_symmetric(i, idx(r, c + 1), -1.0);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Exact fill-in of Cholesky under a given order, by naive symbolic
    /// elimination (test oracle; O(n * fill)).
    fn symbolic_fill(a: &CsrMatrix, perm: &Permutation) -> usize {
        let b = a.permute_symmetric(perm).unwrap();
        let n = b.nrows();
        let mut rows: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
        for (i, j, _) in b.iter() {
            if j > i {
                rows[i].insert(j);
            }
        }
        let mut fill = 0usize;
        for k in 0..n {
            let nbrs: Vec<usize> = rows[k].iter().copied().collect();
            for (x, &i) in nbrs.iter().enumerate() {
                for &j in &nbrs[x + 1..] {
                    if rows[i].insert(j) {
                        fill += 1;
                    }
                }
            }
        }
        fill
    }

    #[test]
    fn amd_is_a_valid_permutation() {
        let a = grid_matrix(8);
        let r = Amd::default().compute(&a).unwrap();
        assert_eq!(r.perm.len(), 64);
        assert!(r.symmetric);
        r.apply(&a).unwrap().validate().unwrap();
    }

    #[test]
    fn amd_reduces_fill_versus_natural_order_on_grid() {
        let a = grid_matrix(10);
        let natural = Permutation::identity(100);
        let amd = Amd::default().compute(&a).unwrap().perm;
        let fill_nat = symbolic_fill(&a, &natural);
        let fill_amd = symbolic_fill(&a, &amd);
        assert!(
            fill_amd < fill_nat,
            "AMD fill {fill_amd} should beat natural {fill_nat}"
        );
    }

    #[test]
    fn amd_orders_tree_with_zero_fill() {
        // A path graph (tree) admits a perfect (zero-fill) elimination
        // order; minimum degree finds one — and multiple elimination
        // peels both leaves per round without changing that.
        let n = 60;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
        }
        for i in 0..n - 1 {
            coo.push_symmetric(i, i + 1, -1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let perm = Amd::default().compute(&a).unwrap().perm;
        assert_eq!(
            symbolic_fill(&a, &perm),
            0,
            "trees must factor without fill"
        );
    }

    #[test]
    fn amd_handles_dense_row() {
        // Arrow matrix: hub must be eliminated last.
        let n = 20;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        for i in 1..n {
            coo.push_symmetric(0, i, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let perm = Amd::default().compute(&a).unwrap().perm;
        // The hub stays at maximum degree until only one leaf remains
        // (where it ties at degree 1), so it must land in the last two
        // positions; either way the elimination is fill-free.
        assert!(
            perm.old_to_new(0) >= n - 2,
            "the dense hub should be ordered (nearly) last, got position {}",
            perm.old_to_new(0)
        );
        assert_eq!(symbolic_fill(&a, &perm), 0);
    }

    #[test]
    fn amd_without_aggressive_absorption_still_valid() {
        let a = grid_matrix(6);
        let r = Amd {
            no_aggressive_absorption: true,
            ..Amd::default()
        }
        .compute(&a)
        .unwrap();
        assert_eq!(r.perm.len(), 36);
        r.apply(&a).unwrap().validate().unwrap();
    }

    #[test]
    fn amd_merges_indistinguishable_vertices() {
        // A clique: all vertices are indistinguishable; the order is
        // still a valid permutation and fill is zero.
        let n = 10;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                coo.push(i, j, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let perm = Amd::default().compute(&a).unwrap().perm;
        assert_eq!(perm.len(), n);
        assert_eq!(symbolic_fill(&a, &perm), 0, "a clique has no fill");
    }

    #[test]
    fn amd_on_disconnected_graph() {
        let mut coo = CooMatrix::new(7, 7);
        for i in 0..7 {
            coo.push(i, i, 1.0);
        }
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(2, 3, 1.0);
        // 4, 5, 6 isolated.
        let a = CsrMatrix::from_coo(&coo);
        let perm = Amd::default().compute(&a).unwrap().perm;
        assert_eq!(perm.len(), 7);
    }

    #[test]
    fn amd_round_structure_on_dense_row_with_merges() {
        // Double-arrow graph: two hubs sharing every leaf, so all
        // leaves are indistinguishable from round 1. Distance-2
        // independence forces rounds of size 1 among the leaves (they
        // all share the hubs), the leaf supervariable collapses via
        // merging, and the hubs go last. Exercises selection conflicts,
        // merging inside a round, and element absorption together.
        let n = 16;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        for i in 2..n {
            coo.push_symmetric(0, i, 1.0);
            coo.push_symmetric(1, i, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let g = Graph::from_matrix(&a).unwrap();
        let (order, stats) = amd_order_on(&g, true, 0, &ReorderExec::sequential());
        // Valid permutation covering every vertex.
        let mut seen = vec![false; n];
        for &v in &order {
            assert!(!seen[v as usize], "vertex {v} emitted twice");
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some vertex missing");
        // The hub supervariable goes (nearly) last: its degree stays
        // maximal until the weighted n−k bound (remaining weight minus
        // its own nv of 2) ties it with the last two leaves — so both
        // hubs land within the final four positions.
        let pos = |v: u32| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) >= n - 4, "hub 0 at position {}", pos(0));
        assert!(pos(1) >= n - 4, "hub 1 at position {}", pos(1));
        assert!(stats.merges > 0, "identical leaves must merge: {stats:?}");
        assert!(stats.rounds >= 2, "hubs need a later round: {stats:?}");
        assert_eq!(stats.max_round, 1, "shared hubs forbid parallel pivots");
        // The leaves collapse into one supervariable, so far fewer
        // elimination steps than vertices.
        assert!(stats.pivots < n as u64, "merging must shrink pivot count");
    }

    #[test]
    fn amd_round_based_matches_across_team_sizes_and_slack() {
        let a = grid_matrix(12);
        let g = Graph::from_matrix(&a).unwrap();
        for slack in [0i64, 2] {
            let (seq, _) = amd_order_on(&g, true, slack, &ReorderExec::sequential());
            for size in [2usize, 4, 8] {
                let team = ThreadTeam::new_in(&telemetry::Registry::new_arc(), size);
                // amd_round_min 0: force the parallel path even on
                // tiny rounds so the test exercises it.
                let rx = ReorderExec::on_team(&team).with_amd_round_min(0);
                let (par, stats) = amd_order_on(&g, true, slack, &rx);
                assert_eq!(seq, par, "team size {size}, slack {slack}");
                assert!(
                    stats.parallel_rounds > 0,
                    "grid rounds must hit the parallel path (size {size})"
                );
            }
        }
    }

    #[test]
    fn amd_single_elimination_reference_still_valid() {
        let a = grid_matrix(10);
        let g = Graph::from_matrix(&a).unwrap();
        let (order, stale) = amd_order_single(&g, true);
        let perm = Permutation::from_new_to_old(order).unwrap();
        assert_eq!(perm.len(), 100);
        let fill_nat = symbolic_fill(&a, &Permutation::identity(100));
        let fill_amd = symbolic_fill(&a, &perm);
        assert!(fill_amd < fill_nat);
        // Lazy deletion on a grid discards stale entries instead of
        // re-eliminating; the counter must see them.
        assert!(stale > 0, "grid updates must produce stale heap entries");
    }

    #[test]
    fn amd_stats_are_deterministic_and_stale_pops_counted() {
        let a = grid_matrix(9);
        let g = Graph::from_matrix(&a).unwrap();
        let (o1, s1) = amd_order_on(&g, true, 0, &ReorderExec::sequential());
        let (o2, s2) = amd_order_on(&g, true, 0, &ReorderExec::sequential());
        assert_eq!(o1, o2);
        assert_eq!(s1, s2, "sequential stats must be reproducible");
        assert!(s1.rounds > 0 && s1.pivots > 0);
        assert!(s1.stale_pops > 0, "grid must exercise lazy deletion");
    }
}
