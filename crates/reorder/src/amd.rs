//! Approximate Minimum Degree (AMD) ordering, after Amestoy, Davis and
//! Duff \[1\].
//!
//! AMD simulates symbolic Cholesky elimination on a *quotient graph*: an
//! eliminated pivot is retained as an *element* whose variable list
//! stands for the clique its elimination would create. Instead of the
//! exact external degree (expensive to maintain), each variable carries
//! an upper bound that is cheap to update:
//!
//! ```text
//! d̄_v = min( n − k,
//!            d̄_v + |Lp \ v|,
//!            |A_v \ v| + |Lp \ v| + Σ_{e ∈ E_v, e ≠ p} |L_e \ Lp| )
//! ```
//!
//! The `|L_e \ Lp|` terms are computed for all relevant elements in a
//! single scan (the classic `w` array trick). Indistinguishable
//! variables (identical adjacency) are merged into supervariables via
//! hashing, and elements whose variable list is covered by the new
//! element are absorbed — including aggressive absorption of elements
//! that the scan discovers to be subsets of `Lp`.

use crate::component::{assemble_pieces, ComponentOrdering};
use crate::exec::{build_ordering_graph, ReorderExec};
use crate::traits::{ReorderAlgorithm, ReorderResult};
use sparsegraph::{connected_components, Graph};
use sparsemat::{CsrMatrix, SparseError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Approximate minimum degree reordering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Amd {
    /// Disable aggressive element absorption (ablation knob; the
    /// default matches SuiteSparse AMD's behaviour of absorbing).
    pub no_aggressive_absorption: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// A live (super)variable.
    Live,
    /// An eliminated pivot retained as a quotient-graph element.
    Element,
    /// Absorbed element or variable merged into a supervariable.
    Dead,
}

struct AmdState {
    status: Vec<Status>,
    /// Supervariable weight: number of original columns represented.
    nv: Vec<i64>,
    /// Variable neighbours of each live variable.
    adj_var: Vec<Vec<u32>>,
    /// Element neighbours of each live variable.
    adj_el: Vec<Vec<u32>>,
    /// Variable list of each element.
    el_vars: Vec<Vec<u32>>,
    /// Weighted |L_e| of each element (approximate: not decremented on
    /// merges, as in reference AMD).
    el_size: Vec<i64>,
    /// Approximate external degree of each live variable.
    degree: Vec<i64>,
    /// Children merged into each supervariable (for order expansion).
    merged: Vec<Vec<u32>>,
}

impl AmdState {
    #[inline]
    fn is_live_var(&self, v: u32) -> bool {
        self.status[v as usize] == Status::Live
    }

    #[inline]
    fn is_live_el(&self, e: u32) -> bool {
        self.status[e as usize] == Status::Element
    }
}

/// Compute the AMD elimination order of a symmetric graph. Returns the
/// order vector (`order[k]` = original vertex eliminated k-th).
pub fn amd_order(g: &Graph, aggressive: bool) -> Vec<u32> {
    let n = g.num_vertices();
    let mut st = AmdState {
        status: vec![Status::Live; n],
        nv: vec![1i64; n],
        adj_var: (0..n).map(|v| g.neighbors(v).to_vec()).collect(),
        adj_el: vec![Vec::new(); n],
        el_vars: vec![Vec::new(); n],
        el_size: vec![0i64; n],
        degree: (0..n).map(|v| g.degree(v) as i64).collect(),
        merged: vec![Vec::new(); n],
    };

    let mut heap: BinaryHeap<Reverse<(i64, u32)>> =
        (0..n).map(|v| Reverse((st.degree[v], v as u32))).collect();

    // Scratch arrays reused across iterations.
    let mut mark = vec![0u64; n];
    let mut w = vec![0i64; n];
    let mut wstamp = vec![0u64; n];
    let mut stamp = 0u64;
    let mut eliminated_weight = 0i64;
    let mut elim_order: Vec<u32> = Vec::with_capacity(n);

    while let Some(Reverse((d, p))) = heap.pop() {
        let pu = p as usize;
        if !st.is_live_var(p) || d != st.degree[pu] {
            continue; // stale heap entry
        }

        // --- Form the new element Lp. ---
        stamp += 1;
        mark[pu] = stamp;
        let mut lp: Vec<u32> = Vec::new();
        for &u in &st.adj_var[pu] {
            if st.is_live_var(u) && mark[u as usize] != stamp {
                mark[u as usize] = stamp;
                lp.push(u);
            }
        }
        let adj_els = std::mem::take(&mut st.adj_el[pu]);
        for &e in &adj_els {
            if !st.is_live_el(e) {
                continue;
            }
            for &u in &st.el_vars[e as usize] {
                if st.is_live_var(u) && mark[u as usize] != stamp {
                    mark[u as usize] = stamp;
                    lp.push(u);
                }
            }
            // The element is absorbed into p.
            st.status[e as usize] = Status::Dead;
            st.el_vars[e as usize] = Vec::new();
        }
        let lp_weight: i64 = lp.iter().map(|&v| st.nv[v as usize]).sum();

        // --- w trick: |L_e \ Lp| for every element touching Lp. ---
        for &v in &lp {
            for &e in &st.adj_el[v as usize] {
                if !st.is_live_el(e) {
                    continue;
                }
                let eu = e as usize;
                if wstamp[eu] != stamp {
                    wstamp[eu] = stamp;
                    w[eu] = st.el_size[eu];
                }
                w[eu] -= st.nv[v as usize];
            }
        }

        // --- Update every variable in Lp. ---
        let remaining = (n as i64) - eliminated_weight - st.nv[pu];
        for &v in &lp {
            let vu = v as usize;
            // Prune A_v: drop dead variables, members of Lp (now covered
            // by element p) and p itself.
            let mut pruned = std::mem::take(&mut st.adj_var[vu]);
            pruned.retain(|&u| st.is_live_var(u) && mark[u as usize] != stamp && u != p);
            st.adj_var[vu] = pruned;
            // Prune E_v, absorbing subset elements, and sum |L_e \ Lp|.
            let mut deg_els = 0i64;
            let old_els = std::mem::take(&mut st.adj_el[vu]);
            let mut new_els: Vec<u32> = Vec::with_capacity(old_els.len() + 1);
            new_els.push(p);
            for &e in &old_els {
                if !st.is_live_el(e) || e == p {
                    continue;
                }
                let eu = e as usize;
                let we = if wstamp[eu] == stamp {
                    w[eu]
                } else {
                    st.el_size[eu]
                };
                if aggressive && wstamp[eu] == stamp && we <= 0 {
                    // L_e ⊆ Lp: aggressive absorption.
                    st.status[eu] = Status::Dead;
                    st.el_vars[eu] = Vec::new();
                } else {
                    new_els.push(e);
                    deg_els += we.max(0);
                }
            }
            st.adj_el[vu] = new_els;

            let a_v: i64 = st.adj_var[vu].iter().map(|&u| st.nv[u as usize]).sum();
            let lp_minus_v = lp_weight - st.nv[vu];
            let d_new = (st.degree[vu] + lp_minus_v)
                .min(a_v + lp_minus_v + deg_els)
                .min(remaining - st.nv[vu])
                .max(0);
            st.degree[vu] = d_new;
        }

        // --- Supervariable detection by hashing. ---
        let mut buckets: std::collections::HashMap<u64, Vec<u32>> =
            std::collections::HashMap::new();
        for &v in &lp {
            if !st.is_live_var(v) {
                continue;
            }
            let vu = v as usize;
            st.adj_var[vu].sort_unstable();
            st.adj_el[vu].sort_unstable();
            let mut h = 0xcbf29ce484222325u64;
            for &u in &st.adj_var[vu] {
                h = (h ^ u as u64).wrapping_mul(0x100000001b3);
            }
            for &e in &st.adj_el[vu] {
                h = (h ^ (e as u64 | 1 << 32)).wrapping_mul(0x100000001b3);
            }
            buckets.entry(h).or_default().push(v);
        }
        for (_, bucket) in buckets {
            if bucket.len() < 2 {
                continue;
            }
            for bi in 0..bucket.len() {
                let i = bucket[bi];
                if !st.is_live_var(i) {
                    continue;
                }
                for bj in (bi + 1)..bucket.len() {
                    let j = bucket[bj];
                    if !st.is_live_var(j) {
                        continue;
                    }
                    let (iu, ju) = (i as usize, j as usize);
                    if st.adj_var[iu] == st.adj_var[ju] && st.adj_el[iu] == st.adj_el[ju] {
                        // Merge j into i.
                        st.nv[iu] += st.nv[ju];
                        st.nv[ju] = 0;
                        st.status[ju] = Status::Dead;
                        st.adj_var[ju] = Vec::new();
                        st.adj_el[ju] = Vec::new();
                        let children = std::mem::take(&mut st.merged[ju]);
                        st.merged[iu].extend(children);
                        st.merged[iu].push(j);
                    }
                }
            }
        }

        // --- Convert p into an element. ---
        eliminated_weight += st.nv[pu];
        st.status[pu] = Status::Element;
        let live_lp: Vec<u32> = lp.iter().copied().filter(|&v| st.is_live_var(v)).collect();
        st.el_size[pu] = live_lp.iter().map(|&v| st.nv[v as usize]).sum();
        st.el_vars[pu] = live_lp;
        st.adj_var[pu] = Vec::new();
        elim_order.push(p);

        // Re-queue updated degrees.
        for &v in &lp {
            if st.is_live_var(v) {
                heap.push(Reverse((st.degree[v as usize], v)));
            }
        }
    }

    // Expand supervariables into the final order: each pivot emits its
    // merged members first (they are indistinguishable, so relative
    // order does not matter), then itself.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    for &p in &elim_order {
        for &m in &st.merged[p as usize] {
            order.push(m);
        }
        order.push(p);
    }
    debug_assert_eq!(order.len(), n);
    order
}

impl ReorderAlgorithm for Amd {
    fn name(&self) -> &'static str {
        "AMD"
    }

    fn compute(&self, a: &CsrMatrix) -> Result<ReorderResult, SparseError> {
        self.compute_on(a, &ReorderExec::sequential())
    }

    fn compute_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<ReorderResult, SparseError> {
        let co = self
            .compute_components_on(a, rx)?
            .expect("AMD is component-structured");
        Ok(co.into_parts()?.0)
    }

    fn supports_components(&self) -> bool {
        true
    }

    /// One component's AMD bytes: the elimination order of the
    /// vertex-induced subgraph, mapped back to global ids. Local
    /// indexing follows `comp`'s ascending order, so the tie-breaking
    /// inside the quotient-graph heap is a pure function of the
    /// component — independent of what the rest of the graph looks
    /// like.
    fn order_component_on(
        &self,
        g: &Graph,
        comp: &[u32],
        _rx: &ReorderExec<'_>,
    ) -> Option<Vec<u32>> {
        if comp.len() == g.num_vertices() {
            // Single component: the subgraph is the graph itself.
            return Some(amd_order(g, !self.no_aggressive_absorption));
        }
        let (sub, local_to_global) = g.subgraph(comp);
        let local = amd_order(&sub, !self.no_aggressive_absorption);
        Some(local.iter().map(|&l| local_to_global[l as usize]).collect())
    }

    fn compute_components_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<Option<ComponentOrdering>, SparseError> {
        let g = build_ordering_graph(a, rx)?;
        let comps = connected_components(&g);
        let mut pieces: Vec<(u32, Vec<u32>)> = Vec::with_capacity(comps.count());
        for comp in &comps.members {
            let mut sorted = comp.clone();
            sorted.sort_unstable();
            let piece = self
                .order_component_on(&g, &sorted, rx)
                .expect("AMD orders any component");
            pieces.push((sorted[0], piece));
        }
        Ok(Some(assemble_pieces(self, pieces)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{CooMatrix, Permutation};

    fn grid_matrix(n: usize) -> CsrMatrix {
        // 5-point Laplacian on an n x n grid.
        let idx = |r: usize, c: usize| r * n + c;
        let mut coo = CooMatrix::new(n * n, n * n);
        for r in 0..n {
            for c in 0..n {
                let i = idx(r, c);
                coo.push(i, i, 4.0);
                if r + 1 < n {
                    coo.push_symmetric(i, idx(r + 1, c), -1.0);
                }
                if c + 1 < n {
                    coo.push_symmetric(i, idx(r, c + 1), -1.0);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Exact fill-in of Cholesky under a given order, by naive symbolic
    /// elimination (test oracle; O(n * fill)).
    fn symbolic_fill(a: &CsrMatrix, perm: &Permutation) -> usize {
        let b = a.permute_symmetric(perm).unwrap();
        let n = b.nrows();
        let mut rows: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
        for (i, j, _) in b.iter() {
            if j > i {
                rows[i].insert(j);
            }
        }
        let mut fill = 0usize;
        for k in 0..n {
            let nbrs: Vec<usize> = rows[k].iter().copied().collect();
            for (x, &i) in nbrs.iter().enumerate() {
                for &j in &nbrs[x + 1..] {
                    if rows[i].insert(j) {
                        fill += 1;
                    }
                }
            }
        }
        fill
    }

    #[test]
    fn amd_is_a_valid_permutation() {
        let a = grid_matrix(8);
        let r = Amd::default().compute(&a).unwrap();
        assert_eq!(r.perm.len(), 64);
        assert!(r.symmetric);
        r.apply(&a).unwrap().validate().unwrap();
    }

    #[test]
    fn amd_reduces_fill_versus_natural_order_on_grid() {
        let a = grid_matrix(10);
        let natural = Permutation::identity(100);
        let amd = Amd::default().compute(&a).unwrap().perm;
        let fill_nat = symbolic_fill(&a, &natural);
        let fill_amd = symbolic_fill(&a, &amd);
        assert!(
            fill_amd < fill_nat,
            "AMD fill {fill_amd} should beat natural {fill_nat}"
        );
    }

    #[test]
    fn amd_orders_tree_with_zero_fill() {
        // A path graph (tree) admits a perfect (zero-fill) elimination
        // order; minimum degree finds one.
        let n = 60;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
        }
        for i in 0..n - 1 {
            coo.push_symmetric(i, i + 1, -1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let perm = Amd::default().compute(&a).unwrap().perm;
        assert_eq!(
            symbolic_fill(&a, &perm),
            0,
            "trees must factor without fill"
        );
    }

    #[test]
    fn amd_handles_dense_row() {
        // Arrow matrix: hub must be eliminated last.
        let n = 20;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        for i in 1..n {
            coo.push_symmetric(0, i, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let perm = Amd::default().compute(&a).unwrap().perm;
        // The hub stays at maximum degree until only one leaf remains
        // (where it ties at degree 1), so it must land in the last two
        // positions; either way the elimination is fill-free.
        assert!(
            perm.old_to_new(0) >= n - 2,
            "the dense hub should be ordered (nearly) last, got position {}",
            perm.old_to_new(0)
        );
        assert_eq!(symbolic_fill(&a, &perm), 0);
    }

    #[test]
    fn amd_without_aggressive_absorption_still_valid() {
        let a = grid_matrix(6);
        let r = Amd {
            no_aggressive_absorption: true,
        }
        .compute(&a)
        .unwrap();
        assert_eq!(r.perm.len(), 36);
        r.apply(&a).unwrap().validate().unwrap();
    }

    #[test]
    fn amd_merges_indistinguishable_vertices() {
        // A clique: all vertices are indistinguishable; the order is
        // still a valid permutation and fill is zero.
        let n = 10;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                coo.push(i, j, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let perm = Amd::default().compute(&a).unwrap().perm;
        assert_eq!(perm.len(), n);
        assert_eq!(symbolic_fill(&a, &perm), 0, "a clique has no fill");
    }

    #[test]
    fn amd_on_disconnected_graph() {
        let mut coo = CooMatrix::new(7, 7);
        for i in 0..7 {
            coo.push(i, i, 1.0);
        }
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(2, 3, 1.0);
        // 4, 5, 6 isolated.
        let a = CsrMatrix::from_coo(&coo);
        let perm = Amd::default().compute(&a).unwrap().perm;
        assert_eq!(perm.len(), 7);
    }
}
