//! Graph partitioning (GP) reordering — METIS-style multilevel
//! recursive bisection with the edge-cut objective (§3.3).
//!
//! The matrix graph is partitioned into `num_parts` parts balanced on
//! the number of rows (unweighted vertices, the paper's configuration),
//! then rows and columns are renumbered by grouping parts together:
//! all rows of part 0 first, then part 1, and so on, preserving the
//! original relative order inside each part. Off-diagonal blocks of the
//! reordered matrix then correspond exactly to cut edges, which is why
//! GP directly minimises the off-diagonal nonzero count (§4.5).

use crate::traits::{ReorderAlgorithm, ReorderResult};
use partition::{partition_graph, PartitionConfig};
use sparsegraph::Graph;
use sparsemat::{CsrMatrix, Permutation, SparseError};

/// Graph-partitioning-based reordering.
#[derive(Debug, Clone)]
pub struct Gp {
    /// Partitioner configuration; `num_parts` should match the core
    /// count of the execution platform (the paper partitions into 16,
    /// 32, 48, 64, 72 or 128 parts, matching Table 2).
    pub config: PartitionConfig,
    /// Balance the number of nonzeros per part instead of rows
    /// (the weighted variant discussed but not selected in §3.3;
    /// exposed for the ablation study).
    pub nnz_weighted: bool,
}

impl Gp {
    /// A GP reordering targeting `num_parts` parts with defaults
    /// matching the paper (row-balanced, edge-cut objective).
    pub fn new(num_parts: usize) -> Self {
        Gp {
            config: PartitionConfig::k(num_parts),
            nnz_weighted: false,
        }
    }
}

/// Turn a part assignment into an ordering that groups parts
/// contiguously, preserving original order within each part.
pub fn partition_to_order(part_of: &[u32], num_parts: usize) -> Vec<u32> {
    let mut order = Vec::with_capacity(part_of.len());
    let mut by_part: Vec<Vec<u32>> = vec![Vec::new(); num_parts];
    for (v, &p) in part_of.iter().enumerate() {
        by_part[p as usize].push(v as u32);
    }
    for part in by_part {
        order.extend(part);
    }
    order
}

impl ReorderAlgorithm for Gp {
    fn name(&self) -> &'static str {
        "GP"
    }

    fn compute(&self, a: &CsrMatrix) -> Result<ReorderResult, SparseError> {
        let g = if self.nnz_weighted {
            Graph::from_matrix_nnz_weighted(a)?
        } else {
            Graph::from_matrix(a)?
        };
        let part_of = partition_graph(&g, &self.config);
        let order = partition_to_order(&part_of, self.config.num_parts);
        Ok(ReorderResult {
            perm: Permutation::from_new_to_old(order)?,
            symmetric: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn grid_matrix(n: usize) -> CsrMatrix {
        let idx = |r: usize, c: usize| r * n + c;
        let mut coo = CooMatrix::new(n * n, n * n);
        for r in 0..n {
            for c in 0..n {
                let i = idx(r, c);
                coo.push(i, i, 4.0);
                if r + 1 < n {
                    coo.push_symmetric(i, idx(r + 1, c), -1.0);
                }
                if c + 1 < n {
                    coo.push_symmetric(i, idx(r, c + 1), -1.0);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Off-diagonal nonzero count for an even t-way row split (§3.2).
    fn offdiag_nnz(a: &CsrMatrix, t: usize) -> usize {
        let n = a.nrows();
        let block = n.div_ceil(t);
        a.iter().filter(|&(i, j, _)| i / block != j / block).count()
    }

    #[test]
    fn gp_reduces_offdiagonal_nonzeros_on_shuffled_grid() {
        // Shuffle a grid matrix, then check GP pulls nonzeros back into
        // diagonal blocks.
        let a = grid_matrix(16); // 256 rows
        let n = a.nrows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut state = 99u64;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let p = Permutation::from_new_to_old(order).unwrap();
        let shuffled = a.permute_symmetric(&p).unwrap();

        let t = 4;
        let gp = Gp::new(t);
        let r = gp.compute(&shuffled).unwrap();
        let b = r.apply(&shuffled).unwrap();
        let before = offdiag_nnz(&shuffled, t);
        let after = offdiag_nnz(&b, t);
        assert!(
            after < before / 2,
            "GP should cut off-diagonal nnz at least in half: {before} -> {after}"
        );
    }

    #[test]
    fn partition_to_order_groups_parts() {
        let order = partition_to_order(&[1, 0, 1, 0, 2], 3);
        assert_eq!(order, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn gp_permutation_is_valid_and_symmetric() {
        let a = grid_matrix(8);
        let r = Gp::new(4).compute(&a).unwrap();
        assert!(r.symmetric);
        assert_eq!(r.perm.len(), 64);
        let b = r.apply(&a).unwrap();
        b.validate().unwrap();
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn gp_nnz_weighted_variant_works() {
        let a = grid_matrix(8);
        let mut gp = Gp::new(4);
        gp.nnz_weighted = true;
        let r = gp.compute(&a).unwrap();
        assert_eq!(r.perm.len(), 64);
    }

    #[test]
    fn gp_single_part_is_identity() {
        let a = grid_matrix(4);
        let r = Gp::new(1).compute(&a).unwrap();
        assert!(r.perm.is_identity());
    }
}
