use crate::component::{ComponentOrdering, ComponentRange};
use crate::exec::ReorderExec;
use sparsegraph::Graph;
use sparsemat::{CsrMatrix, Permutation, SparseError};
use std::time::{Duration, Instant};
use team::Exec;

/// The outcome of computing a reordering: a permutation and whether it
/// must be applied symmetrically (rows *and* columns) or to rows only.
#[derive(Debug, Clone)]
pub struct ReorderResult {
    /// The computed permutation (`order[new] = old`).
    pub perm: Permutation,
    /// True for symmetric orderings (RCM, AMD, ND, GP, HP); false for
    /// Gray, which permutes rows only (§3.3).
    pub symmetric: bool,
}

impl ReorderResult {
    /// Apply the reordering to a matrix, producing the permuted matrix.
    pub fn apply(&self, a: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
        self.apply_on(a, Exec::Sequential)
    }

    /// [`ReorderResult::apply`] on an executor: the permutation is
    /// applied with a parallel row copy after a prefix sum over the
    /// permuted row lengths (see
    /// [`CsrMatrix::permute_symmetric_on`]).
    pub fn apply_on(&self, a: &CsrMatrix, exec: Exec<'_>) -> Result<CsrMatrix, SparseError> {
        if self.symmetric {
            a.permute_symmetric_on(&self.perm, exec)
        } else {
            Ok(a.permute_rows_on(&self.perm, exec))
        }
    }

    /// Carry a dense input vector into the reordered index space.
    ///
    /// A symmetric reordering produces `B = P·A·Pᵀ`, so `B·(P·x)`
    /// equals `P·(A·x)` and the input must be permuted alongside the
    /// matrix. A row-only reordering (`B = P·A`, e.g. Gray) leaves the
    /// column space untouched, so the input passes through unchanged.
    pub fn permute_input(&self, x: &[f64]) -> Vec<f64> {
        if self.symmetric {
            self.perm.apply_to_slice(x)
        } else {
            x.to_vec()
        }
    }

    /// Carry an SpMV result computed on the reordered matrix back to
    /// the caller's original index space (the inverse row permutation).
    /// Both symmetric and row-only reorderings permute rows, so the
    /// output always needs unpermuting. Together with
    /// [`ReorderResult::permute_input`] this closes the serving loop:
    /// `unpermute_output(B · permute_input(x)) == A·x` up to
    /// floating-point summation order.
    pub fn unpermute_output(&self, y: &[f64]) -> Vec<f64> {
        self.perm.apply_inverse_to_slice(y)
    }
}

/// A sparse matrix reordering algorithm.
///
/// Implementations must be deterministic: the same matrix always
/// produces the same permutation (seeded RNGs only), so experiments are
/// reproducible.
pub trait ReorderAlgorithm {
    /// Short display name matching the paper's Table 1 ("RCM", "GP", ...).
    fn name(&self) -> &'static str;

    /// Compute the reordering for a square matrix.
    fn compute(&self, a: &CsrMatrix) -> Result<ReorderResult, SparseError>;

    /// Compute the reordering in an execution context: algorithms with
    /// a parallel path (RCM, GPS) run their symmetrisation and
    /// level-set phases on the context's executor and record
    /// `reorder.symmetrize` / `reorder.levels` sub-stage spans under
    /// its trace. The permutation is **byte-identical** to
    /// [`ReorderAlgorithm::compute`] for every executor; the default
    /// implementation simply runs the sequential path.
    fn compute_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<ReorderResult, SparseError> {
        let _ = rx;
        self.compute(a)
    }

    /// Compute the reordering and measure the wall-clock time taken
    /// (the quantity reported in Table 5 of the paper).
    fn compute_timed(&self, a: &CsrMatrix) -> Result<TimedReordering, SparseError> {
        self.compute_timed_on(a, &ReorderExec::sequential())
    }

    /// [`ReorderAlgorithm::compute_timed`] in an execution context.
    fn compute_timed_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<TimedReordering, SparseError> {
        let start = Instant::now();
        let result = self.compute_on(a, rx)?;
        Ok(TimedReordering {
            result,
            elapsed: start.elapsed(),
        })
    }

    /// Whether this algorithm is *component-structured*: its ordering
    /// decomposes into independent per-component sub-permutations
    /// arranged by [`ReorderAlgorithm::component_layout`], so deltas
    /// can be served by re-ordering dirty components only (see
    /// [`crate::splice_ordering_on`]). RCM, GPS and AMD are; global
    /// algorithms (ND, GP, HP, Gray) are not.
    fn supports_components(&self) -> bool {
        false
    }

    /// Order one connected component of the (symmetrised) ordering
    /// graph. `comp` lists the component's members sorted ascending, so
    /// `comp[0]` is the canonical key. Returns the component's final
    /// sub-permutation — exactly the bytes the full ordering places in
    /// that component's range — or `None` when the algorithm is not
    /// component-structured.
    fn order_component_on(
        &self,
        g: &Graph,
        comp: &[u32],
        rx: &ReorderExec<'_>,
    ) -> Option<Vec<u32>> {
        let _ = (g, comp, rx);
        None
    }

    /// Layout discipline: given `(key, len)` per component piece,
    /// return the piece indices in final concatenation order. Must be a
    /// total order on the metadata (keys are unique component minima)
    /// so the layout is independent of enumeration order. The default
    /// is ascending key.
    fn component_layout(&self, meta: &[(u32, usize)]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..meta.len()).collect();
        idx.sort_by_key(|&i| meta[i].0);
        idx
    }

    /// Compute the ordering together with its explicit component→range
    /// map, or `Ok(None)` when the algorithm is not
    /// component-structured. When `Some`, the flat order is
    /// byte-identical to [`ReorderAlgorithm::compute_on`].
    fn compute_components_on(
        &self,
        a: &CsrMatrix,
        rx: &ReorderExec<'_>,
    ) -> Result<Option<ComponentOrdering>, SparseError> {
        let _ = (a, rx);
        Ok(None)
    }
}

/// A reordering together with the time it took to compute.
#[derive(Debug, Clone)]
pub struct TimedReordering {
    /// The reordering itself.
    pub result: ReorderResult,
    /// Wall-clock computation time.
    pub elapsed: Duration,
}

/// Compute an ordering under telemetry: the wall-clock lands in the
/// registry histogram `reorder.<algo>` (nanoseconds, e.g.
/// `reorder.rcm`) via an RAII span, and failures increment
/// `reorder.failed`. This is the one instrumented entry point every
/// serving path computes permutations through — Table 5's per-algorithm
/// cost ranking, as live metrics.
pub fn timed_permutation(
    registry: &telemetry::Registry,
    algo: &dyn ReorderAlgorithm,
    a: &CsrMatrix,
) -> Result<TimedReordering, SparseError> {
    timed_permutation_on(registry, algo, a, &ReorderExec::sequential())
}

/// [`timed_permutation`] in an execution context: the ordering runs
/// via [`ReorderAlgorithm::compute_timed_on`] (parallel stages on the
/// context's executor, sub-stage spans under its trace), and on
/// success the per-algorithm throughput gauge
/// `reorder.<algo>.nnz_per_s` is updated from the measured wall-clock
/// — the live counterpart of the paper's "SpMV iterations to amortise"
/// ratio.
pub fn timed_permutation_on(
    registry: &telemetry::Registry,
    algo: &dyn ReorderAlgorithm,
    a: &CsrMatrix,
    rx: &ReorderExec<'_>,
) -> Result<TimedReordering, SparseError> {
    let name = algo.name().to_lowercase();
    let hist = registry.histogram(&format!("reorder.{name}"));
    let _span = registry.span_on("reorder", &hist);
    let timed = algo.compute_timed_on(a, rx);
    match &timed {
        Ok(t) => {
            let secs = t.elapsed.as_secs_f64();
            if secs > 0.0 {
                registry
                    .gauge(&format!("reorder.{name}.nnz_per_s"))
                    .set((a.nnz() as f64 / secs) as i64);
            }
        }
        Err(_) => registry.counter("reorder.failed").inc(),
    }
    timed
}

/// A reordering plus, when the algorithm is component-structured, its
/// component→range map — what the engine caches so later deltas can be
/// spliced instead of recomputed.
#[derive(Debug, Clone)]
pub struct TimedComponentReordering {
    /// The reordering itself.
    pub result: ReorderResult,
    /// Component ranges in layout order, `None` for global algorithms.
    pub ranges: Option<Vec<ComponentRange>>,
    /// Wall-clock computation time.
    pub elapsed: Duration,
}

/// [`timed_permutation_on`] variant that also surfaces the component
/// range map (via [`ReorderAlgorithm::compute_components_on`]) under
/// the same telemetry: `reorder.<algo>` histogram span,
/// `reorder.<algo>.nnz_per_s` gauge, `reorder.failed` counter. Global
/// algorithms fall through to the flat path and return `ranges: None`.
pub fn timed_components_on(
    registry: &telemetry::Registry,
    algo: &dyn ReorderAlgorithm,
    a: &CsrMatrix,
    rx: &ReorderExec<'_>,
) -> Result<TimedComponentReordering, SparseError> {
    let name = algo.name().to_lowercase();
    let hist = registry.histogram(&format!("reorder.{name}"));
    let _span = registry.span_on("reorder", &hist);
    let start = Instant::now();
    let computed = match algo.compute_components_on(a, rx) {
        Ok(Some(co)) => co
            .into_parts()
            .map(|(result, ranges)| (result, Some(ranges))),
        Ok(None) => algo.compute_on(a, rx).map(|result| (result, None)),
        Err(e) => Err(e),
    };
    let elapsed = start.elapsed();
    match &computed {
        Ok(_) => {
            let secs = elapsed.as_secs_f64();
            if secs > 0.0 {
                registry
                    .gauge(&format!("reorder.{name}.nnz_per_s"))
                    .set((a.nnz() as f64 / secs) as i64);
            }
        }
        Err(_) => registry.counter("reorder.failed").inc(),
    }
    computed.map(|(result, ranges)| TimedComponentReordering {
        result,
        ranges,
        elapsed,
    })
}

/// The identity "ordering" — the baseline every speedup in the paper is
/// measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Original;

impl ReorderAlgorithm for Original {
    fn name(&self) -> &'static str {
        "Original"
    }

    fn compute(&self, a: &CsrMatrix) -> Result<ReorderResult, SparseError> {
        if !a.is_square() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        Ok(ReorderResult {
            perm: Permutation::identity(a.nrows()),
            symmetric: true,
        })
    }
}

/// The full algorithm suite of the study, in the paper's column order:
/// RCM, AMD, ND, GP, HP, Gray. `num_parts` configures GP (the paper uses
/// the core count of the target machine) and HP (the paper fixes 128).
pub fn all_algorithms(
    gp_parts: usize,
    hp_parts: usize,
) -> Vec<Box<dyn ReorderAlgorithm + Send + Sync>> {
    vec![
        Box::new(crate::Rcm::default()),
        Box::new(crate::Amd::default()),
        Box::new(crate::Nd::default()),
        Box::new(crate::Gp::new(gp_parts)),
        Box::new(crate::Hp::new(hp_parts)),
        Box::new(crate::Gray::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn small() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push_symmetric(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 2, 4.0);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn original_is_identity() {
        let a = small();
        let r = Original.compute(&a).unwrap();
        assert!(r.perm.is_identity());
        assert!(r.symmetric);
        assert_eq!(r.apply(&a).unwrap(), a);
    }

    #[test]
    fn original_rejects_rectangular() {
        let a = CsrMatrix::from_coo(&CooMatrix::new(2, 3));
        assert!(Original.compute(&a).is_err());
    }

    #[test]
    fn compute_timed_reports_duration() {
        let a = small();
        let t = Original.compute_timed(&a).unwrap();
        assert!(t.result.perm.is_identity());
        assert!(t.elapsed.as_nanos() > 0 || t.elapsed.is_zero());
    }

    #[test]
    fn timed_permutation_records_per_algorithm_histograms() {
        let registry = telemetry::Registry::new_arc();
        let a = small();
        let t = timed_permutation(&registry, &crate::Rcm::default(), &a).unwrap();
        assert_eq!(t.result.perm.len(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("reorder.rcm").unwrap().count, 1);
        assert!(snap.histogram("reorder.rcm").unwrap().min >= 1);
        assert!(snap.counter("reorder.failed").is_none());

        // Failures are recorded too: the span still times the attempt
        // and the failure counter increments.
        let bad = CsrMatrix::from_coo(&CooMatrix::new(2, 3));
        assert!(timed_permutation(&registry, &Original, &bad).is_err());
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("reorder.original").unwrap().count, 1);
        assert_eq!(snap.counter("reorder.failed"), Some(1));
    }

    #[test]
    fn timed_permutation_updates_throughput_gauge() {
        let registry = telemetry::Registry::new_arc();
        let a = small();
        timed_permutation_on(
            &registry,
            &crate::Rcm::default(),
            &a,
            &ReorderExec::sequential(),
        )
        .unwrap();
        let snap = registry.snapshot();
        let nnz_per_s = snap
            .gauge("reorder.rcm.nnz_per_s")
            .expect("throughput gauge recorded");
        assert!(nnz_per_s > 0, "nnz/s gauge should be positive: {nnz_per_s}");
    }

    #[test]
    fn all_algorithms_has_six_entries_in_paper_order() {
        let algs = all_algorithms(16, 128);
        let names: Vec<&str> = algs.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["RCM", "AMD", "ND", "GP", "HP", "Gray"]);
    }
}
