//! Separated block diagonal (SBD) ordering, after Yzelman and
//! Bisseling \[27\] (§2.1.3 of the paper).
//!
//! The column-net hypergraph of the matrix is bisected recursively;
//! at each level the rows incident to *cut* nets form a separator block
//! placed between the two pure blocks:
//!
//! ```text
//! [ pure-left | separator | pure-right ]
//! ```
//!
//! Recursing within the pure blocks yields the cache-oblivious
//! separated-block-diagonal form: any contiguous range of rows touches
//! a limited column range plus a small number of separators, which is
//! what gives SpMV its cache-oblivious locality. Like GP/HP the
//! permutation is applied symmetrically.

use crate::traits::{ReorderAlgorithm, ReorderResult};
use partition::{partition_hypergraph, HypergraphPartitionConfig};
use sparsegraph::Hypergraph;
use sparsemat::{CsrMatrix, Permutation, SparseError};

/// Separated block diagonal reordering (hypergraph-based).
#[derive(Debug, Clone)]
pub struct Sbd {
    /// Recursion stops below this many rows.
    pub leaf_size: usize,
    /// Imbalance tolerance per bisection.
    pub ubfactor: f64,
    /// RNG seed threaded into the partitioner.
    pub seed: u64,
}

impl Default for Sbd {
    fn default() -> Self {
        Sbd {
            leaf_size: 64,
            ubfactor: 1.10,
            seed: 0x5BD,
        }
    }
}

impl Sbd {
    fn recurse(&self, a: &CsrMatrix, rows: &[u32], seed: u64, order: &mut Vec<u32>) {
        if rows.len() <= self.leaf_size {
            order.extend_from_slice(rows);
            return;
        }
        // Build the sub-matrix column-net structure implicitly: a net
        // (column) is cut iff rows touching it land in both parts.
        let sub = submatrix_rows(a, rows);
        let h = Hypergraph::column_net(&sub);
        let cfg = HypergraphPartitionConfig {
            num_parts: 2,
            ubfactor: self.ubfactor,
            seed: seed ^ self.seed,
            ..Default::default()
        };
        let parts = partition_hypergraph(&h, &cfg);
        // Classify columns by the parts of their rows.
        let mut col_mask = vec![0u8; sub.ncols()]; // bit0: part0, bit1: part1
        for (local, &p) in parts.iter().enumerate() {
            let (cols, _) = sub.row(local);
            for &c in cols {
                col_mask[c as usize] |= 1 << p;
            }
        }
        // A row is a separator row if it touches any cut column.
        let mut left = Vec::new();
        let mut sep = Vec::new();
        let mut right = Vec::new();
        for (local, &global) in rows.iter().enumerate() {
            let (cols, _) = sub.row(local);
            let boundary = cols.iter().any(|&c| col_mask[c as usize] == 0b11);
            if boundary {
                sep.push(global);
            } else if parts[local] == 0 {
                left.push(global);
            } else {
                right.push(global);
            }
        }
        // Degenerate split (everything boundary): stop recursing.
        if left.is_empty() && right.is_empty() {
            order.extend_from_slice(rows);
            return;
        }
        self.recurse(a, &left, seed.wrapping_mul(0x9E37).wrapping_add(21), order);
        order.extend_from_slice(&sep);
        self.recurse(a, &right, seed.wrapping_mul(0x9E37).wrapping_add(22), order);
    }
}

/// Extract the row-induced submatrix with columns restricted to those
/// present (renumbered compactly) so nets vanish when their rows leave.
fn submatrix_rows(a: &CsrMatrix, rows: &[u32]) -> CsrMatrix {
    let mut col_map = std::collections::HashMap::new();
    let mut rowptr = vec![0usize];
    let mut colidx: Vec<u32> = Vec::new();
    for &r in rows {
        let (cols, _) = a.row(r as usize);
        for &c in cols {
            let next_id = col_map.len() as u32;
            let id = *col_map.entry(c).or_insert(next_id);
            colidx.push(id);
        }
        rowptr.push(colidx.len());
    }
    // Sort columns within each row (renumbering broke the order).
    for w in 0..rows.len() {
        colidx[rowptr[w]..rowptr[w + 1]].sort_unstable();
    }
    let ncols = col_map.len().max(1);
    let nnz = colidx.len();
    CsrMatrix::from_parts_unchecked(rows.len(), ncols, rowptr, colidx, vec![1.0; nnz])
}

impl ReorderAlgorithm for Sbd {
    fn name(&self) -> &'static str {
        "SBD"
    }

    fn compute(&self, a: &CsrMatrix) -> Result<ReorderResult, SparseError> {
        if !a.is_square() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let rows: Vec<u32> = (0..a.nrows() as u32).collect();
        let mut order = Vec::with_capacity(a.nrows());
        self.recurse(a, &rows, 1, &mut order);
        Ok(ReorderResult {
            perm: Permutation::from_new_to_old(order)?,
            symmetric: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    fn banded(n: usize, half_bw: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(half_bw)..(i + half_bw + 1).min(n) {
                coo.push(i, j, 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn sbd_is_valid_symmetric_permutation() {
        let a = banded(400, 3);
        let r = Sbd::default().compute(&a).unwrap();
        assert!(r.symmetric);
        assert_eq!(r.perm.len(), 400);
        let b = r.apply(&a).unwrap();
        b.validate().unwrap();
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn sbd_reduces_offdiagonal_nnz_on_scrambled_band() {
        let a = banded(600, 2);
        // Scramble.
        let mut order: Vec<u32> = (0..600).collect();
        let mut state = 11u64;
        for i in (1..600usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(3);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let p = Permutation::from_new_to_old(order).unwrap();
        let s = a.permute_symmetric(&p).unwrap();
        let offdiag = |m: &CsrMatrix, t: usize| {
            let block = m.nrows().div_ceil(t);
            m.iter().filter(|&(i, j, _)| i / block != j / block).count()
        };
        let r = Sbd::default().compute(&s).unwrap();
        let b = r.apply(&s).unwrap();
        assert!(
            offdiag(&b, 8) < offdiag(&s, 8) / 2,
            "SBD should restore block-diagonal shape: {} -> {}",
            offdiag(&s, 8),
            offdiag(&b, 8)
        );
    }

    #[test]
    fn sbd_small_matrix_is_identity_order() {
        let a = banded(30, 1); // below leaf_size
        let r = Sbd::default().compute(&a).unwrap();
        assert!(r.perm.is_identity());
    }

    #[test]
    fn sbd_deterministic() {
        let a = banded(300, 2);
        let p1 = Sbd::default().compute(&a).unwrap().perm;
        let p2 = Sbd::default().compute(&a).unwrap().perm;
        assert_eq!(p1, p2);
    }

    #[test]
    fn sbd_rejects_rectangular() {
        let a = CsrMatrix::from_coo(&CooMatrix::new(2, 3));
        assert!(Sbd::default().compute(&a).is_err());
    }
}
