//! Gray code ordering, after Zhao et al. \[28\].
//!
//! The ordering is motivated by microarchitectural concerns: grouping
//! rows with similar nonzero counts improves branch prediction in the
//! SpMV inner loop, and ordering rows whose nonzeros occupy similar
//! column regions improves x-vector locality. The matrix rows are split
//! into a *dense* and a *sparse* submatrix by a row-nonzero threshold
//! (the paper uses 20). Dense rows get *density reordering* (sorted by
//! descending nonzero count); sparse rows get *bitmap reordering*: each
//! row is summarised by a `BITS`-bit occupancy bitmap over equal column
//! segments (the paper uses 16 bits), and rows are sorted by the Gray
//! code rank of their bitmap, so consecutive rows touch similar column
//! regions.
//!
//! Only rows are permuted — the ordering is unsymmetric (§3.3).

use crate::traits::{ReorderAlgorithm, ReorderResult};
use sparsemat::{CsrMatrix, Permutation, SparseError};

/// Parameters of the Gray ordering; defaults follow Zhao et al. as used
/// in the paper (§3.3): 16 bitmap bits, dense threshold 20 nnz/row.
#[derive(Debug, Clone, Copy)]
pub struct GrayParams {
    /// Number of bitmap bits (column segments).
    pub bitmap_bits: u32,
    /// Rows with more than this many nonzeros are treated as dense.
    pub dense_threshold: usize,
}

impl Default for GrayParams {
    fn default() -> Self {
        GrayParams {
            bitmap_bits: 16,
            dense_threshold: 20,
        }
    }
}

/// Gray code reordering (rows only).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gray {
    /// Algorithm parameters.
    pub params: GrayParams,
}

/// Convert a Gray code word to its rank in the Gray sequence (inverse
/// Gray code).
#[inline]
pub fn gray_rank(mut gray: u64) -> u64 {
    let mut rank = gray;
    while gray > 0 {
        gray >>= 1;
        rank ^= gray;
    }
    rank
}

/// Compute the occupancy bitmap of a row over `bits` equal column
/// segments.
#[inline]
fn row_bitmap(cols: &[u32], ncols: usize, bits: u32) -> u64 {
    let mut bm = 0u64;
    let bits = bits.clamp(1, 63);
    for &c in cols {
        // Segment index in 0..bits.
        let seg = (c as u128 * bits as u128 / ncols.max(1) as u128) as u32;
        bm |= 1u64 << seg.min(bits - 1);
    }
    bm
}

impl Gray {
    /// Compute the Gray row order of a matrix: dense rows first (sorted
    /// by descending nonzero count), then sparse rows sorted by the
    /// Gray rank of their column bitmap.
    pub fn row_order(&self, a: &CsrMatrix) -> Vec<u32> {
        let n = a.nrows();
        let mut dense: Vec<u32> = Vec::new();
        let mut sparse: Vec<u32> = Vec::new();
        for i in 0..n {
            if a.row_nnz(i) > self.params.dense_threshold {
                dense.push(i as u32);
            } else {
                sparse.push(i as u32);
            }
        }
        // Density reordering for the dense block: group rows of similar
        // density together, descending.
        dense.sort_by_key(|&i| (std::cmp::Reverse(a.row_nnz(i as usize)), i));
        // Bitmap + Gray rank for the sparse block; ties broken by nnz
        // then original index to keep the sort deterministic. Keys are
        // computed once per row (not per comparison).
        let ncols = a.ncols();
        let mut keyed: Vec<(u64, u32, u32)> = sparse
            .iter()
            .map(|&i| {
                let (cols, _) = a.row(i as usize);
                let bm = row_bitmap(cols, ncols, self.params.bitmap_bits);
                (gray_rank(bm), a.row_nnz(i as usize) as u32, i)
            })
            .collect();
        keyed.sort_unstable();
        sparse.clear();
        sparse.extend(keyed.into_iter().map(|(_, _, i)| i));
        dense.extend(sparse);
        dense
    }
}

impl ReorderAlgorithm for Gray {
    fn name(&self) -> &'static str {
        "Gray"
    }

    fn compute(&self, a: &CsrMatrix) -> Result<ReorderResult, SparseError> {
        if !a.is_square() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let order = self.row_order(a);
        Ok(ReorderResult {
            perm: Permutation::from_new_to_old(order)?,
            symmetric: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::CooMatrix;

    #[test]
    fn gray_rank_inverts_gray_code() {
        // gray(k) = k ^ (k >> 1); rank must invert it.
        for k in 0..512u64 {
            let gray = k ^ (k >> 1);
            assert_eq!(gray_rank(gray), k);
        }
    }

    #[test]
    fn dense_rows_come_first_sorted_by_density() {
        let n = 40;
        let mut coo = CooMatrix::new(n, n);
        // Row 5: 30 nnz (dense); row 7: 25 nnz (dense); others 1-2 nnz.
        for j in 0..30 {
            coo.push(5, j, 1.0);
        }
        for j in 0..25 {
            coo.push(7, j, 1.0);
        }
        for i in 0..n {
            if i != 5 && i != 7 {
                coo.push(i, i, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let order = Gray::default().row_order(&a);
        assert_eq!(order[0], 5, "densest row first");
        assert_eq!(order[1], 7);
    }

    #[test]
    fn sparse_rows_group_by_column_region() {
        // Rows touching only the left half vs only the right half should
        // be separated by the bitmap ordering.
        let n = 32;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            // Even rows hit the left half, odd rows the right half.
            let base = if i % 2 == 0 { 0 } else { n / 2 };
            coo.push(i, base + (i % (n / 2)), 1.0);
            coo.push(i, base + ((i + 3) % (n / 2)), 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let order = Gray::default().row_order(&a);
        // After ordering, all left-half rows (even ids) must be
        // contiguous: find the boundary.
        let sides: Vec<bool> = order.iter().map(|&i| i % 2 == 0).collect();
        let transitions = sides.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(
            transitions, 1,
            "left-half and right-half rows should form two contiguous groups: {sides:?}"
        );
    }

    #[test]
    fn gray_is_row_only_and_preserves_row_contents() {
        let n = 30;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i * 13 + 1) % n, i as f64 + 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let r = Gray::default().compute(&a).unwrap();
        assert!(!r.symmetric);
        let b = r.apply(&a).unwrap();
        for new_i in 0..n {
            let old_i = r.perm.new_to_old(new_i);
            assert_eq!(b.row(new_i), a.row(old_i));
        }
    }

    #[test]
    fn custom_parameters_respected() {
        let n = 25;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..5 {
                coo.push(i, (i + j) % n, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        // Threshold 4: every row (5 nnz) is "dense".
        let g = Gray {
            params: GrayParams {
                bitmap_bits: 8,
                dense_threshold: 4,
            },
        };
        let order = g.row_order(&a);
        assert_eq!(order.len(), n);
        // All rows have equal nnz, so density sort falls back to
        // original index order.
        assert_eq!(order, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn gray_rejects_rectangular() {
        let a = CsrMatrix::from_coo(&CooMatrix::new(2, 3));
        assert!(Gray::default().compute(&a).is_err());
    }
}
