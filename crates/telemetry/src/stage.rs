//! The live stage board: which logical stage is every registered
//! thread in *right now*?
//!
//! Aggregate histograms say how long each stage takes; the flight
//! recorder says where one sampled request went. Neither answers the
//! operator's live question — "across the whole process, where is
//! wall-clock time going *at this moment*?" — without pre-selecting a
//! request. The stage board does: every thread that opens a
//! [`StageGuard`] (or a [`crate::Span`], which opens one implicitly)
//! publishes its current stage stack to a process-global board, and a
//! sampler ([`sample_stages`]) reads all stacks at once. Sampling at
//! ~100 Hz and folding the observed stacks yields a collapsed-stack
//! flamegraph of the live process (the `obsv` crate's `/profile`
//! endpoint).
//!
//! The board follows the workspace's "cheap when idle" discipline:
//! it is **disabled by default**, and a disabled [`stage`] call is one
//! relaxed atomic load — no allocation, no lock, no clock read (pinned
//! under 2% of an SpMV iteration in `crates/spmv`'s overhead tests).
//! Enabling is ref-counted ([`StageSession`]) so overlapping profile
//! requests compose.
//!
//! Guards may be dropped on a different thread than they were opened
//! on (the tier moves work between dispatchers); each entry carries a
//! unique ID and the guard pops *its own* entry, so a cross-thread
//! drop never corrupts another guard's stack.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// How many sessions currently want the board live. Non-zero =
/// guards publish their stages.
static ACTIVE_SESSIONS: AtomicUsize = AtomicUsize::new(0);

/// Unique IDs for stage entries (cross-thread-safe pops).
static NEXT_ENTRY: AtomicU64 = AtomicU64::new(1);

/// True if stage guards currently publish to the board.
#[inline]
pub fn stages_enabled() -> bool {
    ACTIVE_SESSIONS.load(Ordering::Relaxed) > 0
}

/// One thread's published stage stack.
struct ThreadStages {
    name: String,
    /// `(entry id, stage name)`, outermost first.
    stack: Mutex<Vec<(u64, &'static str)>>,
}

/// The global board: weak handles to every thread that ever published
/// a stage. Dead threads are pruned at sample time.
fn board() -> &'static Mutex<Vec<Weak<ThreadStages>>> {
    static BOARD: OnceLock<Mutex<Vec<Weak<ThreadStages>>>> = OnceLock::new();
    BOARD.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_STAGES: Arc<ThreadStages> = {
        let mine = Arc::new(ThreadStages {
            name: std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| "unnamed".to_string()),
            stack: Mutex::new(Vec::new()),
        });
        board().lock().unwrap().push(Arc::downgrade(&mine));
        mine
    };
}

/// Keeps the stage board enabled while alive. Sessions are
/// ref-counted: the board stays live until the *last* session drops,
/// so overlapping `/profile` requests do not disable each other.
pub struct StageSession(());

impl StageSession {
    /// Enable the board (until this session and all others drop).
    pub fn start() -> StageSession {
        ACTIVE_SESSIONS.fetch_add(1, Ordering::Relaxed);
        StageSession(())
    }
}

impl Drop for StageSession {
    fn drop(&mut self) {
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// An entry on this thread's published stage stack; pops itself on
/// drop. Returned inert (one relaxed load, nothing else) while no
/// [`StageSession`] is active.
#[must_use = "a stage guard publishes until dropped; binding it to _ drops it immediately"]
pub struct StageGuard {
    entry: Option<(Arc<ThreadStages>, u64)>,
}

/// Publish `name` as the calling thread's current (innermost) stage
/// until the returned guard drops.
#[inline]
pub fn stage(name: &'static str) -> StageGuard {
    if !stages_enabled() {
        return StageGuard { entry: None };
    }
    stage_slow(name)
}

#[cold]
fn stage_slow(name: &'static str) -> StageGuard {
    let mine = MY_STAGES.with(Arc::clone);
    let id = NEXT_ENTRY.fetch_add(1, Ordering::Relaxed);
    mine.stack.lock().unwrap().push((id, name));
    StageGuard {
        entry: Some((mine, id)),
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if let Some((stages, id)) = self.entry.take() {
            let mut stack = stages.stack.lock().unwrap();
            if let Some(pos) = stack.iter().rposition(|&(eid, _)| eid == id) {
                stack.remove(pos);
            }
        }
    }
}

/// One sample of the board: `(thread name, stage stack outermost
/// first)` for every live thread with at least one open stage. Threads
/// that have exited are pruned.
pub fn sample_stages() -> Vec<(String, Vec<&'static str>)> {
    let mut board = board().lock().unwrap();
    board.retain(|weak| weak.strong_count() > 0);
    board
        .iter()
        .filter_map(Weak::upgrade)
        .filter_map(|stages| {
            let stack: Vec<&'static str> = stages
                .stack
                .lock()
                .unwrap()
                .iter()
                .map(|&(_, name)| name)
                .collect();
            (!stack.is_empty()).then(|| (stages.name.clone(), stack))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The board is process-global, so these tests hold their own
    // sessions and only assert on stages they opened themselves
    // (uniquely named), staying robust to parallel tests.

    fn my_stack(needle: &str) -> Option<Vec<&'static str>> {
        sample_stages()
            .into_iter()
            .map(|(_, stack)| stack)
            .find(|stack| stack.iter().any(|s| s.contains(needle)))
    }

    #[test]
    fn disabled_guard_publishes_nothing() {
        // No session of ours: a guard opened now must not appear when a
        // later session samples. (Another test's session may be live,
        // so only assert on our unique stage name.)
        {
            let _g = stage("stagetest.maybe_off");
        }
        let _session = StageSession::start();
        assert!(my_stack("stagetest.maybe_off").is_none());
    }

    #[test]
    fn stacks_nest_and_unwind() {
        let _session = StageSession::start();
        let _a = stage("stagetest.outer");
        {
            let _b = stage("stagetest.inner");
            let stack = my_stack("stagetest.outer").expect("published");
            let pos_a = stack
                .iter()
                .position(|&s| s == "stagetest.outer")
                .expect("outer on stack");
            let pos_b = stack
                .iter()
                .position(|&s| s == "stagetest.inner")
                .expect("inner on stack");
            assert!(pos_a < pos_b, "outermost first: {stack:?}");
        }
        let stack = my_stack("stagetest.outer").expect("still published");
        assert!(!stack.contains(&"stagetest.inner"), "inner popped");
    }

    #[test]
    fn cross_thread_drop_pops_the_right_entry() {
        let _session = StageSession::start();
        let _outer = stage("stagetest.xthread.outer");
        let inner = stage("stagetest.xthread.inner");
        // Drop the inner guard on another thread: it must remove its
        // own entry from *this* thread's stack, not touch the other
        // thread's (empty) stack.
        std::thread::spawn(move || drop(inner)).join().unwrap();
        let stack = my_stack("stagetest.xthread.outer").expect("outer still live");
        assert!(stack.contains(&"stagetest.xthread.outer"));
        assert!(!stack.contains(&"stagetest.xthread.inner"));
    }

    #[test]
    fn sessions_refcount() {
        let a = StageSession::start();
        let b = StageSession::start();
        assert!(stages_enabled());
        drop(a);
        assert!(stages_enabled(), "second session keeps the board live");
        let g = stage("stagetest.refcount");
        assert!(my_stack("stagetest.refcount").is_some());
        drop(g);
        drop(b);
    }

    #[test]
    fn exited_threads_are_pruned() {
        let _session = StageSession::start();
        std::thread::Builder::new()
            .name("stagetest-ephemeral".into())
            .spawn(|| {
                let _g = stage("stagetest.ephemeral");
                assert!(my_stack("stagetest.ephemeral").is_some());
            })
            .unwrap()
            .join()
            .unwrap();
        // The thread is gone; its board slot must not survive.
        assert!(sample_stages()
            .iter()
            .all(|(name, _)| name != "stagetest-ephemeral"));
    }
}
