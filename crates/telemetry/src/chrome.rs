//! Trace exporters: Chrome-trace/Perfetto JSON and a plain-text
//! per-request summary.
//!
//! [`TraceSnapshot::to_chrome_json`] renders the snapshot as a JSON
//! object with a `traceEvents` array in the Trace Event Format, which
//! both `chrome://tracing` and <https://ui.perfetto.dev> open
//! directly. Each recorder thread becomes one timeline lane (`tid`),
//! named via a `thread_name` metadata event; spans use duration
//! semantics (`ph:"B"`/`ph:"E"`, matched per pid+tid in recording
//! order) and instants use `ph:"i"`. Because every ring clamps
//! timestamps monotonically and a span's End always lands in its
//! Begin's ring, each lane's B/E pairs are balanced and ordered by
//! construction — no sort pass is needed (or performed).
//!
//! [`TraceSnapshot::summary`] renders the same data as a terminal-
//! friendly stage breakdown: per-name span counts and total/mean
//! durations, the worker-lane compute imbalance ratio, and the drop
//! count — the "what do I look at first" view before opening Perfetto.

use crate::export::json_escape;
use crate::trace::{ArgValue, EventKind, TraceSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Render an [`ArgValue`] as a JSON value.
fn json_arg(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(n) => n.to_string(),
        ArgValue::I64(n) => n.to_string(),
        ArgValue::F64(n) => {
            if n.is_finite() {
                format!("{n}")
            } else {
                "0".to_string()
            }
        }
        ArgValue::Str(s) => format!("\"{}\"", json_escape(s)),
        ArgValue::Text(s) => format!("\"{}\"", json_escape(s)),
    }
}

/// Microseconds with nanosecond precision kept as 3 decimals — the
/// Trace Event Format's `ts` unit is µs, but our clocks are ns.
fn ts_us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1000, ts_ns % 1000)
}

impl TraceSnapshot {
    /// The snapshot in Chrome Trace Event Format (JSON object form),
    /// loadable in `chrome://tracing` and Perfetto. One lane per
    /// recorder thread; span/trace/parent IDs and user args ride in
    /// each event's `args`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&ev);
        };
        for thread in &self.threads {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    thread.tid,
                    json_escape(&thread.name)
                ),
            );
            for e in &thread.events {
                let ph = match e.kind {
                    EventKind::Begin => "B",
                    EventKind::End => "E",
                    EventKind::Instant => "i",
                };
                let mut ev = format!(
                    "{{\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\"",
                    thread.tid,
                    ts_us(e.ts_ns),
                    json_escape(e.name)
                );
                if e.kind == EventKind::Instant {
                    // Thread-scoped instant marker.
                    ev.push_str(",\"s\":\"t\"");
                }
                let _ = write!(
                    ev,
                    ",\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}",
                    e.trace_id, e.span_id, e.parent_id
                );
                for (k, v) in &e.args {
                    let _ = write!(ev, ",\"{}\":{}", json_escape(k), json_arg(v));
                }
                ev.push_str("}}");
                push(&mut out, ev);
            }
        }
        out.push_str("]}");
        out
    }

    /// A terminal-friendly stage breakdown: per-name span count and
    /// total/mean wall time, worker compute imbalance (max/mean of
    /// per-lane `spmv.team.compute` totals), and the drop count.
    pub fn summary(&self) -> String {
        struct Stage {
            count: u64,
            total_ns: u64,
        }
        let mut stages: BTreeMap<&'static str, Stage> = BTreeMap::new();
        // Per-lane compute totals for the imbalance ratio.
        let mut lane_compute: BTreeMap<u64, u64> = BTreeMap::new();
        let mut min_ts = u64::MAX;
        let mut max_ts = 0u64;
        for thread in &self.threads {
            // Open-span stack per lane: rings are in recording order,
            // so Begin/End match like parentheses within a lane.
            let mut open: Vec<(&'static str, u64)> = Vec::new();
            for e in &thread.events {
                min_ts = min_ts.min(e.ts_ns);
                max_ts = max_ts.max(e.ts_ns);
                match e.kind {
                    EventKind::Begin => open.push((e.name, e.ts_ns)),
                    EventKind::End => {
                        if let Some(pos) = open.iter().rposition(|(n, _)| *n == e.name) {
                            let (name, begin) = open.remove(pos);
                            let dur = e.ts_ns.saturating_sub(begin);
                            let s = stages.entry(name).or_insert(Stage {
                                count: 0,
                                total_ns: 0,
                            });
                            s.count += 1;
                            s.total_ns += dur;
                            if name == "spmv.team.compute" {
                                *lane_compute.entry(thread.tid).or_insert(0) += dur;
                            }
                        }
                    }
                    EventKind::Instant => {
                        let s = stages.entry(e.name).or_insert(Stage {
                            count: 0,
                            total_ns: 0,
                        });
                        s.count += 1;
                    }
                }
            }
        }
        let wall_ns = max_ts.saturating_sub(if min_ts == u64::MAX { 0 } else { min_ts });
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events across {} threads, wall {:.3} ms, {} dropped",
            self.total_events(),
            self.threads.len(),
            wall_ns as f64 / 1e6,
            self.dropped
        );
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>14} {:>14}",
            "stage", "count", "total_ms", "mean_us"
        );
        for (name, s) in &stages {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>14.3} {:>14.2}",
                name,
                s.count,
                s.total_ns as f64 / 1e6,
                if s.count > 0 {
                    s.total_ns as f64 / 1e3 / s.count as f64
                } else {
                    0.0
                }
            );
        }
        if lane_compute.len() > 1 {
            let max = lane_compute.values().copied().max().unwrap_or(0) as f64;
            let mean =
                lane_compute.values().copied().sum::<u64>() as f64 / lane_compute.len() as f64;
            let _ = writeln!(
                out,
                "worker imbalance: {:.3} (max/mean compute over {} lanes)",
                if mean > 0.0 { max / mean } else { 1.0 },
                lane_compute.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::trace::FlightRecorder;

    #[test]
    fn chrome_json_has_lanes_and_phases() {
        let rec = FlightRecorder::new(256);
        let ctx = rec.start_trace();
        {
            let mut s = ctx.span("engine.request");
            s.arg("algo", "RCM");
            ctx.instant("engine.coalesced");
        }
        let j = rec.snapshot().to_chrome_json();
        assert!(j.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"M\""), "{j}");
        assert!(j.contains("\"ph\":\"B\""), "{j}");
        assert!(j.contains("\"ph\":\"E\""), "{j}");
        assert!(j.contains("\"ph\":\"i\""), "{j}");
        assert!(j.contains("\"algo\":\"RCM\""), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
    }

    #[test]
    fn summary_reports_stages_and_drops() {
        let rec = FlightRecorder::new(256);
        let ctx = rec.start_trace();
        drop(ctx.span("engine.reorder"));
        drop(ctx.span("engine.reorder"));
        ctx.instant("engine.coalesced");
        let text = rec.snapshot().summary();
        assert!(text.contains("engine.reorder"), "{text}");
        assert!(text.contains("engine.coalesced"), "{text}");
        assert!(text.contains("0 dropped"), "{text}");
    }

    #[test]
    fn summary_imbalance_covers_multiple_lanes() {
        let rec = FlightRecorder::new(256);
        let ctx = rec.start_trace();
        let root = ctx.span("spmv.measure");
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let child = root.ctx();
                std::thread::spawn(move || {
                    let mut s = child.span("spmv.team.compute");
                    s.arg("lane", 1u64);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(root);
        let text = rec.snapshot().summary();
        assert!(text.contains("worker imbalance:"), "{text}");
        assert!(text.contains("2 lanes"), "{text}");
    }
}
