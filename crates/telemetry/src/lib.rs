//! # telemetry — the workspace's observability subsystem
//!
//! The paper's contribution is careful *measurement* (§4.1's 100-rep
//! SpMV protocol, per-thread nnz imbalance, Table 5's reordering
//! wall-clock). This crate gives every layer of the workspace one
//! consistent instrumentation surface for the same discipline at
//! serving time:
//!
//! - **Counters and gauges** ([`Counter`], [`Gauge`]) — single relaxed
//!   atomics; a few nanoseconds per event.
//! - **Histograms** ([`Histogram`]) — log-linear buckets (16 per power
//!   of two, ≤ 6.25% quantisation) with exact count/sum/min/max,
//!   lock-free concurrent recording, and shard **merging** so a
//!   measurement loop can aggregate locally and fold into the registry
//!   once.
//! - **Spans** ([`Span`]) — RAII timers recording into a named
//!   histogram on drop, nesting via a thread-local stack
//!   (`engine.submit → reorder.rcm → spmv.measure`). With spans
//!   disabled on a registry they never read the clock, bounding idle
//!   overhead (asserted against a real SpMV loop in `crates/spmv`).
//! - **Exporters** — JSON snapshots and Prometheus text exposition
//!   ([`Snapshot::to_json`], [`Snapshot::to_prometheus`]), plus a
//!   periodic stdout [`Reporter`] for long sweeps.
//! - **Flight recorder** ([`trace`]) — request-scoped tracing: per-
//!   thread drop-oldest event rings, a [`TraceCtx`] propagation handle
//!   that crosses threads with explicit parenting, and Chrome-trace/
//!   Perfetto JSON plus plain-text summary exporters
//!   ([`TraceSnapshot::to_chrome_json`], [`TraceSnapshot::summary`]).
//! - **Stage board** ([`stage()`], [`sample_stages`]) — every open
//!   [`Span`] (and explicit [`StageGuard`]) publishes its label on a
//!   process-global per-thread stack while a profiling
//!   [`StageSession`] is active, so a sampler can ask "what stage is
//!   every thread in right now" and fold the answers into a live
//!   flamegraph. Disabled (the default), publishing costs one relaxed
//!   atomic load.
//!
//! Metric names are dotted lowercase paths (`engine.cache.hits`);
//! every duration histogram records **nanoseconds**. The full naming
//! scheme and export schemas are documented in the repository README
//! under "Observability".
//!
//! ```
//! use telemetry::Registry;
//!
//! let registry = Registry::new_arc();
//! let hits = registry.counter("engine.cache.hits");
//! hits.add(3);
//! {
//!     let _span = registry.span("reorder.rcm");
//!     // ... timed work ...
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("engine.cache.hits"), Some(3));
//! assert_eq!(snap.histogram("reorder.rcm").unwrap().count, 1);
//! assert!(snap.to_json().contains("\"engine.cache.hits\":3"));
//! assert!(snap.to_prometheus().contains("engine_cache_hits 3"));
//! ```
//!
//! Production paths share [`Registry::global`]; tests that assert
//! exact counts build private registries so parallel tests cannot
//! interleave.

mod chrome;
mod export;
mod histogram;
mod metrics;
mod registry;
mod report;
mod span;
pub mod stage;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge};
pub use registry::{series_name, Registry, Snapshot};
pub use report::{compact_line, Reporter};
pub use span::{current_depth, current_path, Span};
pub use stage::{sample_stages, stage, stages_enabled, StageGuard, StageSession};
pub use trace::{ArgValue, FlightRecorder, TraceCtx, TraceSnapshot, TraceSpan};

use std::sync::Arc;

/// The global registry's counter `name` (resolve once, keep the
/// handle).
pub fn counter(name: &str) -> Arc<Counter> {
    Registry::global().counter(name)
}

/// The global registry's gauge `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    Registry::global().gauge(name)
}

/// The global registry's histogram `name`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    Registry::global().histogram(name)
}

/// Open a span on the global registry.
pub fn span(name: &'static str) -> Span {
    Registry::global().span(name)
}

/// Snapshot the global registry.
pub fn snapshot() -> Snapshot {
    Registry::global().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_helpers_share_one_registry() {
        counter("lib.test.counter").add(2);
        gauge("lib.test.gauge").set(-1);
        histogram("lib.test.hist").record(10);
        drop(span("lib.test.span"));
        let snap = snapshot();
        assert!(snap.counter("lib.test.counter").unwrap() >= 2);
        assert_eq!(snap.gauge("lib.test.gauge"), Some(-1));
        assert!(snap.histogram("lib.test.hist").unwrap().count >= 1);
        assert!(snap.histogram("lib.test.span").unwrap().count >= 1);
    }
}
