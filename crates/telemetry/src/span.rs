//! RAII span timers.
//!
//! A span reads the clock on creation, and on drop records the elapsed
//! wall-clock into the histogram it was opened on. Spans nest: a
//! thread-local stack tracks the active labels, so
//! `engine.submit → reorder.rcm → spmv.measure` shows up as a path
//! ([`current_path`]) while each level still records into its own
//! histogram.
//!
//! When the owning registry has spans disabled
//! ([`Registry::set_spans_enabled`]), opening a span costs one relaxed
//! atomic load and records nothing — the clock is never read. That is
//! the "cheap when idle" guarantee the SpMV overhead test pins down.

use crate::histogram::Histogram;
use crate::registry::Registry;
use crate::stage::{stage, StageGuard};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The dotted path of active spans on this thread, outermost first
/// (e.g. `"engine.submit/reorder.rcm"`). Empty when no span is open.
pub fn current_path() -> String {
    SPAN_STACK.with(|s| s.borrow().join("/"))
}

/// Number of spans currently open on this thread.
pub fn current_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// An in-progress timed section. Records on drop.
#[must_use = "a span records when dropped; binding it to _ drops it immediately"]
pub struct Span {
    live: Option<SpanLive>,
}

struct SpanLive {
    start: Instant,
    hist: Arc<Histogram>,
    /// Publishes the span's label on the live stage board
    /// ([`crate::sample_stages`]) for the continuous profiler; inert
    /// (one relaxed load) unless a profiling session is active.
    _stage: StageGuard,
}

impl Span {
    /// An inert span: never reads the clock, records nothing.
    pub(crate) fn disabled() -> Span {
        Span { live: None }
    }

    pub(crate) fn enter(label: &'static str, hist: Arc<Histogram>) -> Span {
        SPAN_STACK.with(|s| s.borrow_mut().push(label));
        Span {
            live: Some(SpanLive {
                start: Instant::now(),
                hist,
                _stage: stage(label),
            }),
        }
    }

    /// True if this span is actually timing (registry had spans
    /// enabled when it was opened).
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            live.hist.record_duration(live.start.elapsed());
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

impl Registry {
    /// Open a span recording into the histogram named `name` on drop.
    ///
    /// The histogram is resolved through the registry on every call;
    /// hot paths that care should resolve once and use
    /// [`Registry::span_on`].
    pub fn span(self: &Arc<Self>, name: &'static str) -> Span {
        if !self.spans_enabled() {
            return Span::disabled();
        }
        Span::enter(name, self.histogram(name))
    }

    /// Open a span on a pre-resolved histogram handle. `label` is what
    /// shows up in [`current_path`]; the histogram keeps its registered
    /// name.
    pub fn span_on(&self, label: &'static str, hist: &Arc<Histogram>) -> Span {
        if !self.spans_enabled() {
            return Span::disabled();
        }
        Span::enter(label, Arc::clone(hist))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_its_histogram() {
        let r = Registry::new_arc();
        {
            let _s = r.span("unit.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let h = r.snapshot();
        let s = h.histogram("unit.outer").unwrap();
        assert_eq!(s.count, 1);
        assert!(s.min >= 1_000_000, "slept ≥1ms, recorded {} ns", s.min);
    }

    #[test]
    fn spans_nest_and_unwind() {
        let r = Registry::new_arc();
        assert_eq!(current_depth(), 0);
        {
            let _a = r.span("unit.a");
            assert_eq!(current_path(), "unit.a");
            {
                let _b = r.span("unit.b");
                assert_eq!(current_path(), "unit.a/unit.b");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_path(), "unit.a");
        }
        assert_eq!(current_depth(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.histogram("unit.a").unwrap().count, 1);
        assert_eq!(snap.histogram("unit.b").unwrap().count, 1);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let r = Registry::new_arc();
        r.set_spans_enabled(false);
        {
            let s = r.span("unit.off");
            assert!(!s.is_recording());
            assert_eq!(current_depth(), 0);
        }
        // The histogram was never even created.
        assert!(r.snapshot().histogram("unit.off").is_none());
        r.set_spans_enabled(true);
        drop(r.span("unit.off"));
        assert_eq!(r.snapshot().histogram("unit.off").unwrap().count, 1);
    }
}
