//! The flight recorder: request-scoped tracing with per-thread event
//! rings.
//!
//! Aggregate metrics ([`crate::Histogram`] and friends) answer "how is
//! the system doing overall"; they cannot answer "where did *this*
//! request spend its time, and which worker was the straggler". The
//! flight recorder answers that question with per-thread, drop-oldest
//! ring buffers of timestamped [`TraceEvent`]s carrying trace/span/
//! parent identifiers:
//!
//! - **[`FlightRecorder`]** owns the rings (one per thread that ever
//!   recorded, created lazily) plus the trace/span ID allocators. A
//!   thread records only into its own ring through a thread-local
//!   handle, so recording never contends with other threads; the ring
//!   mutex exists solely so snapshots can read a ring the owner is not
//!   currently writing.
//! - **[`TraceCtx`]** is the propagation handle: cheap to clone
//!   (`Arc` + two integers), `Send + Sync`, carried through the engine
//!   request lifecycle and into `ThreadTeam` dispatches. A disabled
//!   context ([`TraceCtx::disabled`]) makes every operation a no-op
//!   that never reads the clock — the same "cheap when idle"
//!   discipline as [`crate::Span`].
//! - **[`TraceSpan`]** is the RAII span: `Begin` on creation, `End`
//!   (with accumulated args) on drop, both into the ring of the thread
//!   that *opened* the span so every per-thread event stream keeps
//!   balanced Begin/End pairs. [`TraceSpan::ctx`] hands out a child
//!   context whose parent is this span — the explicit parent handle
//!   that lets events recorded on a worker thread land under the
//!   submitting thread's span instead of as orphaned roots.
//!
//! Ring overflow drops the **oldest** events and counts the drops
//! (per-ring and recorder-wide), so a long-running process keeps the
//! recent past at a bounded memory cost: `capacity × threads` events.
//! Timestamps are nanoseconds since recorder creation and are clamped
//! monotonically non-decreasing *per ring*, so each per-thread stream
//! is sorted by construction — what the Chrome-trace exporter
//! ([`TraceSnapshot::to_chrome_json`]) requires for well-nested B/E
//! pairs.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// A value attached to a span or instant event, exported under `args`
/// in the Chrome-trace JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    /// A static label (stage outcomes, kernel names, ...).
    Str(&'static str),
    /// A dynamically built label. Allocates; prefer [`ArgValue::Str`]
    /// on hot paths.
    Text(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Text(v)
    }
}

/// Event kinds, mirroring the Chrome-trace phases the exporter emits
/// (`B`, `E`, `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span begin.
    Begin,
    /// Span end (carries the span's args).
    End,
    /// A point-in-time marker.
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder was created, monotonically
    /// non-decreasing within each thread's ring.
    pub ts_ns: u64,
    pub kind: EventKind,
    /// Stage name (`engine.reorder`, `spmv.team.compute`, ...).
    pub name: &'static str,
    /// The request-scoped trace this event belongs to.
    pub trace_id: u64,
    /// This span's ID (shared by its Begin/End pair; fresh for
    /// instants).
    pub span_id: u64,
    /// The enclosing span's ID (0 = root).
    pub parent_id: u64,
    /// Attached key/value payload.
    pub args: Vec<(&'static str, ArgValue)>,
}

struct RingState {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// One thread's event ring inside a recorder.
pub(crate) struct ThreadRing {
    tid: u64,
    name: String,
    state: Mutex<RingState>,
    /// Monotonic clamp: no event in this ring may carry a timestamp
    /// earlier than the previous one (backdated begins are clamped).
    last_ts: AtomicU64,
}

impl ThreadRing {
    fn push(&self, capacity: usize, mut event: TraceEvent, recorder_drops: &AtomicU64) {
        let floor = self.last_ts.fetch_max(event.ts_ns, Ordering::Relaxed);
        event.ts_ns = event.ts_ns.max(floor);
        let mut state = self.state.lock().unwrap();
        if state.events.len() >= capacity {
            state.events.pop_front();
            state.dropped += 1;
            recorder_drops.fetch_add(1, Ordering::Relaxed);
        }
        state.events.push_back(event);
    }
}

// Per-thread cache of (recorder id → ring) so the hot path never
// touches the recorder's ring list. `Weak` so rings of dropped
// recorders do not outlive them; dead entries are pruned lazily.
thread_local! {
    static THREAD_RINGS: RefCell<Vec<(u64, Weak<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

/// Process-unique recorder IDs (thread-local cache keys).
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// The flight recorder: bounded per-thread rings of [`TraceEvent`]s.
///
/// ```
/// use telemetry::trace::FlightRecorder;
///
/// let recorder = FlightRecorder::new(1024);
/// let ctx = recorder.start_trace();
/// {
///     let mut span = ctx.span("request");
///     span.arg("matrix", "mesh2d");
///     let _child = span.ctx().span("stage");
/// }
/// let snap = recorder.snapshot();
/// assert_eq!(snap.total_events(), 4); // two Begin/End pairs
/// assert!(snap.to_chrome_json().contains("\"ph\":\"B\""));
/// ```
pub struct FlightRecorder {
    id: u64,
    /// Per-thread ring capacity, in events.
    capacity: usize,
    enabled: AtomicBool,
    /// Timestamp origin.
    epoch: Instant,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    next_tid: AtomicU64,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    dropped: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("enabled", &self.enabled())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder whose per-thread rings hold at most
    /// `capacity_per_thread` events (clamped to ≥ 8), enabled.
    pub fn new(capacity_per_thread: usize) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            capacity: capacity_per_thread.max(8),
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            next_tid: AtomicU64::new(0),
            rings: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        })
    }

    /// Master switch. While disabled, [`FlightRecorder::start_trace`]
    /// returns non-recording contexts; traces already in flight keep
    /// recording (their contexts captured the enabled decision).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// True if new traces will record.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Total events dropped to ring overflow, across all threads.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Begin a new trace: allocates a trace ID and returns the root
    /// propagation context (parent 0). Returns a disabled context when
    /// the recorder is disabled — the caller needs no second check.
    pub fn start_trace(self: &Arc<Self>) -> TraceCtx {
        if !self.enabled() {
            return TraceCtx::disabled();
        }
        TraceCtx {
            inner: Some(CtxInner {
                recorder: Arc::clone(self),
                trace_id: self.next_trace.fetch_add(1, Ordering::Relaxed),
                parent: 0,
            }),
        }
    }

    fn alloc_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn instant_ns(&self, at: Instant) -> u64 {
        u64::try_from(at.saturating_duration_since(self.epoch).as_nanos()).unwrap_or(u64::MAX)
    }

    /// The calling thread's ring, registering it on first use.
    fn ring(self: &Arc<Self>) -> Arc<ThreadRing> {
        THREAD_RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, weak)) = cache.iter().find(|(id, _)| *id == self.id) {
                if let Some(ring) = weak.upgrade() {
                    return ring;
                }
            }
            // Prune rings of recorders that no longer exist, then
            // register this thread with this recorder.
            cache.retain(|(_, weak)| weak.strong_count() > 0);
            let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let ring = Arc::new(ThreadRing {
                tid,
                name,
                state: Mutex::new(RingState {
                    events: VecDeque::with_capacity(self.capacity),
                    dropped: 0,
                }),
                last_ts: AtomicU64::new(0),
            });
            self.rings.lock().unwrap().push(Arc::clone(&ring));
            cache.push((self.id, Arc::downgrade(&ring)));
            ring
        })
    }

    fn emit(self: &Arc<Self>, ring: &ThreadRing, event: TraceEvent) {
        ring.push(self.capacity, event, &self.dropped);
    }

    /// A point-in-time copy of every ring, threads sorted by ID.
    pub fn snapshot(&self) -> TraceSnapshot {
        let rings = self.rings.lock().unwrap();
        let mut threads: Vec<ThreadEvents> = rings
            .iter()
            .map(|ring| {
                let state = ring.state.lock().unwrap();
                ThreadEvents {
                    tid: ring.tid,
                    name: ring.name.clone(),
                    dropped: state.dropped,
                    events: state.events.iter().cloned().collect(),
                }
            })
            .collect();
        threads.sort_by_key(|t| t.tid);
        TraceSnapshot {
            threads,
            dropped: self.dropped(),
        }
    }
}

#[derive(Clone)]
struct CtxInner {
    recorder: Arc<FlightRecorder>,
    trace_id: u64,
    parent: u64,
}

/// The trace propagation handle: which trace, and which span new
/// events should attach under. Clone freely; send across threads.
#[derive(Clone, Default)]
pub struct TraceCtx {
    inner: Option<CtxInner>,
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => write!(f, "TraceCtx(trace {}, parent {})", i.trace_id, i.parent),
            None => write!(f, "TraceCtx(disabled)"),
        }
    }
}

impl TraceCtx {
    /// The inert context: every operation is a no-op that never reads
    /// the clock.
    pub fn disabled() -> TraceCtx {
        TraceCtx { inner: None }
    }

    /// True if operations on this context record events.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace this context belongs to (None when disabled).
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.trace_id)
    }

    /// Open a span under this context's parent. `Begin` is recorded
    /// now; `End` on drop.
    pub fn span(&self, name: &'static str) -> TraceSpan {
        let Some(inner) = &self.inner else {
            return TraceSpan::disabled();
        };
        let recorder = &inner.recorder;
        let ring = recorder.ring();
        let span_id = recorder.alloc_span();
        recorder.emit(
            &ring,
            TraceEvent {
                ts_ns: recorder.now_ns(),
                kind: EventKind::Begin,
                name,
                trace_id: inner.trace_id,
                span_id,
                parent_id: inner.parent,
                args: Vec::new(),
            },
        );
        TraceSpan {
            live: Some(SpanLive {
                recorder: Arc::clone(recorder),
                ring,
                trace_id: inner.trace_id,
                span_id,
                parent: inner.parent,
                name,
                args: Vec::new(),
            }),
        }
    }

    /// Record a completed span in one call: `Begin` at `begin`, `End`
    /// at `end` (both clamped to this thread's ring monotonicity), args
    /// on the `End` event. This is how worker lanes record segments
    /// whose start they learned after the fact (queue waits, dispatch
    /// latencies).
    pub fn complete(
        &self,
        name: &'static str,
        begin: Instant,
        end: Instant,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let Some(inner) = &self.inner else { return };
        let recorder = &inner.recorder;
        let ring = recorder.ring();
        let span_id = recorder.alloc_span();
        let base = TraceEvent {
            ts_ns: recorder.instant_ns(begin),
            kind: EventKind::Begin,
            name,
            trace_id: inner.trace_id,
            span_id,
            parent_id: inner.parent,
            args: Vec::new(),
        };
        recorder.emit(&ring, base.clone());
        recorder.emit(
            &ring,
            TraceEvent {
                ts_ns: recorder.instant_ns(end),
                kind: EventKind::End,
                args,
                ..base
            },
        );
    }

    /// Record a point-in-time marker.
    pub fn instant(&self, name: &'static str) {
        self.instant_with(name, Vec::new());
    }

    /// Record a marker with args.
    pub fn instant_with(&self, name: &'static str, args: Vec<(&'static str, ArgValue)>) {
        let Some(inner) = &self.inner else { return };
        let recorder = &inner.recorder;
        let ring = recorder.ring();
        let span_id = recorder.alloc_span();
        recorder.emit(
            &ring,
            TraceEvent {
                ts_ns: recorder.now_ns(),
                kind: EventKind::Instant,
                name,
                trace_id: inner.trace_id,
                span_id,
                parent_id: inner.parent,
                args,
            },
        );
    }
}

struct SpanLive {
    recorder: Arc<FlightRecorder>,
    /// The ring `Begin` was recorded into; `End` goes to the same ring
    /// even if the span is dropped on another thread, keeping every
    /// per-thread stream's B/E pairs balanced.
    ring: Arc<ThreadRing>,
    trace_id: u64,
    span_id: u64,
    parent: u64,
    name: &'static str,
    args: Vec<(&'static str, ArgValue)>,
}

/// An open trace span: records `End` (with args) when dropped.
#[must_use = "a trace span records its End when dropped; binding it to _ drops it immediately"]
pub struct TraceSpan {
    live: Option<SpanLive>,
}

impl TraceSpan {
    /// An inert span (from a disabled context): drops silently, hands
    /// out disabled child contexts.
    pub fn disabled() -> TraceSpan {
        TraceSpan { live: None }
    }

    /// True if this span will record an `End` event.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }

    /// Attach a key/value to this span (exported on the `End` event).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(live) = &mut self.live {
            live.args.push((key, value.into()));
        }
    }

    /// A child context parented at this span — the explicit parent
    /// handle for cross-thread attribution: clone it, move it to a
    /// worker, and the worker's events nest under this span instead of
    /// becoming orphaned roots.
    pub fn ctx(&self) -> TraceCtx {
        match &self.live {
            Some(live) => TraceCtx {
                inner: Some(CtxInner {
                    recorder: Arc::clone(&live.recorder),
                    trace_id: live.trace_id,
                    parent: live.span_id,
                }),
            },
            None => TraceCtx::disabled(),
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            live.recorder.emit(
                &live.ring,
                TraceEvent {
                    ts_ns: live.recorder.now_ns(),
                    kind: EventKind::End,
                    name: live.name,
                    trace_id: live.trace_id,
                    span_id: live.span_id,
                    parent_id: live.parent,
                    args: live.args,
                },
            );
        }
    }
}

/// One thread's events in a snapshot, in recording order (which is
/// also timestamp order — the ring clamps timestamps monotonically).
#[derive(Debug, Clone)]
pub struct ThreadEvents {
    /// Recorder-scoped thread ordinal (stable lane number).
    pub tid: u64,
    /// OS thread name at registration.
    pub name: String,
    /// Events dropped from this ring.
    pub dropped: u64,
    pub events: Vec<TraceEvent>,
}

/// A point-in-time copy of a recorder's rings.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Per-thread event streams, sorted by `tid`.
    pub threads: Vec<ThreadEvents>,
    /// Recorder-wide drop count.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Total events across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// True if no thread recorded anything.
    pub fn is_empty(&self) -> bool {
        self.total_events() == 0
    }

    /// The events of one trace only (threads with no matching events
    /// are omitted). Begin/End pairs stay balanced: both halves of a
    /// span carry the same trace ID.
    pub fn filter_trace(&self, trace_id: u64) -> TraceSnapshot {
        TraceSnapshot {
            threads: self
                .threads
                .iter()
                .filter_map(|t| {
                    let events: Vec<TraceEvent> = t
                        .events
                        .iter()
                        .filter(|e| e.trace_id == trace_id)
                        .cloned()
                        .collect();
                    (!events.is_empty()).then(|| ThreadEvents {
                        tid: t.tid,
                        name: t.name.clone(),
                        dropped: t.dropped,
                        events,
                    })
                })
                .collect(),
            dropped: self.dropped,
        }
    }

    /// Iterate over every event (thread by thread).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.threads.iter().flat_map(|t| t.events.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_with_parent_ids() {
        let rec = FlightRecorder::new(256);
        let ctx = rec.start_trace();
        {
            let root = ctx.span("root");
            let _child = root.ctx().span("child");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.total_events(), 4);
        let events = &snap.threads[0].events;
        let root_begin = &events[0];
        let child_begin = &events[1];
        assert_eq!(root_begin.name, "root");
        assert_eq!(root_begin.parent_id, 0);
        assert_eq!(child_begin.parent_id, root_begin.span_id);
        assert_eq!(child_begin.trace_id, root_begin.trace_id);
        // Drop order: child ends before root.
        assert_eq!(events[2].kind, EventKind::End);
        assert_eq!(events[2].span_id, child_begin.span_id);
        assert_eq!(events[3].span_id, root_begin.span_id);
    }

    #[test]
    fn parent_handle_crosses_threads() {
        let rec = FlightRecorder::new(256);
        let ctx = rec.start_trace();
        let root = ctx.span("submit");
        let child_ctx = root.ctx();
        let root_span_id = {
            let snap = rec.snapshot();
            snap.threads[0].events[0].span_id
        };
        std::thread::spawn(move || {
            let mut s = child_ctx.span("worker.stage");
            s.arg("lane", 1u64);
        })
        .join()
        .unwrap();
        drop(root);
        let snap = rec.snapshot();
        // Two rings: the main thread and the worker.
        assert_eq!(snap.threads.len(), 2);
        let worker_events = &snap.threads[1].events;
        assert_eq!(worker_events[0].name, "worker.stage");
        assert_eq!(
            worker_events[0].parent_id, root_span_id,
            "worker span must attach under the submitting span, not as an orphan root"
        );
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let rec = FlightRecorder::new(16);
        let ctx = rec.start_trace();
        for i in 0..100u64 {
            ctx.instant_with("tick", vec![("i", ArgValue::U64(i))]);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.threads[0].events.len(), 16);
        assert_eq!(snap.threads[0].dropped, 84);
        assert_eq!(rec.dropped(), 84);
        // The survivors are the newest events, in order.
        let is: Vec<u64> = snap.threads[0]
            .events
            .iter()
            .map(|e| match e.args[0].1 {
                ArgValue::U64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(is, (84..100).collect::<Vec<u64>>());
    }

    #[test]
    fn disabled_recorder_and_ctx_record_nothing() {
        let rec = FlightRecorder::new(64);
        rec.set_enabled(false);
        let ctx = rec.start_trace();
        assert!(!ctx.is_recording());
        {
            let mut s = ctx.span("nope");
            assert!(!s.is_recording());
            s.arg("k", 1u64);
            let _child = s.ctx().span("nested.nope");
            ctx.instant("nope");
        }
        assert!(rec.snapshot().is_empty());
        // Re-enabling affects new traces.
        rec.set_enabled(true);
        drop(rec.start_trace().span("yes"));
        assert_eq!(rec.snapshot().total_events(), 2);
    }

    #[test]
    fn filter_trace_separates_interleaved_traces() {
        let rec = FlightRecorder::new(256);
        let a = rec.start_trace();
        let b = rec.start_trace();
        drop(a.span("a.work"));
        drop(b.span("b.work"));
        drop(a.span("a.more"));
        let snap = rec.snapshot();
        let only_a = snap.filter_trace(a.trace_id().unwrap());
        assert_eq!(only_a.total_events(), 4);
        assert!(only_a.events().all(|e| e.name.starts_with("a.")));
        let only_b = snap.filter_trace(b.trace_id().unwrap());
        assert_eq!(only_b.total_events(), 2);
    }

    #[test]
    fn complete_clamps_backdated_timestamps_monotone() {
        let rec = FlightRecorder::new(64);
        let ctx = rec.start_trace();
        let early = Instant::now();
        drop(ctx.span("first"));
        // `early` predates the events already recorded; the ring clamp
        // must keep the stream monotone.
        ctx.complete("backdated", early, Instant::now(), Vec::new());
        let snap = rec.snapshot();
        let ts: Vec<u64> = snap.threads[0].events.iter().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps {ts:?}");
    }

    #[test]
    fn default_ctx_is_disabled() {
        let ctx = TraceCtx::default();
        assert!(!ctx.is_recording());
        assert_eq!(ctx.trace_id(), None);
    }
}
