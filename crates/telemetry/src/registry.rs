//! The metrics registry: a name → metric map handing out shared
//! handles.
//!
//! Callers resolve a metric once (`registry.counter("engine.cache.hits")`)
//! and keep the `Arc` handle; the hot path then touches only that
//! handle's atomics, never the registry lock. Names are dotted
//! lowercase paths (see the README's "Observability" section for the
//! scheme); resolving an existing name returns the existing metric, so
//! independent components observing the same event share one series.
//!
//! [`Registry::global`] is the process-wide instance every production
//! path uses. Tests that need exact counts construct private
//! registries ([`Registry::new_arc`]) so parallel tests cannot
//! interleave.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Build a labeled series name: `base{k="v",k2="v2"}` (Prometheus
/// label syntax, embedded in the registry key). Metrics that would
/// otherwise collide when several instances of a component share one
/// registry — e.g. the pool queue-depth gauge of every engine shard —
/// become distinct series by labeling them (`shard="0"`, `shard="1"`).
///
/// Label keys are sanitised to `[A-Za-z0-9_]`; values are escaped per
/// the Prometheus text exposition rules (`\\`, `\"`, `\n`). An empty
/// label set returns `base` unchanged, so unlabeled callers pay
/// nothing.
///
/// ```
/// assert_eq!(
///     telemetry::series_name("engine.pool.queue_depth", &[("shard", "3")]),
///     "engine.pool.queue_depth{shard=\"3\"}"
/// );
/// assert_eq!(telemetry::series_name("plain", &[]), "plain");
/// ```
pub fn series_name(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        for c in k.chars() {
            out.push(if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            });
        }
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    /// Base metric name → human description, emitted as `# HELP` lines
    /// by the Prometheus exporter. Keyed by **base** name (no label
    /// block): all series of one base share a description.
    help: Mutex<BTreeMap<String, String>>,
    /// Span switch: when false, [`Registry::span`] returns inert spans
    /// that never read the clock (the "cheap when idle" guarantee).
    /// Counters, gauges and direct histogram recording stay live.
    spans_enabled: AtomicBool,
}

impl Registry {
    /// A fresh, empty registry with spans enabled.
    pub fn new() -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
            help: Mutex::new(BTreeMap::new()),
            spans_enabled: AtomicBool::new(true),
        }
    }

    /// Attach a human description to the **base** metric name `base`
    /// (no label block), surfaced as a `# HELP` line in the Prometheus
    /// exposition. Describing the same base again overwrites.
    pub fn describe(&self, base: &str, description: &str) {
        self.help
            .lock()
            .unwrap()
            .insert(base.to_string(), description.to_string());
    }

    /// A fresh registry behind an `Arc` (the shape every consumer
    /// stores).
    pub fn new_arc() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    /// The process-wide registry.
    pub fn global() -> Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(Registry::new_arc))
    }

    /// Enable or disable span timing on this registry.
    pub fn set_spans_enabled(&self, enabled: bool) {
        self.spans_enabled.store(enabled, Ordering::Relaxed);
    }

    /// True if spans on this registry time themselves.
    #[inline]
    pub fn spans_enabled(&self) -> bool {
        self.spans_enabled.load(Ordering::Relaxed)
    }

    /// Resolve (or create) the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type —
    /// that is a programming error worth failing loudly on.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// Resolve (or create) the gauge `name`. Panics on a type clash
    /// like [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// Resolve (or create) the histogram `name`. Panics on a type
    /// clash like [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// Resolve (or create) the counter `base` carrying `labels` —
    /// a distinct series per label set (see [`series_name`]).
    pub fn counter_labeled(&self, base: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter(&series_name(base, labels))
    }

    /// Resolve (or create) the gauge `base` carrying `labels`. This is
    /// how per-shard instances of one component keep distinct gauges
    /// (e.g. `engine.pool.queue_depth{shard="2"}`) instead of
    /// colliding on a single global series.
    pub fn gauge_labeled(&self, base: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.gauge(&series_name(base, labels))
    }

    /// Resolve (or create) the histogram `base` carrying `labels`
    /// (e.g. per-tenant latency: `tier.request{tenant="t0"}`).
    pub fn histogram_labeled(&self, base: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(&series_name(base, labels))
    }

    /// Look up the histogram `name` **without creating it**. Live
    /// readers (e.g. the amortization ledger polling `reorder.<algo>`
    /// or `serve.spmv`) use this so that probing a series that was
    /// never recorded does not materialise an empty metric in every
    /// export.
    pub fn find_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Histogram(h)) => Some(Arc::clone(h)),
            _ => None,
        }
    }

    /// Look up the counter `name` without creating it (see
    /// [`Registry::find_histogram`]).
    pub fn find_counter(&self, name: &str) -> Option<Arc<Counter>> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Counter(c)) => Some(Arc::clone(c)),
            _ => None,
        }
    }

    /// Look up the gauge `name` without creating it (see
    /// [`Registry::find_histogram`]).
    pub fn find_gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Gauge(g)) => Some(Arc::clone(g)),
            _ => None,
        }
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name (the exporters' input).
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap();
        let mut snap = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap.help = self
            .help
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        snap
    }
}

/// Everything the registry knew at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(base name, description)` for every described metric, sorted
    /// by base name (the exporter's `# HELP` source).
    pub help: Vec<(String, String)>,
}

impl Snapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Look up a labeled counter series.
    pub fn counter_labeled(&self, base: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counter(&series_name(base, labels))
    }

    /// Look up a labeled gauge series.
    pub fn gauge_labeled(&self, base: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauge(&series_name(base, labels))
    }

    /// Look up a labeled histogram series.
    pub fn histogram_labeled(
        &self,
        base: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        self.histogram(&series_name(base, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_the_metric() {
        let r = Registry::new();
        r.counter("a.b").add(3);
        r.counter("a.b").add(4);
        assert_eq!(r.counter("a.b").get(), 7);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn type_clash_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z.count").inc();
        r.gauge("m.depth").set(-2);
        r.histogram("a.lat").record(10);
        let s = r.snapshot();
        assert_eq!(s.counter("z.count"), Some(1));
        assert_eq!(s.gauge("m.depth"), Some(-2));
        assert_eq!(s.histogram("a.lat").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn find_does_not_create_and_shares_handles() {
        let r = Registry::new();
        assert!(r.find_histogram("never.recorded").is_none());
        assert!(r.find_counter("never.recorded").is_none());
        assert!(r.find_gauge("never.recorded").is_none());
        // Probing must not have materialised empty series.
        assert!(r.snapshot().histograms.is_empty());
        assert!(r.snapshot().counters.is_empty());
        let h = r.histogram("real.series");
        h.record(42);
        let found = r.find_histogram("real.series").expect("registered");
        assert!(Arc::ptr_eq(&h, &found));
        assert_eq!(found.sum(), 42);
        // Type-mismatched finds return None rather than panicking.
        let _ = r.counter("typed.counter");
        assert!(r.find_histogram("typed.counter").is_none());
        assert!(r.find_counter("typed.counter").is_some());
    }

    #[test]
    fn global_is_one_instance() {
        let a = Registry::global();
        let b = Registry::global();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labeled_series_do_not_collide() {
        let r = Registry::new();
        let g0 = r.gauge_labeled("engine.pool.queue_depth", &[("shard", "0")]);
        let g1 = r.gauge_labeled("engine.pool.queue_depth", &[("shard", "1")]);
        g0.set(3);
        g1.set(7);
        assert_eq!(g0.get(), 3, "per-shard gauges must be distinct series");
        let snap = r.snapshot();
        assert_eq!(
            snap.gauge_labeled("engine.pool.queue_depth", &[("shard", "0")]),
            Some(3)
        );
        assert_eq!(
            snap.gauge_labeled("engine.pool.queue_depth", &[("shard", "1")]),
            Some(7)
        );
        // The unlabeled name is its own (absent) series.
        assert_eq!(snap.gauge("engine.pool.queue_depth"), None);
        // Same labels resolve to the same underlying metric.
        let again = r.gauge_labeled("engine.pool.queue_depth", &[("shard", "0")]);
        assert!(Arc::ptr_eq(&g0, &again));
    }

    #[test]
    fn series_name_sanitises_keys_and_escapes_values() {
        assert_eq!(
            series_name("c", &[("bad-key", "a\"b\\c\nd")]),
            "c{bad_key=\"a\\\"b\\\\c\\nd\"}"
        );
        assert_eq!(
            series_name("c", &[("a", "1"), ("b", "2")]),
            "c{a=\"1\",b=\"2\"}"
        );
    }
}
