//! Scalar metrics: monotonic counters and signed gauges.
//!
//! Both are single atomics with relaxed ordering — the fast path is one
//! `fetch_add`, so instrumented hot loops pay a few nanoseconds per
//! event. Snapshots are point-in-time reads; per-event exactness across
//! metrics is explicitly not promised (nor needed for reporting).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The process-wide `telemetry.underflow` counter, bumped whenever a
/// [`Gauge::dec`] would have taken the gauge negative. Resolved lazily
/// so creating gauges never touches the global registry.
fn underflow_counter() -> &'static Arc<Counter> {
    static UNDERFLOW: OnceLock<Arc<Counter>> = OnceLock::new();
    UNDERFLOW.get_or_init(|| crate::Registry::global().counter("telemetry.underflow"))
}

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, resident bytes, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one, saturating at zero. A `dec` that would have taken
    /// the gauge negative is an instrumentation bug (a release without
    /// a matching acquire), so instead of corrupting the reading it
    /// leaves the gauge untouched and bumps the global
    /// `telemetry.underflow` counter. Signed values remain reachable
    /// through [`Gauge::add`] / [`Gauge::set`] for gauges that are
    /// legitimately bidirectional.
    #[inline]
    pub fn dec(&self) {
        let res = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                if v > 0 {
                    Some(v - 1)
                } else {
                    None
                }
            });
        if res.is_err() {
            underflow_counter().inc();
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_goes_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    /// Regression: `dec` below zero saturates instead of going
    /// negative, and each refused decrement is counted in the global
    /// `telemetry.underflow` counter.
    #[test]
    fn dec_saturates_at_zero_and_counts_underflow() {
        let g = Gauge::new();
        let before = underflow_counter().get();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 0);
        for _ in 0..3 {
            g.dec();
        }
        assert_eq!(g.get(), 0, "dec must never take a gauge negative");
        // ≥ rather than == : the underflow counter is process-global
        // and other parallel tests may also bump it.
        assert!(
            underflow_counter().get() >= before + 3,
            "underflow counter must record refused decrements"
        );
        // A gauge made negative explicitly stays pinned there by dec
        // (dec only moves positive values), still counting underflows.
        g.set(-2);
        g.dec();
        assert_eq!(g.get(), -2);
    }

    /// Satellite requirement: concurrent increments from ≥8 threads
    /// lose no updates.
    #[test]
    fn concurrent_increments_lose_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let c = Counter::new();
        let g = Gauge::new();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..PER_THREAD {
                        c.inc();
                        if i % 2 == 0 {
                            g.inc();
                        } else {
                            g.dec();
                        }
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
        assert_eq!(g.get(), 0);
    }
}
