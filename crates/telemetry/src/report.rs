//! The periodic reporter: a background thread printing compact
//! registry summaries at a fixed interval, for watching long sweeps.
//!
//! One line per tick, e.g.
//!
//! ```text
//! telemetry: engine.cache.hits=420 engine.pool.queue_depth=3 | reorder.rcm n=12 p50=1.2ms p99=3.4ms
//! ```
//!
//! Stop it explicitly with [`Reporter::stop`] or let `Drop` do it; the
//! final tick is always emitted on stop so short runs still produce
//! output.

use crate::registry::{Registry, Snapshot};
use std::io::Write;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Human-scale duration formatting for nanosecond quantities.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// One compact line summarising a snapshot (no trailing newline).
pub fn compact_line(snapshot: &Snapshot) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (name, v) in &snapshot.counters {
        parts.push(format!("{name}={v}"));
    }
    for (name, v) in &snapshot.gauges {
        parts.push(format!("{name}={v}"));
    }
    let mut hists: Vec<String> = Vec::new();
    for (name, h) in &snapshot.histograms {
        if h.count > 0 {
            hists.push(format!(
                "{name} n={} p50={} p99={}",
                h.count,
                fmt_ns(h.p50),
                fmt_ns(h.p99)
            ));
        }
    }
    let mut line = String::from("telemetry: ");
    line.push_str(&parts.join(" "));
    if !hists.is_empty() {
        if !parts.is_empty() {
            line.push_str(" | ");
        }
        line.push_str(&hists.join(" | "));
    }
    line
}

/// A running periodic reporter. Dropping it stops the thread.
pub struct Reporter {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Reporter {
    /// Report `registry` to stdout every `interval`.
    pub fn start(registry: Arc<Registry>, interval: Duration) -> Reporter {
        Reporter::start_with(registry, interval, std::io::stdout())
    }

    /// Report to an arbitrary writer (tests, log files).
    pub fn start_with<W: Write + Send + 'static>(
        registry: Arc<Registry>,
        interval: Duration,
        mut writer: W,
    ) -> Reporter {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("telemetry-reporter".to_string())
            .spawn(move || {
                let (lock, cv) = &*thread_stop;
                let mut stopped = lock.lock().unwrap();
                loop {
                    // Re-check the flag before every wait: a stop that
                    // lands before this thread first parks would have
                    // its notification lost, and the wait would then
                    // sit out the whole interval. A spurious wakeup
                    // just prints an extra early tick; shutdown is
                    // decided by the flag alone.
                    if !*stopped {
                        let (guard, _timeout) = cv.wait_timeout(stopped, interval).unwrap();
                        stopped = guard;
                    }
                    let line = compact_line(&registry.snapshot());
                    let _ = writeln!(writer, "{line}");
                    let _ = writer.flush();
                    if *stopped {
                        return;
                    }
                }
            })
            .expect("spawning the telemetry reporter thread");
        Reporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the reporter, emitting one final line first.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            let (lock, cv) = &*self.stop;
            *lock.lock().unwrap() = true;
            cv.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer the test can inspect after the reporter stops.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn reporter_emits_lines_and_stops() {
        let r = Registry::new_arc();
        r.counter("tick.count").add(5);
        r.histogram("tick.lat").record(1500);
        let buf = SharedBuf::default();
        let reporter = Reporter::start_with(Arc::clone(&r), Duration::from_millis(5), buf.clone());
        std::thread::sleep(Duration::from_millis(30));
        reporter.stop();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("tick.count=5"), "got: {text}");
        assert!(text.contains("tick.lat n=1 p50=1.5us"), "got: {text}");
        assert!(text.lines().count() >= 2, "expected several ticks: {text}");
    }

    #[test]
    fn stop_is_prompt_even_with_long_interval() {
        let r = Registry::new_arc();
        let buf = SharedBuf::default();
        let t0 = std::time::Instant::now();
        let reporter = Reporter::start_with(r, Duration::from_secs(3600), buf.clone());
        reporter.stop();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "stop must not wait out the interval"
        );
        // The final flush still happened.
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.starts_with("telemetry:"), "got: {text}");
    }

    #[test]
    fn compact_line_formats_durations() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
