//! Log-linear bucketed histograms with exact count/sum/min/max and
//! bucket-accurate quantiles.
//!
//! Values are unsigned integers in whatever unit the metric declares
//! (this workspace's convention: **nanoseconds** for every duration
//! histogram, see the README's metric naming scheme). Buckets follow
//! the HdrHistogram layout: each power of two is split into
//! `2^SUB_BITS = 16` linear sub-buckets, so the relative quantisation
//! error is at most 1/16 ≈ 6.25% — "within one bucket" — while the
//! whole `u64` range fits in under a thousand buckets (8 KiB).
//!
//! Every bucket is an `AtomicU64`, so a single histogram can be
//! recorded into from many threads without locks, and two histograms
//! can be **merged** ([`Histogram::merge_from`]): shard per thread or
//! per measurement, then fold the shards into the registry's histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: 16 linear buckets per power of two.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Index of the last bucket (value `u64::MAX` lands here).
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB;

/// Bucket index for a value (log-linear, monotone in `value`).
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS
    let block = (msb - SUB_BITS + 1) as usize;
    (block << SUB_BITS) + ((value >> (msb - SUB_BITS)) as usize & (SUB - 1))
}

/// Inclusive lower bound of a bucket.
fn bucket_lower(index: usize) -> u64 {
    if index < SUB {
        return index as u64;
    }
    let block = (index >> SUB_BITS) as u32;
    let sub = (index & (SUB - 1)) as u64;
    let msb = block + SUB_BITS - 1;
    (1u64 << msb) + (sub << (msb - SUB_BITS))
}

/// Width of a bucket (distance to the next bucket's lower bound).
fn bucket_width(index: usize) -> u64 {
    if index < SUB {
        return 1;
    }
    let block = (index >> SUB_BITS) as u32;
    1u64 << (block - 1)
}

/// A concurrent log-linear histogram.
///
/// `count`, `sum`, `min` and `max` are tracked exactly, so the mean and
/// extrema carry no quantisation error; quantiles are accurate to one
/// bucket (≤ 6.25% relative).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Last exemplar: an observed value and the trace ID of the request
    /// that produced it (0 = none yet). Two independent relaxed atomics
    /// — a racing pair of exemplar writers can interleave value and
    /// trace, which is acceptable for a debugging breadcrumb and keeps
    /// the hot path lock-free.
    exemplar_value: AtomicU64,
    exemplar_trace: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("mean", &self.mean())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplar_value: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in this workspace's duration unit
    /// (nanoseconds), clamped to at least 1 so a sub-nanosecond timing
    /// still counts.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.record(nanos.max(1));
    }

    /// Record a value and remember it as this series' **exemplar**:
    /// a concrete observation tied to the flight-recorder trace that
    /// produced it, exported in the JSON snapshot so "p99 is high" can
    /// be answered with "look at trace N". Last writer wins.
    #[inline]
    pub fn record_exemplar(&self, value: u64, trace_id: u64) {
        self.record(value);
        if trace_id != 0 {
            self.exemplar_value.store(value, Ordering::Relaxed);
            self.exemplar_trace.store(trace_id, Ordering::Relaxed);
        }
    }

    /// [`Histogram::record_duration`] with an exemplar trace ID (see
    /// [`Histogram::record_exemplar`]).
    #[inline]
    pub fn record_duration_exemplar(&self, d: Duration, trace_id: u64) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.record_exemplar(nanos.max(1), trace_id);
    }

    /// The last recorded exemplar, as `(value, trace_id)`; `None`
    /// until any exemplar is recorded.
    pub fn exemplar(&self) -> Option<(u64, u64)> {
        let trace = self.exemplar_trace.load(Ordering::Relaxed);
        (trace != 0).then(|| (self.exemplar_value.load(Ordering::Relaxed), trace))
    }

    /// Number of recorded values **below the bucket containing
    /// `threshold`** — the bucket-accurate count of observations under
    /// a latency objective. Values sharing `threshold`'s bucket are
    /// excluded (a conservative undercount bounded by one bucket,
    /// ≤ 6.25% relative — the same quantisation as the quantiles), so
    /// an SLO's "good" count never claims observations that may have
    /// breached the threshold.
    pub fn count_below(&self, threshold: u64) -> u64 {
        self.buckets[..bucket_index(threshold)]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), accurate to one bucket: the
    /// midpoint of the bucket holding the rank-`ceil(q·count)` value,
    /// clamped to the exact observed `[min, max]`. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let mid = bucket_lower(i).saturating_add(bucket_width(i) / 2);
                return mid.clamp(self.min(), self.max());
            }
        }
        // Racy concurrent recording can leave `count` ahead of the
        // bucket sums for a moment; report the largest observed value.
        self.max()
    }

    /// Merge all of `other`'s recordings into `self` (shard fold).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = other.count.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The 99.9th percentile (see [`Histogram::quantile`]).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Exact cumulative sum in **seconds**, assuming this histogram
    /// follows the workspace convention of recording nanoseconds.
    /// Amortization accounting (the `policy` crate's ledger) reads
    /// cumulative SpMV and reorder time through this instead of
    /// re-parsing JSON exports.
    pub fn sum_seconds(&self) -> f64 {
        self.sum() as f64 / 1e9
    }

    /// Exact mean in **seconds** (0.0 when empty), under the same
    /// nanosecond convention as [`Histogram::sum_seconds`].
    pub fn mean_seconds(&self) -> f64 {
        self.mean() / 1e9
    }

    /// A consistent point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            exemplar: self.exemplar(),
        }
    }
}

/// Point-in-time histogram summary used by the exporters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Exact mean (0.0 when empty).
    pub mean: f64,
    /// Median, accurate to one bucket.
    pub p50: u64,
    /// 90th percentile, accurate to one bucket.
    pub p90: u64,
    /// 99th percentile, accurate to one bucket.
    pub p99: u64,
    /// 99.9th percentile, accurate to one bucket.
    pub p999: u64,
    /// Last `(value, trace_id)` exemplar, if any was recorded.
    pub exemplar: Option<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_layout_is_monotone_and_exhaustive() {
        // Lower bounds must be strictly increasing and index() must be
        // the inverse of lower() on bucket boundaries.
        for i in 1..NUM_BUCKETS {
            assert!(bucket_lower(i) > bucket_lower(i - 1), "bucket {i}");
            assert_eq!(bucket_index(bucket_lower(i)), i, "bucket {i}");
            assert_eq!(
                bucket_lower(i - 1) + bucket_width(i - 1),
                bucket_lower(i),
                "bucket {i} width"
            );
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_statistics() {
        let h = Histogram::new();
        for v in [5u64, 10, 15, 1000, 2] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1032);
        assert_eq!(h.min(), 2);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 206.4).abs() < 1e-9);
    }

    #[test]
    fn count_sum_and_seconds_accessors() {
        // The amortization ledger's read path: count/sum must be exact
        // (no bucket quantisation) and the seconds views must follow
        // the nanosecond convention.
        let h = Histogram::new();
        assert_eq!((h.count(), h.sum()), (0, 0));
        assert_eq!(h.sum_seconds(), 0.0);
        assert_eq!(h.mean_seconds(), 0.0);
        h.record_duration(Duration::from_millis(2));
        h.record_duration(Duration::from_millis(6));
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 8_000_000);
        assert!((h.sum_seconds() - 0.008).abs() < 1e-12);
        assert!((h.mean_seconds() - 0.004).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50, s.p99, s.p999),
            (0, 0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn p999_tracks_the_tail() {
        let h = Histogram::new();
        // 99 fast events and one 100x outlier: p99 must stay near the
        // bulk (rank 99 of 100) while p999 (rank 100) reaches the tail.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(100_000);
        assert!(h.quantile(0.99) < 2_000, "p99 {}", h.quantile(0.99));
        assert!(h.p999() >= 90_000, "p999 {}", h.p999());
        assert_eq!(h.snapshot().p999, h.p999());
    }

    #[test]
    fn merge_is_sum_of_parts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..100u64 {
            a.record(v);
            b.record(v * 1000);
        }
        let merged = Histogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.min(), 1);
        assert_eq!(merged.max(), 99_000);
        // Merging an empty histogram changes nothing, including min.
        merged.merge_from(&Histogram::new());
        assert_eq!(merged.min(), 1);
        assert_eq!(merged.count(), a.count() + b.count());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i + 1);
                    }
                });
            }
        });
        assert_eq!(h.count(), THREADS * PER_THREAD);
        let n = THREADS * PER_THREAD;
        assert_eq!(h.sum(), n * (n + 1) / 2);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), n);
    }

    #[test]
    fn count_below_is_bucket_accurate_and_conservative() {
        let h = Histogram::new();
        for v in [1u64, 5, 10, 100, 1_000, 1_000_000] {
            h.record(v);
        }
        // Small values land in exact (width-1) buckets: precise counts.
        assert_eq!(h.count_below(1), 0);
        assert_eq!(h.count_below(2), 1);
        assert_eq!(h.count_below(10), 2);
        assert_eq!(h.count_below(11), 3);
        // Everything below a huge threshold counts.
        assert_eq!(h.count_below(u64::MAX), 6);
        // Conservative: a value sharing the threshold's bucket is
        // excluded, never over-counted as "good".
        let same_bucket = 1_000_000 + 1;
        assert_eq!(bucket_index(same_bucket), bucket_index(1_000_000));
        assert_eq!(h.count_below(same_bucket), 5);
    }

    #[test]
    fn exemplar_tracks_last_traced_observation() {
        let h = Histogram::new();
        assert_eq!(h.exemplar(), None);
        h.record(10); // untraced recording leaves no exemplar
        assert_eq!(h.exemplar(), None);
        h.record_exemplar(500, 7);
        h.record_duration_exemplar(Duration::from_nanos(900), 9);
        assert_eq!(h.exemplar(), Some((900, 9)));
        assert_eq!(h.count(), 3, "exemplar recordings still count");
        assert_eq!(h.snapshot().exemplar, Some((900, 9)));
        // trace_id 0 means "not traced": value recorded, exemplar kept.
        h.record_exemplar(123, 0);
        assert_eq!(h.exemplar(), Some((900, 9)));
    }

    /// Exact quantile of a sorted sample at the same rank the histogram
    /// uses.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Satellite requirement: histogram quantiles land within one
        /// bucket of the exact quantiles on arbitrary distributions.
        #[test]
        fn quantiles_within_one_bucket_of_exact(
            values in proptest::collection::vec(1u64..1_000_000_000, 1..400)
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.9, 0.99, 0.999] {
                let exact = exact_quantile(&sorted, q);
                let est = h.quantile(q);
                let (be, bq) = (bucket_index(exact), bucket_index(est));
                prop_assert!(
                    be.abs_diff(bq) <= 1,
                    "q={q}: exact {exact} (bucket {be}) vs estimate {est} (bucket {bq})"
                );
            }
        }

        /// Satellite requirement: folding per-rep shards into one
        /// histogram observation-by-observation is indistinguishable
        /// from recording the concatenated stream into a single
        /// histogram — exact count and sum, and identical bucket
        /// occupancy (hence identical quantiles at every q).
        #[test]
        fn shard_merge_equals_concatenated_stream(
            shards in proptest::collection::vec(
                proptest::collection::vec(1u64..1_000_000_000, 0..60),
                1..8,
            )
        ) {
            let merged = Histogram::new();
            let single = Histogram::new();
            for shard_values in &shards {
                // One shard per measurement rep, folded immediately —
                // the measurement loop's aggregation pattern.
                let shard = Histogram::new();
                for &v in shard_values {
                    shard.record(v);
                    single.record(v);
                }
                merged.merge_from(&shard);
            }
            prop_assert_eq!(merged.count(), single.count());
            prop_assert_eq!(merged.sum(), single.sum());
            prop_assert_eq!(merged.min(), single.min());
            prop_assert_eq!(merged.max(), single.max());
            for (i, (m, s)) in merged.buckets.iter().zip(single.buckets.iter()).enumerate() {
                prop_assert_eq!(
                    m.load(Ordering::Relaxed),
                    s.load(Ordering::Relaxed),
                    "bucket {} diverged", i
                );
            }
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                prop_assert_eq!(merged.quantile(q), single.quantile(q), "q={}", q);
            }
            let threshold = 1_000u64;
            prop_assert_eq!(merged.count_below(threshold), single.count_below(threshold));
        }
    }
}
