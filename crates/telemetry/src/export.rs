//! Snapshot exporters: machine-readable JSON and Prometheus text
//! exposition.
//!
//! Both render a [`Snapshot`], so an export is a consistent
//! point-in-time view regardless of how often it is taken. The JSON
//! schema is documented in the README's "Observability" section;
//! histograms export as Prometheus *summaries* (quantiles + `_sum` +
//! `_count`) because the workspace extracts quantiles locally rather
//! than shipping raw buckets.

use crate::histogram::HistogramSnapshot;
use crate::registry::Snapshot;
use std::fmt::Write;

/// Escape a string for a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a finite f64 the way JSON expects (no NaN/inf in our data;
/// guard anyway).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let exemplar = match h.exemplar {
        Some((value, trace)) => format!(",\"exemplar\":{{\"value\":{value},\"trace\":{trace}}}"),
        None => String::new(),
    };
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}{}}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        json_f64(h.mean),
        h.p50,
        h.p90,
        h.p99,
        h.p999,
        exemplar
    )
}

impl Snapshot {
    /// The snapshot as a single JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,min,max,mean,p50,p90,p99}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), json_histogram(h));
        }
        out.push_str("}}");
        out
    }

    /// The snapshot in the Prometheus text exposition format. Metric
    /// names have non-`[a-zA-Z0-9_:]` characters replaced by `_`
    /// (`engine.cache.hits` → `engine_cache_hits`); histograms export
    /// as summaries with `quantile` labels.
    ///
    /// Labeled series (built with [`crate::series_name`], e.g.
    /// `engine.pool.queue_depth{shard="0"}`) keep their label block
    /// verbatim — only the base name is sanitised — and series sharing
    /// a base name emit one `# TYPE` header, as the exposition format
    /// requires.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        /// Split a registry key into (sanitised base, label block).
        fn series(name: &str) -> (String, &str) {
            match name.split_once('{') {
                Some((base, rest)) => (sanitize(base), rest.strip_suffix('}').unwrap_or(rest)),
                None => (sanitize(name), ""),
            }
        }
        /// Escape a `# HELP` description per the text exposition
        /// format: backslash and newline only (double quotes are legal
        /// in HELP text, unlike in label values).
        fn help_escape(text: &str) -> String {
            let mut out = String::with_capacity(text.len());
            for c in text.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out
        }
        // Descriptions are registered under dotted base names; the
        // exposition needs them under the sanitised base.
        let help: Vec<(String, &str)> = self
            .help
            .iter()
            .map(|(base, text)| (sanitize(base), text.as_str()))
            .collect();
        let type_line = move |out: &mut String, seen: &mut Vec<String>, base: &str, kind: &str| {
            if !seen.iter().any(|s| s == base) {
                if let Some((_, text)) = help.iter().find(|(b, _)| b == base) {
                    let _ = writeln!(out, "# HELP {base} {}", help_escape(text));
                }
                let _ = writeln!(out, "# TYPE {base} {kind}");
                seen.push(base.to_string());
            }
        };
        let mut out = String::new();
        let mut seen = Vec::new();
        for (name, v) in &self.counters {
            let (base, labels) = series(name);
            type_line(&mut out, &mut seen, &base, "counter");
            if labels.is_empty() {
                let _ = writeln!(out, "{base} {v}");
            } else {
                let _ = writeln!(out, "{base}{{{labels}}} {v}");
            }
        }
        for (name, v) in &self.gauges {
            let (base, labels) = series(name);
            type_line(&mut out, &mut seen, &base, "gauge");
            if labels.is_empty() {
                let _ = writeln!(out, "{base} {v}");
            } else {
                let _ = writeln!(out, "{base}{{{labels}}} {v}");
            }
        }
        for (name, h) in &self.histograms {
            let (base, labels) = series(name);
            // Quantile labels merge after any series labels.
            let prefix = if labels.is_empty() {
                String::new()
            } else {
                format!("{labels},")
            };
            type_line(&mut out, &mut seen, &base, "summary");
            let _ = writeln!(out, "{base}{{{prefix}quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "{base}{{{prefix}quantile=\"0.9\"}} {}", h.p90);
            let _ = writeln!(out, "{base}{{{prefix}quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "{base}{{{prefix}quantile=\"0.999\"}} {}", h.p999);
            if labels.is_empty() {
                let _ = writeln!(out, "{base}_sum {}", h.sum);
                let _ = writeln!(out, "{base}_count {}", h.count);
            } else {
                let _ = writeln!(out, "{base}_sum{{{labels}}} {}", h.sum);
                let _ = writeln!(out, "{base}_count{{{labels}}} {}", h.count);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("engine.cache.hits").add(12);
        r.gauge("engine.pool.queue_depth").set(3);
        let h = r.histogram("serve.request");
        for v in [100u64, 200, 300, 40_000] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn json_has_all_sections_and_values() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"engine.cache.hits\":12"), "{j}");
        assert!(j.contains("\"engine.pool.queue_depth\":3"), "{j}");
        assert!(j.contains("\"serve.request\":{\"count\":4"), "{j}");
        assert!(j.contains("\"min\":100"), "{j}");
        assert!(j.contains("\"max\":40000"), "{j}");
        assert!(j.contains("\"p999\":"), "{j}");
        // Balanced braces — a cheap structural sanity check given the
        // hand-rolled writer.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );
    }

    #[test]
    fn json_escapes_hostile_names() {
        let r = Registry::new();
        r.counter("weird\"name\\with\ncontrol").inc();
        let j = r.snapshot().to_json();
        assert!(j.contains("weird\\\"name\\\\with\\u000acontrol"), "{j}");
    }

    #[test]
    fn prometheus_format_is_wellformed() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE engine_cache_hits counter\nengine_cache_hits 12\n"));
        assert!(p.contains("# TYPE engine_pool_queue_depth gauge\nengine_pool_queue_depth 3\n"));
        assert!(p.contains("# TYPE serve_request summary"));
        assert!(p.contains("serve_request{quantile=\"0.5\"}"));
        assert!(p.contains("serve_request{quantile=\"0.999\"}"));
        assert!(p.contains("serve_request_count 4\n"));
        assert!(p.contains("serve_request_sum 40600\n"));
        // No unsanitized dots leak into metric names.
        for line in p.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(&[' ', '{'][..]).next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in line: {line}"
            );
        }
    }

    #[test]
    fn prometheus_renders_labeled_series() {
        let r = Registry::new();
        r.gauge_labeled("engine.pool.queue_depth", &[("shard", "0")])
            .set(2);
        r.gauge_labeled("engine.pool.queue_depth", &[("shard", "1")])
            .set(5);
        r.counter_labeled("tier.shed", &[("shard", "1"), ("reason", "queue_full")])
            .add(4);
        r.histogram_labeled("tier.request", &[("tenant", "t0")])
            .record(100);
        let p = r.snapshot().to_prometheus();
        // The base name is sanitised; the label block survives intact.
        assert!(
            p.contains("engine_pool_queue_depth{shard=\"0\"} 2\n"),
            "{p}"
        );
        assert!(
            p.contains("engine_pool_queue_depth{shard=\"1\"} 5\n"),
            "{p}"
        );
        assert!(
            p.contains("tier_shed{shard=\"1\",reason=\"queue_full\"} 4\n"),
            "{p}"
        );
        // One TYPE header per base name even with multiple label sets.
        assert_eq!(
            p.matches("# TYPE engine_pool_queue_depth gauge").count(),
            1,
            "{p}"
        );
        // Summary quantiles merge into the existing label block.
        assert!(
            p.contains("tier_request{tenant=\"t0\",quantile=\"0.5\"} 100\n"),
            "{p}"
        );
        assert!(p.contains("tier_request_sum{tenant=\"t0\"} 100\n"), "{p}");
        assert!(p.contains("tier_request_count{tenant=\"t0\"} 1\n"), "{p}");
    }

    /// Un-escape one Prometheus label value (`\\`, `\"`, `\n`) — the
    /// consumer side of the exposition format, for the round-trip test.
    fn unescape_label_value(escaped: &str) -> String {
        let mut out = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        }
        out
    }

    /// Parse `name{k="v",...} value` lines back into
    /// `(name, labels, value)`, un-escaping label values.
    fn parse_series(line: &str) -> (String, Vec<(String, String)>, String) {
        let (name_labels, value) = line.rsplit_once(' ').expect("metric line");
        let Some((name, rest)) = name_labels.split_once('{') else {
            return (name_labels.to_string(), Vec::new(), value.to_string());
        };
        let block = rest.strip_suffix('}').expect("closed label block");
        let mut labels = Vec::new();
        let mut remaining = block;
        while !remaining.is_empty() {
            let (key, rest) = remaining.split_once("=\"").expect("label key");
            // The value runs to the next unescaped quote.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in rest.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end.expect("closing quote");
            labels.push((key.to_string(), unescape_label_value(&rest[..end])));
            remaining = rest[end + 1..]
                .strip_prefix(',')
                .unwrap_or(&rest[end + 1..]);
        }
        (name.to_string(), labels, value.to_string())
    }

    /// Satellite requirement: HELP lines come from metric
    /// descriptions, hostile label values survive an
    /// escape-then-parse round trip, and both follow the exposition
    /// format's escaping rules.
    #[test]
    fn help_and_label_escaping_round_trip() {
        let r = Registry::new();
        r.describe(
            "tier.shed",
            "Requests shed by reason.\nBackslash: \\ stays.",
        );
        r.describe("tier.admitted", "Requests admitted to a shard queue.");
        let hostile = "quote\" backslash\\ newline\n done";
        r.counter_labeled("tier.shed", &[("reason", hostile)])
            .add(3);
        r.counter_labeled("tier.admitted", &[("shard", "0")]).add(7);
        let p = r.snapshot().to_prometheus();

        // HELP precedes TYPE, newline escaped, description intact.
        assert!(
            p.contains(
                "# HELP tier_shed Requests shed by reason.\\nBackslash: \\\\ stays.\n# TYPE tier_shed counter\n"
            ),
            "{p}"
        );
        assert!(
            p.contains("# HELP tier_admitted Requests admitted to a shard queue.\n"),
            "{p}"
        );
        // Every metric line is single-line (escaping worked) and the
        // hostile label value round-trips exactly.
        let shed_line = p
            .lines()
            .find(|l| l.starts_with("tier_shed{"))
            .expect("tier_shed series line");
        let (name, labels, value) = parse_series(shed_line);
        assert_eq!(name, "tier_shed");
        assert_eq!(value, "3");
        assert_eq!(labels, vec![("reason".to_string(), hostile.to_string())]);
    }

    #[test]
    fn json_carries_exemplars() {
        let r = Registry::new();
        let h = r.histogram_labeled("tier.request", &[("tenant", "t0")]);
        h.record(5);
        h.record_exemplar(1234, 42);
        let j = r.snapshot().to_json();
        assert!(
            j.contains("\"exemplar\":{\"value\":1234,\"trace\":42}"),
            "{j}"
        );
        // Histograms without exemplars omit the field entirely.
        r.histogram("plain.series").record(9);
        let j = r.snapshot().to_json();
        let plain = j.split("\"plain.series\":").nth(1).unwrap();
        assert!(!plain.split('}').next().unwrap().contains("exemplar"));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let s = Snapshot::default();
        assert_eq!(
            s.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert_eq!(s.to_prometheus(), "");
    }
}
