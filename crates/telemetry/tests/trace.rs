//! Integration tests for the flight recorder: multi-thread ordering,
//! overflow accounting, and Chrome-trace export validity.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use telemetry::trace::{ArgValue, EventKind, FlightRecorder};

fn arg_u64(args: &[(&'static str, ArgValue)], key: &str) -> Option<u64> {
    args.iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            ArgValue::U64(n) => Some(*n),
            _ => None,
        })
}

/// Randomized multi-thread recording: every thread's ring preserves
/// that thread's event order (its per-thread sequence numbers come back
/// strictly increasing) and timestamps are monotone within each ring.
#[test]
fn per_thread_order_survives_concurrent_recording() {
    const THREADS: u64 = 6;
    const EVENTS_PER_THREAD: u64 = 400;
    let rec = FlightRecorder::new(4096);
    let ctx = rec.start_trace();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let ctx = ctx.clone();
            scope.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE + t);
                for seq in 0..EVENTS_PER_THREAD {
                    // Random mix of span shapes so interleavings vary:
                    // the sequence arg always lands on an event this
                    // thread recorded.
                    match rng.gen_range(0u32..3) {
                        0 => {
                            let mut s = ctx.span("work");
                            s.arg("seq", seq);
                            s.arg("thread", t);
                        }
                        1 => ctx.instant_with(
                            "tick",
                            vec![("seq", ArgValue::U64(seq)), ("thread", ArgValue::U64(t))],
                        ),
                        _ => {
                            let s = ctx.span("outer");
                            let mut inner = s.ctx().span("inner");
                            inner.arg("seq", seq);
                            inner.arg("thread", t);
                        }
                    }
                    if rng.gen_bool(0.05) {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    let snap = rec.snapshot();
    assert_eq!(snap.dropped, 0, "capacity was sized to hold everything");
    assert_eq!(snap.threads.len(), THREADS as usize);
    let mut seen_threads = 0;
    for thread in &snap.threads {
        // Timestamps monotone within the ring.
        let ts: Vec<u64> = thread.events.iter().map(|e| e.ts_ns).collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "ring {} not time-ordered",
            thread.tid
        );
        // The per-thread sequence numbers are strictly increasing in
        // ring order — recording never reorders a thread's own events.
        let seqs: Vec<u64> = thread
            .events
            .iter()
            .filter_map(|e| arg_u64(&e.args, "seq"))
            .collect();
        assert_eq!(seqs.len(), EVENTS_PER_THREAD as usize);
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "ring {} reordered events: {:?}",
            thread.tid,
            &seqs[..seqs.len().min(20)]
        );
        seen_threads += 1;
    }
    assert_eq!(seen_threads, THREADS);
}

/// Ring overflow under concurrency: drop-oldest per ring, drops counted
/// both per-ring and recorder-wide, survivors are each thread's newest
/// events in order.
#[test]
fn overflow_drops_oldest_per_thread_and_counts() {
    const CAP: usize = 32;
    const THREADS: u64 = 4;
    const EVENTS_PER_THREAD: u64 = 500;
    let rec = FlightRecorder::new(CAP);
    let ctx = rec.start_trace();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let ctx = ctx.clone();
            scope.spawn(move || {
                for seq in 0..EVENTS_PER_THREAD {
                    ctx.instant_with("tick", vec![("seq", ArgValue::U64(seq))]);
                    let _ = t;
                }
            });
        }
    });
    let snap = rec.snapshot();
    let mut total_dropped = 0;
    for thread in &snap.threads {
        assert_eq!(thread.events.len(), CAP);
        assert_eq!(thread.dropped, EVENTS_PER_THREAD - CAP as u64);
        total_dropped += thread.dropped;
        let seqs: Vec<u64> = thread
            .events
            .iter()
            .map(|e| arg_u64(&e.args, "seq").unwrap())
            .collect();
        let expect: Vec<u64> = (EVENTS_PER_THREAD - CAP as u64..EVENTS_PER_THREAD).collect();
        assert_eq!(seqs, expect, "survivors must be the newest, in order");
    }
    assert_eq!(snap.dropped, total_dropped);
    assert_eq!(rec.dropped(), total_dropped);
}

/// The exported Chrome-trace JSON parses with serde_json and every
/// lane's B/E events pair up like balanced parentheses with matching
/// names.
#[test]
fn chrome_trace_json_parses_with_balanced_pairs() {
    let rec = FlightRecorder::new(4096);
    let ctx = rec.start_trace();
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let ctx = ctx.clone();
            scope.spawn(move || {
                for i in 0..20u64 {
                    let root = ctx.span("epoch");
                    {
                        let mut c = root.ctx().span("compute");
                        c.arg("lane", t);
                        c.arg("i", i);
                    }
                    root.ctx().instant("mark");
                }
            });
        }
    });
    let json = rec.snapshot().to_chrome_json();
    let doc = serde_json::from_str(&json).expect("chrome trace must be valid JSON");
    let events = doc["traceEvents"]
        .as_array()
        .expect("traceEvents must be an array");
    assert!(!events.is_empty());
    // Walk each tid's stream: B pushes, E must match the top name.
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut pairs = 0u64;
    for e in events {
        let ph = e["ph"].as_str().expect("ph");
        let tid = e["tid"].as_u64().expect("tid");
        let name = e["name"].as_str().expect("name").to_string();
        match ph {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let top = stacks
                    .get_mut(&tid)
                    .and_then(|s| s.pop())
                    .unwrap_or_else(|| panic!("E without B on tid {tid}"));
                assert_eq!(top, name, "mismatched B/E pair on tid {tid}");
                pairs += 1;
            }
            "i" | "M" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
    assert_eq!(
        pairs,
        3 * 20 * 2,
        "every span must export exactly one B/E pair"
    );
    // Timestamps within each tid are non-decreasing (Perfetto requires
    // this for correct nesting).
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    for e in events {
        if e["ph"].as_str() == Some("M") {
            continue;
        }
        let tid = e["tid"].as_u64().unwrap();
        let ts = e["ts"].as_f64().expect("ts");
        let prev = last_ts.insert(tid, ts).unwrap_or(0.0);
        assert!(ts >= prev, "tid {tid} went backwards: {prev} -> {ts}");
    }
}

/// Cross-thread parenting end to end: a span opened on a worker via the
/// parent handle exports with the submitting span's ID as its parent,
/// and drop-on-another-thread still lands the End in the Begin ring.
#[test]
fn cross_thread_parenting_and_end_ring_affinity() {
    let rec = FlightRecorder::new(256);
    let ctx = rec.start_trace();
    let root = ctx.span("request");
    let child_ctx = root.ctx();
    let moved_span = ctx.span("moved");
    std::thread::spawn(move || {
        drop(child_ctx.span("worker.stage"));
        // `moved` began on the main thread but is dropped here; its End
        // must land in the main thread's ring to keep pairs balanced.
        drop(moved_span);
    })
    .join()
    .unwrap();
    drop(root);
    let snap = rec.snapshot();
    let root_id = snap.threads[0]
        .events
        .iter()
        .find(|e| e.name == "request" && e.kind == EventKind::Begin)
        .unwrap()
        .span_id;
    let worker_begin = snap
        .events()
        .find(|e| e.name == "worker.stage" && e.kind == EventKind::Begin)
        .unwrap();
    assert_eq!(worker_begin.parent_id, root_id);
    // Per-ring balance: each ring's B/E counts match.
    for thread in &snap.threads {
        let begins = thread
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Begin)
            .count();
        let ends = thread
            .events
            .iter()
            .filter(|e| e.kind == EventKind::End)
            .count();
        assert_eq!(begins, ends, "ring {} has unbalanced pairs", thread.tid);
    }
}
